//! Typed physical quantities for the PicoCube simulation.
//!
//! Every electrical, thermal, mechanical and RF quantity that crosses a
//! module boundary in the PicoCube workspace is a dedicated newtype over
//! `f64` (see the Rust API guidelines, C-NEWTYPE). This statically prevents
//! the classic power-train mistakes — feeding millivolts where volts are
//! expected, adding energy to power, confusing dBm with watts — at zero
//! runtime cost.
//!
//! Quantities implement the arithmetic that is physically meaningful and
//! nothing more: same-type addition/subtraction, scaling by dimensionless
//! `f64`, and the cross-type products and quotients of the underlying
//! dimensional algebra (`Volts * Amps = Watts`, `Watts * Seconds = Joules`,
//! `Coulombs / Farads = Volts`, …).
//!
//! # Examples
//!
//! ```
//! use picocube_units::{Volts, Amps, Watts, Seconds, Joules};
//!
//! let rail = Volts::new(1.2);
//! let draw = Amps::from_micro(5.0);
//! let power: Watts = rail * draw;
//! assert!((power.micro() - 6.0).abs() < 1e-9);
//!
//! let energy: Joules = power * Seconds::new(14e-3);
//! assert!(energy > Joules::ZERO);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

#[macro_use]
mod quantity;

pub mod json;

mod electrical;
mod energy;
mod geometry;
mod mechanics;
mod rf;
mod thermo;

pub use electrical::{Amps, Coulombs, Farads, Hertz, Ohms, Volts};
pub use energy::{Joules, JoulesPerGram, Seconds, Watts};
pub use geometry::{CubicMillimeters, Meters, Millimeters, SquareMillimeters};
pub use mechanics::{Grams, Gs, Kilopascals, MetersPerSecond, MetersPerSecond2, Rpm};
pub use rf::{Db, Dbm};
pub use thermo::Celsius;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_dimensional_algebra_round_trips() {
        let v = Volts::new(1.2);
        let i = Amps::new(0.5e-3);
        let p = v * i;
        assert!((p.value() - 0.6e-3).abs() < 1e-12);
        // P / V = I and P / I = V
        assert!(((p / v).value() - i.value()).abs() < 1e-12);
        assert!(((p / i).value() - v.value()).abs() < 1e-12);
    }

    #[test]
    fn energy_power_time_relations() {
        let w = Watts::from_micro(6.0);
        let t = Seconds::new(3600.0);
        let e = w * t;
        assert!((e.milli() - 21.6).abs() < 1e-9);
        assert!(((e / t).micro() - 6.0).abs() < 1e-9);
        assert!(((e / w).value() - 3600.0).abs() < 1e-6);
    }

    #[test]
    fn charge_capacitance_voltage() {
        let c = Farads::from_micro(100.0);
        let v = Volts::new(1.2);
        let q = c * v;
        assert!((q.micro() - 120.0).abs() < 1e-9);
        assert!(((q / c).value() - 1.2).abs() < 1e-12);
        assert!(((q / v).micro() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ohms_law() {
        let r = Ohms::new(1000.0);
        let v = Volts::new(1.0);
        let i = v / r;
        assert!((i.milli() - 1.0).abs() < 1e-12);
        assert!(((i * r).value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacitor_energy() {
        // E = 1/2 C V^2 via the quantity algebra.
        let c = Farads::from_micro(10.0);
        let v = Volts::new(2.0);
        let e = c.energy_at(v);
        assert!((e.micro() - 20.0).abs() < 1e-9);
    }
}
