//! Thermal quantities.

quantity!(
    /// Temperature in degrees Celsius.
    ///
    /// Celsius is an affine scale, so multiplication between temperatures is
    /// not provided; differences (`Sub`) are meaningful as temperature
    /// deltas and that is what component temperature-coefficient models use.
    Celsius,
    "°C"
);

impl Celsius {
    /// Absolute zero.
    pub const ABSOLUTE_ZERO: Self = Self::new(-273.15);

    /// Converts to kelvin.
    #[inline]
    pub fn kelvin(self) -> f64 {
        self.value() + 273.15
    }

    /// Creates a temperature from kelvin.
    #[inline]
    pub fn from_kelvin(k: f64) -> Self {
        Self::new(k - 273.15)
    }

    /// Creates a temperature from degrees Fahrenheit.
    #[inline]
    pub fn from_fahrenheit(f: f64) -> Self {
        Self::new((f - 32.0) * 5.0 / 9.0)
    }

    /// Returns the temperature in degrees Fahrenheit.
    #[inline]
    pub fn fahrenheit(self) -> f64 {
        self.value() * 9.0 / 5.0 + 32.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelvin_round_trip() {
        let t = Celsius::new(25.0);
        assert!((t.kelvin() - 298.15).abs() < 1e-9);
        assert!((Celsius::from_kelvin(t.kelvin()).value() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn fahrenheit_round_trip() {
        assert!((Celsius::from_fahrenheit(212.0).value() - 100.0).abs() < 1e-9);
        assert!((Celsius::new(-40.0).fahrenheit() + 40.0).abs() < 1e-9);
    }

    #[test]
    fn absolute_zero() {
        assert!((Celsius::ABSOLUTE_ZERO.kelvin()).abs() < 1e-9);
    }
}
