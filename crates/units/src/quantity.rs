//! The `quantity!` macro: defines an `f64`-backed newtype with the full set
//! of physically meaningful same-type arithmetic, SI-prefix accessors, and
//! the common trait impls the API guidelines call for.

/// Defines a physical quantity newtype.
///
/// Generated items per quantity `Q`:
/// * `Q::new(f64)`, `Q::value(self) -> f64`, `Q::ZERO`
/// * SI prefix constructors and accessors: `from_nano/micro/milli/kilo/mega`
///   and `nano()/micro()/milli()/kilo()/mega()`
/// * `abs`, `min`, `max`, `clamp`, `is_finite`
/// * `Add`, `Sub`, `Neg`, `AddAssign`, `SubAssign` (same type),
///   `Mul<f64>`, `Div<f64>` (scaling), `f64 * Q`,
///   `Div<Q> for Q -> f64` (ratio of like quantities)
/// * `Sum`, `Default`, `Display` (with the unit suffix), `Debug`,
///   `Clone`, `Copy`, `PartialEq`, `PartialOrd`, transparent JSON
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $crate::json::ToJson for $name {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Num(self.0)
            }
        }

        impl $crate::json::FromJson for $name {
            fn from_json(
                value: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok(Self(<f64 as $crate::json::FromJson>::from_json(value)?))
            }
        }

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a value in base SI units.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the value in base SI units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Creates a quantity from a value expressed in nano-units.
            #[inline]
            pub fn from_nano(value: f64) -> Self {
                Self(value * 1e-9)
            }

            /// Creates a quantity from a value expressed in micro-units.
            #[inline]
            pub fn from_micro(value: f64) -> Self {
                Self(value * 1e-6)
            }

            /// Creates a quantity from a value expressed in milli-units.
            #[inline]
            pub fn from_milli(value: f64) -> Self {
                Self(value * 1e-3)
            }

            /// Creates a quantity from a value expressed in kilo-units.
            #[inline]
            pub fn from_kilo(value: f64) -> Self {
                Self(value * 1e3)
            }

            /// Creates a quantity from a value expressed in mega-units.
            #[inline]
            pub fn from_mega(value: f64) -> Self {
                Self(value * 1e6)
            }

            /// Returns the value expressed in nano-units.
            #[inline]
            pub fn nano(self) -> f64 {
                self.0 * 1e9
            }

            /// Returns the value expressed in micro-units.
            #[inline]
            pub fn micro(self) -> f64 {
                self.0 * 1e6
            }

            /// Returns the value expressed in milli-units.
            #[inline]
            pub fn milli(self) -> f64 {
                self.0 * 1e3
            }

            /// Returns the value expressed in kilo-units.
            #[inline]
            pub fn kilo(self) -> f64 {
                self.0 * 1e-3
            }

            /// Returns the value expressed in mega-units.
            #[inline]
            pub fn mega(self) -> f64 {
                self.0 * 1e-6
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Clamps `self` to the inclusive range `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the value is neither infinite nor NaN.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{} {}", self.0, $suffix)
                }
            }
        }

        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{}({} {})", stringify!($name), self.0, $suffix)
            }
        }
    };
}

/// Implements `Mul`/`Div` relations between quantities:
/// `relate!(A * B = C)` generates `A * B -> C`, `B * A -> C`,
/// `C / A -> B` and `C / B -> A`.
macro_rules! relate {
    ($a:ident * $b:ident = $c:ident) => {
        impl core::ops::Mul<$b> for $a {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: $b) -> $c {
                $c::new(self.value() * rhs.value())
            }
        }

        impl core::ops::Mul<$a> for $b {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: $a) -> $c {
                $c::new(self.value() * rhs.value())
            }
        }

        impl core::ops::Div<$a> for $c {
            type Output = $b;
            #[inline]
            fn div(self, rhs: $a) -> $b {
                $b::new(self.value() / rhs.value())
            }
        }

        impl core::ops::Div<$b> for $c {
            type Output = $a;
            #[inline]
            fn div(self, rhs: $b) -> $a {
                $a::new(self.value() / rhs.value())
            }
        }
    };
    // Squared variant: A * A = C (avoids the duplicate-impl problem).
    ($a:ident ^2 = $c:ident) => {
        impl core::ops::Mul<$a> for $a {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: $a) -> $c {
                $c::new(self.value() * rhs.value())
            }
        }

        impl core::ops::Div<$a> for $c {
            type Output = $a;
            #[inline]
            fn div(self, rhs: $a) -> $a {
                $a::new(self.value() / rhs.value())
            }
        }
    };
}
