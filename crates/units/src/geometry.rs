//! Geometric quantities for the packaging model: the PicoCube's defining
//! constraint is its 1 cm³ volume, and the paper's §4.1–4.2 quantify board
//! areas, connector pitches and stack heights in millimeters and mils.

quantity!(
    /// Length in meters, the natural unit for link ranges and deployment
    /// geometry (the §6 demo-room distances are quoted in meters).
    Meters,
    "m"
);
quantity!(
    /// Length in millimeters, the natural unit for PCB geometry.
    Millimeters,
    "mm"
);
quantity!(
    /// Area in square millimeters.
    SquareMillimeters,
    "mm²"
);
quantity!(
    /// Volume in cubic millimeters. One cubic centimeter is 1000 mm³.
    CubicMillimeters,
    "mm³"
);

relate!(Millimeters ^ 2 = SquareMillimeters);
relate!(SquareMillimeters * Millimeters = CubicMillimeters);

/// Millimeters per mil (thousandth of an inch) — PCB dielectric thicknesses
/// in the paper are quoted in mils (50 mil and 70 mil Rogers 3010 layers).
pub const MM_PER_MIL: f64 = 0.0254;

impl Millimeters {
    /// Creates a length from mils (thousandths of an inch).
    #[inline]
    pub fn from_mils(mils: f64) -> Self {
        Self::new(mils * MM_PER_MIL)
    }

    /// Returns the length in mils.
    #[inline]
    pub fn mils(self) -> f64 {
        self.value() / MM_PER_MIL
    }

    /// Creates a length from micrometers (the §7.2 printed-film thickness
    /// unit).
    #[inline]
    pub fn from_micrometers(um: f64) -> Self {
        Self::new(um * 1e-3)
    }

    /// Returns the length in micrometers.
    #[inline]
    pub fn micrometers(self) -> f64 {
        self.value() * 1e3
    }
}

impl Meters {
    /// Converts to millimeters.
    #[inline]
    pub fn to_millimeters(self) -> Millimeters {
        Millimeters::new(self.value() * 1e3)
    }
}

impl From<Millimeters> for Meters {
    #[inline]
    fn from(mm: Millimeters) -> Self {
        Self::new(mm.value() * 1e-3)
    }
}

impl From<Meters> for Millimeters {
    #[inline]
    fn from(m: Meters) -> Self {
        m.to_millimeters()
    }
}

impl CubicMillimeters {
    /// One cubic centimeter — the PicoCube's total volume budget.
    pub const ONE_CM3: Self = Self::new(1000.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_millimeter_conversions() {
        let m = Meters::new(1.5);
        assert!((m.to_millimeters().value() - 1500.0).abs() < 1e-9);
        assert!((Meters::from(Millimeters::new(250.0)).value() - 0.25).abs() < 1e-12);
        let um = Millimeters::from_micrometers(100.0);
        assert!((um.value() - 0.1).abs() < 1e-12);
        assert!((um.micrometers() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mil_conversions() {
        let t = Millimeters::from_mils(50.0);
        assert!((t.value() - 1.27).abs() < 1e-9);
        assert!((t.mils() - 50.0).abs() < 1e-9);
        // The paper's as-built radio board: 64.8 mil total thickness.
        assert!((Millimeters::from_mils(64.8).value() - 1.64592).abs() < 1e-9);
    }

    #[test]
    fn area_and_volume_algebra() {
        let side = Millimeters::new(10.0);
        let area = side * side;
        assert!((area.value() - 100.0).abs() < 1e-12);
        let vol = area * Millimeters::new(10.0);
        assert!((vol.value() - CubicMillimeters::ONE_CM3.value()).abs() < 1e-9);
    }

    #[test]
    fn placement_area_from_the_paper() {
        // §4.1: 1.4 mm devoted to connectors on each edge of a 10 mm board
        // leaves a 7.2 × 7.2 mm placement area.
        let usable = Millimeters::new(10.0) - Millimeters::new(2.0 * 1.4);
        assert!((usable.value() - 7.2).abs() < 1e-9);
        let area = usable * usable;
        assert!((area.value() - 51.84).abs() < 1e-9);
    }
}
