//! Mechanical and environmental quantities used by the sensor and harvester
//! models: mass, pressure, acceleration, speed and rotation rate.

use crate::geometry::Meters;

quantity!(
    /// Mass in grams. Gram (not kilogram) is the natural scale for the
    /// "mechanical mass" budgets of a 1 cm³ node.
    Grams,
    "g"
);
quantity!(
    /// Pressure in kilopascals (tire gauge pressure for the TPMS sensor).
    Kilopascals,
    "kPa"
);
quantity!(
    /// Acceleration in units of standard gravity (g = 9.80665 m/s²), the
    /// scale accelerometer datasheets use.
    Gs,
    "g₀"
);
quantity!(
    /// Acceleration in meters per second squared.
    MetersPerSecond2,
    "m/s²"
);
quantity!(
    /// Speed in meters per second.
    MetersPerSecond,
    "m/s"
);
quantity!(
    /// Rotation rate in revolutions per minute.
    Rpm,
    "rpm"
);

/// Standard gravity in m/s².
pub const STANDARD_GRAVITY: f64 = 9.806_65;

impl Gs {
    /// Converts to m/s².
    #[inline]
    pub fn to_si(self) -> MetersPerSecond2 {
        MetersPerSecond2::new(self.value() * STANDARD_GRAVITY)
    }
}

impl MetersPerSecond2 {
    /// Converts to multiples of standard gravity.
    #[inline]
    pub fn to_gs(self) -> Gs {
        Gs::new(self.value() / STANDARD_GRAVITY)
    }
}

impl MetersPerSecond {
    /// Creates a speed from kilometers per hour.
    #[inline]
    pub fn from_kmh(kmh: f64) -> Self {
        Self::new(kmh / 3.6)
    }

    /// Returns the speed in kilometers per hour.
    #[inline]
    pub fn kmh(self) -> f64 {
        self.value() * 3.6
    }

    /// Rotation rate of a wheel of the given radius rolling at this speed.
    #[inline]
    pub fn wheel_rpm(self, wheel_radius: Meters) -> Rpm {
        let omega = self.value() / wheel_radius.value(); // rad/s
        Rpm::new(omega * 60.0 / (2.0 * core::f64::consts::PI))
    }

    /// Centripetal acceleration at the rim of a wheel of the given radius
    /// (meters) rolling at this speed: `a = v² / r`. This is the large
    /// quasi-DC acceleration a rim-mounted TPMS node experiences.
    #[inline]
    pub fn centripetal_at_radius(self, wheel_radius: Meters) -> MetersPerSecond2 {
        MetersPerSecond2::new(self.value() * self.value() / wheel_radius.value())
    }
}

impl Kilopascals {
    /// Creates a pressure from pounds per square inch (US tire gauges).
    #[inline]
    pub fn from_psi(psi: f64) -> Self {
        Self::new(psi * 6.894_757_293_168)
    }

    /// Returns the pressure in psi.
    #[inline]
    pub fn psi(self) -> f64 {
        self.value() / 6.894_757_293_168
    }

    /// Creates a pressure from bar.
    #[inline]
    pub fn from_bar(bar: f64) -> Self {
        Self::new(bar * 100.0)
    }

    /// Returns the pressure in bar.
    #[inline]
    pub fn bar(self) -> f64 {
        self.value() / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gravity_conversion_round_trips() {
        let a = Gs::new(2.0);
        assert!((a.to_si().value() - 19.6133).abs() < 1e-4);
        assert!((a.to_si().to_gs().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn speed_conversions() {
        let v = MetersPerSecond::from_kmh(90.0);
        assert!((v.value() - 25.0).abs() < 1e-9);
        assert!((v.kmh() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn wheel_rpm_at_highway_speed() {
        // 0.3 m radius wheel at 90 km/h -> ~796 rpm.
        let rpm = MetersPerSecond::from_kmh(90.0).wheel_rpm(Meters::new(0.3));
        assert!((rpm.value() - 795.77).abs() < 0.5);
    }

    #[test]
    fn rim_centripetal_acceleration_is_huge() {
        // At 90 km/h on a 0.3 m wheel the rim sees v²/r ≈ 2083 m/s² ≈ 212 g.
        // This is why TPMS accelerometer channels have enormous ranges.
        let a = MetersPerSecond::from_kmh(90.0).centripetal_at_radius(Meters::new(0.3));
        assert!((a.value() - 2083.3).abs() < 1.0);
        assert!(a.to_gs().value() > 200.0);
    }

    #[test]
    fn pressure_conversions() {
        let p = Kilopascals::from_psi(32.0);
        assert!((p.value() - 220.632).abs() < 0.01);
        assert!((p.psi() - 32.0).abs() < 1e-9);
        assert!((Kilopascals::from_bar(2.2).value() - 220.0).abs() < 1e-9);
        assert!((Kilopascals::new(220.0).bar() - 2.2).abs() < 1e-12);
    }
}
