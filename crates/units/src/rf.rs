//! RF quantities: absolute power in dBm and relative gain/loss in dB.
//!
//! `Dbm` is logarithmic, so it deliberately does **not** implement `Add`
//! with itself (adding two absolute powers in dB is meaningless); instead,
//! gains and losses are applied as [`Db`] offsets, and conversion to/from
//! linear [`Watts`](crate::Watts) is explicit.

use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::Watts;

/// Absolute RF power referenced to 1 mW, in decibels (dBm).
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dbm(f64);

/// A relative power ratio in decibels: antenna gain, path loss, fade margin.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Db(f64);

impl ToJson for Dbm {
    fn to_json(&self) -> Json {
        Json::Num(self.0)
    }
}

impl FromJson for Dbm {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        f64::from_json(value).map(Self)
    }
}

impl ToJson for Db {
    fn to_json(&self) -> Json {
        Json::Num(self.0)
    }
}

impl FromJson for Db {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        f64::from_json(value).map(Self)
    }
}

impl Dbm {
    /// Creates an absolute power level in dBm.
    #[inline]
    pub const fn new(dbm: f64) -> Self {
        Self(dbm)
    }

    /// Returns the level in dBm.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts a linear power to dBm.
    ///
    /// Zero (or negative) power maps to negative infinity dBm, which
    /// propagates correctly through comparisons (it is below any threshold).
    #[inline]
    pub fn from_watts(power: Watts) -> Self {
        Self(10.0 * (power.value() / 1e-3).log10())
    }

    /// Converts to linear power.
    #[inline]
    pub fn to_watts(self) -> Watts {
        Watts::new(1e-3 * 10f64.powf(self.0 / 10.0))
    }

    /// Returns the margin of this level above `other`, in dB.
    #[inline]
    pub fn margin_over(self, other: Dbm) -> Db {
        Db::new(self.0 - other.0)
    }
}

impl Db {
    /// Creates a relative level in dB.
    #[inline]
    pub const fn new(db: f64) -> Self {
        Self(db)
    }

    /// Returns the level in dB.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts a linear power ratio to dB.
    #[inline]
    pub fn from_ratio(ratio: f64) -> Self {
        Self(10.0 * ratio.log10())
    }

    /// Converts to a linear power ratio.
    #[inline]
    pub fn to_ratio(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
}

impl core::ops::Add<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl core::ops::Sub<Db> for Dbm {
    type Output = Dbm;
    #[inline]
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl core::ops::Sub<Dbm> for Dbm {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl core::ops::Add for Db {
    type Output = Db;
    #[inline]
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl core::ops::Sub for Db {
    type Output = Db;
    #[inline]
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl core::ops::Neg for Db {
    type Output = Db;
    #[inline]
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl core::fmt::Display for Dbm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} dBm", prec, self.0)
        } else {
            write!(f, "{} dBm", self.0)
        }
    }
}

impl core::fmt::Display for Db {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*} dB", prec, self.0)
        } else {
            write!(f, "{} dB", self.0)
        }
    }
}

impl core::fmt::Debug for Dbm {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Dbm({} dBm)", self.0)
    }
}

impl core::fmt::Debug for Db {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Db({} dB)", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tx_power_is_1_2_mw() {
        // The PicoCube transmitter is specified as 0.8 dBm ≈ 1.2 mW.
        let p = Dbm::new(0.8).to_watts();
        assert!((p.milli() - 1.202).abs() < 0.002);
    }

    #[test]
    fn dbm_watts_round_trip() {
        for dbm in [-90.0, -60.0, -30.0, 0.0, 0.8, 10.0] {
            let back = Dbm::from_watts(Dbm::new(dbm).to_watts());
            assert!((back.value() - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_watts_is_minus_infinity() {
        let level = Dbm::from_watts(Watts::ZERO);
        assert!(level.value().is_infinite() && level.value() < 0.0);
        assert!(level < Dbm::new(-200.0));
    }

    #[test]
    fn link_budget_arithmetic() {
        // TX 0.8 dBm, path loss 60.8 dB -> RX -60 dBm (the paper's 1 m figure).
        let rx = Dbm::new(0.8) - Db::new(60.8);
        assert!((rx.value() + 60.0).abs() < 1e-9);
        // Margin above a -75 dBm sensitivity is 15 dB.
        let margin = rx.margin_over(Dbm::new(-75.0));
        assert!((margin.value() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn db_ratio_round_trip() {
        assert!((Db::new(3.0103).to_ratio() - 2.0).abs() < 1e-4);
        assert!((Db::from_ratio(100.0).value() - 20.0).abs() < 1e-9);
    }
}
