//! Dependency-free JSON: the workspace's serialization substrate.
//!
//! The simulation's data-plumbing contract (reports, configurations,
//! benchmark records) is JSON, but the build must work with no external
//! crates. This module provides a small, strict JSON document model with a
//! parser and writer, plus [`ToJson`]/[`FromJson`] traits every workspace
//! type that crosses a tooling boundary implements by hand.
//!
//! Numbers round-trip exactly: `f64` values are written with Rust's
//! shortest-round-trip formatting, and integers that fit `u64`/`i64` are
//! kept in integer form so 64-bit seeds and counters survive unscathed.
//!
//! # Examples
//!
//! ```
//! use picocube_units::json::{Json, ToJson, FromJson};
//!
//! let doc = Json::parse(r#"{"nodes": 256, "ratio": 0.925}"#).unwrap();
//! assert_eq!(doc.get("nodes").and_then(Json::as_u64), Some(256));
//!
//! let v: Vec<f64> = vec![1.5, -2.0];
//! let back = Vec::<f64>::from_json(&v.to_json()).unwrap();
//! assert_eq!(back, v);
//! ```

use std::fmt;

/// A JSON document: the usual six shapes, with integers kept exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` (written without a decimal
    /// point, so 64-bit seeds round-trip exactly).
    UInt(u64),
    /// A negative integer that fits `i64`.
    Int(i64),
    /// Any other finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse or conversion failure, with a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document from text.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::new(format!("trailing characters at byte {pos}")));
        }
        Ok(value)
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is any numeric shape.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::UInt(u) => Some(u as f64),
            Json::Int(i) => Some(i as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(u) => Some(u),
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Serializes to compact JSON text (via `to_string()`).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

fn write_value(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Num(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip formatting; force a decimal
                // marker so the value re-parses as Num, not an integer.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; null is the least-bad encoding.
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::new("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError::new(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => {
                        return Err(JsonError::new(format!(
                            "expected ',' or '}}' at byte {pos}"
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::new("non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::new("bad \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::new(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so it is valid;
                // degrade to the replacement character rather than panic).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                match std::str::from_utf8(&bytes[start..*pos]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => out.push('\u{fffd}'),
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap_or("");
    if text.is_empty() || text == "-" {
        return Err(JsonError::new(format!("expected value at byte {start}")));
    }
    if !float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::new(format!("invalid number {text:?}")))
}

/// Conversion into the JSON document model.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Conversion out of the JSON document model.
pub trait FromJson: Sized {
    /// Rebuilds `Self` from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the document has the wrong shape.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

/// Fetches a required object field, with a shape-describing error.
///
/// # Errors
///
/// Returns [`JsonError`] when the key is absent or `value` is not an object.
pub fn field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, JsonError> {
    value
        .get(key)
        .ok_or_else(|| JsonError::new(format!("missing field {key:?}")))
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_f64()
            .ok_or_else(|| JsonError::new("expected number"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_bool()
            .ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

macro_rules! json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(u64::from(*self))
            }
        }
        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self, JsonError> {
                let u = value.as_u64().ok_or_else(|| JsonError::new("expected integer"))?;
                <$t>::try_from(u).map_err(|_| JsonError::new("integer out of range"))
            }
        }
    )*};
}

json_uint!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl FromJson for usize {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let u = value
            .as_u64()
            .ok_or_else(|| JsonError::new("expected integer"))?;
        usize::try_from(u).map_err(|_| JsonError::new("integer out of range"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value
            .as_arr()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::new("expected 2-element array")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in [
            "null", "true", "false", "0", "42", "-7", "1.5", "-2.25e3", "\"hi\"",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_survives_exactly() {
        let big = u64::MAX - 3;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
        assert_eq!(v.to_string(), big.to_string());
    }

    #[test]
    fn f64_shortest_form_round_trips() {
        for x in [0.1, 6e-6, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0] {
            let v = Json::Num(x);
            let back = Json::parse(&v.to_string()).unwrap();
            assert_eq!(back.as_f64(), Some(x), "{x}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny \"quoted\" é","d":{"e":[]}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x\ny \"quoted\" é"));
    }

    #[test]
    fn whitespace_and_errors() {
        assert!(Json::parse(" { \"k\" : [ 1 , 2 ] } ").is_ok());
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"unterminated",
            "{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.0), ("b".into(), -2.5)];
        assert_eq!(Vec::<(String, f64)>::from_json(&v.to_json()).unwrap(), v);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_json(&o.to_json()).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_json(&Some(9u64).to_json()).unwrap(),
            Some(9)
        );
    }

    #[test]
    fn integers_written_without_decimal_point_nums_with() {
        assert_eq!(Json::UInt(5).to_string(), "5");
        assert_eq!(Json::Num(5.0).to_string(), "5.0");
        assert_eq!(Json::parse("5.0").unwrap(), Json::Num(5.0));
        assert_eq!(Json::parse("5").unwrap(), Json::UInt(5));
    }
}
