//! Electrical quantities: voltage, current, resistance, capacitance, charge
//! and frequency, plus the dimensional relations among them.

use crate::energy::{Joules, Seconds, Watts};

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// Resistance in ohms.
    Ohms,
    "Ω"
);
quantity!(
    /// Capacitance in farads.
    Farads,
    "F"
);
quantity!(
    /// Electric charge in coulombs.
    Coulombs,
    "C"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);

// P = V * I
relate!(Volts * Amps = Watts);
// V = I * R
relate!(Amps * Ohms = Volts);
// Q = C * V
relate!(Farads * Volts = Coulombs);
// Q = I * t
relate!(Amps * Seconds = Coulombs);

impl Volts {
    /// Power dissipated across this voltage at the given current.
    ///
    /// Equivalent to `self * current`; provided for call-site readability in
    /// loss-accounting code.
    #[inline]
    pub fn power_at(self, current: Amps) -> Watts {
        self * current
    }
}

impl Ohms {
    /// Conduction (I²R) loss through this resistance at the given current.
    #[inline]
    pub fn conduction_loss(self, current: Amps) -> Watts {
        Watts::new(current.value() * current.value() * self.value())
    }
}

impl Farads {
    /// Energy stored in this capacitance charged to `v`: `E = ½ C V²`.
    #[inline]
    pub fn energy_at(self, v: Volts) -> Joules {
        Joules::new(0.5 * self.value() * v.value() * v.value())
    }

    /// Charge held at voltage `v`: `Q = C V`.
    #[inline]
    pub fn charge_at(self, v: Volts) -> Coulombs {
        self * v
    }
}

impl Coulombs {
    /// Coulombs per milliamp-hour (1 mAh = 3.6 C).
    pub const PER_MILLIAMP_HOUR: f64 = 3.6;

    /// Creates a charge from milliamp-hours, the battery-datasheet unit
    /// (the §4.4 storage cell is quoted as 15 mAh).
    #[inline]
    pub fn from_milliamp_hours(mah: f64) -> Self {
        Self::new(mah * Self::PER_MILLIAMP_HOUR)
    }

    /// Returns the charge in milliamp-hours.
    #[inline]
    pub fn milliamp_hours(self) -> f64 {
        self.value() / Self::PER_MILLIAMP_HOUR
    }
}

impl Hertz {
    /// The period of one cycle, `1/f`.
    ///
    /// # Panics
    ///
    /// Does not panic; a zero frequency yields an infinite period.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.value())
    }
}

impl Seconds {
    /// The frequency whose period is this duration, `1/t`.
    #[inline]
    pub fn frequency(self) -> Hertz {
        Hertz::new(1.0 / self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Volts::new(1.2)), "1.2 V");
        assert_eq!(format!("{:.2}", Amps::from_milli(1.5)), "0.00 A");
        assert_eq!(format!("{}", Ohms::new(50.0)), "50 Ω");
    }

    #[test]
    fn si_prefixes_round_trip() {
        let i = Amps::from_nano(18.0);
        assert!((i.nano() - 18.0).abs() < 1e-9);
        let c = Farads::from_micro(2.2);
        assert!((c.micro() - 2.2).abs() < 1e-12);
        let f = Hertz::from_mega(1863.0);
        assert!((f.mega() - 1863.0).abs() < 1e-9);
    }

    #[test]
    fn charge_from_current_and_time() {
        let q = Amps::from_milli(1.5) * Seconds::new(10.0);
        assert!((q.milli() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn conduction_loss_quadratic_in_current() {
        let r = Ohms::new(2.0);
        let p1 = r.conduction_loss(Amps::from_milli(1.0));
        let p2 = r.conduction_loss(Amps::from_milli(2.0));
        assert!((p2.value() / p1.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn period_frequency_inverse() {
        let f = Hertz::from_kilo(330.0);
        let t = f.period();
        assert!((t.frequency().value() - f.value()).abs() < 1e-3);
    }

    #[test]
    fn quantity_sum() {
        let rails = [
            Amps::from_micro(1.0),
            Amps::from_micro(2.0),
            Amps::from_micro(3.0),
        ];
        let total: Amps = rails.iter().sum();
        assert!((total.micro() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_of_like_quantities_is_dimensionless() {
        let ratio = Volts::new(2.4) / Volts::new(1.2);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_and_minmax() {
        let v = Volts::new(3.9);
        assert_eq!(v.clamp(Volts::new(2.1), Volts::new(3.6)), Volts::new(3.6));
        assert_eq!(Volts::new(1.0).max(Volts::new(2.0)), Volts::new(2.0));
        assert_eq!(Volts::new(1.0).min(Volts::new(2.0)), Volts::new(1.0));
    }
}
