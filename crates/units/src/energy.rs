//! Energy, power and time quantities.

use crate::mechanics::Grams;

quantity!(
    /// Power in watts.
    Watts,
    "W"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);
quantity!(
    /// Duration in seconds (floating point; the simulation kernel uses an
    /// integer tick clock and converts at the boundary).
    Seconds,
    "s"
);
quantity!(
    /// Gravimetric energy density in joules per gram, the figure of merit
    /// the paper uses to compare NiMH (220 J/g), supercapacitors (10 J/g)
    /// and ceramic capacitors (2 J/g).
    JoulesPerGram,
    "J/g"
);

// E = P * t
relate!(Watts * Seconds = Joules);
// E = (J/g) * m
relate!(JoulesPerGram * Grams = Joules);

impl Seconds {
    /// One millisecond.
    pub const MILLI: Self = Self::new(1e-3);
    /// One minute.
    pub const MINUTE: Self = Self::new(60.0);
    /// One hour.
    pub const HOUR: Self = Self::new(3600.0);
    /// One day.
    pub const DAY: Self = Self::new(86_400.0);
    /// One (365-day) year.
    pub const YEAR: Self = Self::new(365.0 * 86_400.0);

    /// Creates a duration from hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Self::new(hours * 3600.0)
    }

    /// Returns the duration expressed in hours.
    #[inline]
    pub fn hours(self) -> f64 {
        self.value() / 3600.0
    }

    /// Creates a duration from days.
    #[inline]
    pub fn from_days(days: f64) -> Self {
        Self::new(days * 86_400.0)
    }

    /// Returns the duration expressed in days.
    #[inline]
    pub fn days(self) -> f64 {
        self.value() / 86_400.0
    }
}

impl Joules {
    /// Creates an energy from milliamp-hours at a given voltage — the way
    /// battery capacity is specified on datasheets (the PicoCube cell is
    /// 15 mAh at a nominal 1.2 V).
    #[inline]
    pub fn from_milliamp_hours(mah: f64, nominal: crate::Volts) -> Self {
        Self::new(mah * 1e-3 * 3600.0 * nominal.value())
    }

    /// Expresses this energy as milliamp-hours at a given nominal voltage.
    #[inline]
    pub fn as_milliamp_hours(self, nominal: crate::Volts) -> f64 {
        self.value() / (1e-3 * 3600.0 * nominal.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Volts;

    #[test]
    fn battery_capacity_round_trip() {
        let e = Joules::from_milliamp_hours(15.0, Volts::new(1.2));
        // 15 mAh * 1.2 V = 64.8 J
        assert!((e.value() - 64.8).abs() < 1e-9);
        assert!((e.as_milliamp_hours(Volts::new(1.2)) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn duration_constants() {
        assert_eq!(Seconds::HOUR.value(), 3600.0);
        assert!((Seconds::from_days(2.0).hours() - 48.0).abs() < 1e-9);
        assert!((Seconds::YEAR.days() - 365.0).abs() < 1e-9);
    }

    #[test]
    fn energy_density_times_mass() {
        // The paper's NiMH figure: 220 J/g. A 1 g cell stores 220 J.
        let e = JoulesPerGram::new(220.0) * Grams::new(1.0);
        assert!((e.value() - 220.0).abs() < 1e-12);
    }

    #[test]
    fn six_microwatt_average_over_a_year() {
        // Sanity check on the paper's headline claim: 6 µW for a year is
        // about 189 J — three 15 mAh NiMH cells' worth, hence harvesting.
        let e = Watts::from_micro(6.0) * Seconds::YEAR;
        assert!((e.value() - 189.216).abs() < 1e-3);
    }
}
