//! Property-based tests for the quantity algebra.

use picocube_units::*;
use proptest::prelude::*;

const EPS: f64 = 1e-9;

fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= EPS * scale
}

proptest! {
    #[test]
    fn addition_commutes(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let x = Volts::new(a) + Volts::new(b);
        let y = Volts::new(b) + Volts::new(a);
        prop_assert!(close(x.value(), y.value()));
    }

    #[test]
    fn addition_associates(a in -1e3f64..1e3, b in -1e3f64..1e3, c in -1e3f64..1e3) {
        let x = (Watts::new(a) + Watts::new(b)) + Watts::new(c);
        let y = Watts::new(a) + (Watts::new(b) + Watts::new(c));
        prop_assert!(close(x.value(), y.value()));
    }

    #[test]
    fn power_division_inverts_multiplication(v in 0.1f64..100.0, i in 1e-9f64..1.0) {
        let p = Volts::new(v) * Amps::new(i);
        prop_assert!(close((p / Volts::new(v)).value(), i));
        prop_assert!(close((p / Amps::new(i)).value(), v));
    }

    #[test]
    fn energy_division_inverts_multiplication(p in 1e-9f64..10.0, t in 1e-6f64..1e7) {
        let e = Watts::new(p) * Seconds::new(t);
        prop_assert!(close((e / Watts::new(p)).value(), t));
        prop_assert!(close((e / Seconds::new(t)).value(), p));
    }

    #[test]
    fn si_prefix_round_trips(x in -1e9f64..1e9) {
        prop_assert!(close(Amps::from_micro(x).micro(), x));
        prop_assert!(close(Volts::from_milli(x).milli(), x));
        prop_assert!(close(Joules::from_nano(x).nano(), x));
        prop_assert!(close(Hertz::from_mega(x).mega(), x));
        prop_assert!(close(Watts::from_kilo(x).kilo(), x));
    }

    #[test]
    fn dbm_round_trip(dbm in -120.0f64..30.0) {
        let back = Dbm::from_watts(Dbm::new(dbm).to_watts());
        prop_assert!(close(back.value(), dbm));
    }

    #[test]
    fn db_offsets_compose(dbm in -100.0f64..10.0, g1 in -40.0f64..40.0, g2 in -40.0f64..40.0) {
        let a = (Dbm::new(dbm) + Db::new(g1)) + Db::new(g2);
        let b = Dbm::new(dbm) + (Db::new(g1) + Db::new(g2));
        prop_assert!(close(a.value(), b.value()));
        // And in the linear domain: adding dB multiplies watts.
        let lin = Dbm::new(dbm).to_watts().value() * Db::new(g1).to_ratio();
        prop_assert!(close((Dbm::new(dbm) + Db::new(g1)).to_watts().value(), lin));
    }

    #[test]
    fn neg_is_additive_inverse(x in -1e6f64..1e6) {
        let q = Ohms::new(x);
        prop_assert!(close((q + (-q)).value(), 0.0));
    }

    #[test]
    fn scaling_distributes(x in -1e3f64..1e3, y in -1e3f64..1e3, k in -100.0f64..100.0) {
        let lhs = (Farads::new(x) + Farads::new(y)) * k;
        let rhs = Farads::new(x) * k + Farads::new(y) * k;
        prop_assert!(close(lhs.value(), rhs.value()));
    }

    #[test]
    fn ordering_is_consistent_with_values(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        prop_assert_eq!(Seconds::new(a) < Seconds::new(b), a < b);
        prop_assert_eq!(Celsius::new(a) >= Celsius::new(b), a >= b);
    }

    #[test]
    fn temperature_round_trips(t in -273.0f64..1000.0) {
        prop_assert!(close(Celsius::from_kelvin(Celsius::new(t).kelvin()).value(), t));
        prop_assert!(close(Celsius::from_fahrenheit(Celsius::new(t).fahrenheit()).value(), t));
    }

    #[test]
    fn capacitor_energy_is_quadratic(c in 1e-12f64..1e-3, v in 0.0f64..10.0) {
        let e1 = Farads::new(c).energy_at(Volts::new(v));
        let e2 = Farads::new(c).energy_at(Volts::new(2.0 * v));
        prop_assert!(close(e2.value(), 4.0 * e1.value()));
    }

    #[test]
    fn mah_round_trip(mah in 0.1f64..1000.0, v in 0.5f64..5.0) {
        let e = Joules::from_milliamp_hours(mah, Volts::new(v));
        prop_assert!(close(e.as_milliamp_hours(Volts::new(v)), mah));
    }
}
