//! The §6 demo receiver station: "a custom-built receiver board using
//! another BWRC research radio as receiver, an oscilloscope showing the
//! raw and processed baseband signal, […] and a laptop with a graphical
//! display of sensor values" (Figs 7–8).

use crate::bus::TransmittedPacket;
use picocube_radio::packet::{self, Checksum};
use picocube_radio::{Link, SuperRegenReceiver};
use picocube_sensors::Sca3000;
use picocube_sim::{SimRng, SimTime};
use picocube_units::{Gs, Meters};

/// One decoded X/Y/Z sample as the laptop display would plot it (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReceivedSample {
    /// Reception time.
    pub time: SimTime,
    /// Transmitting node id.
    pub node_id: u8,
    /// Decoded X-axis acceleration.
    pub x: Gs,
    /// Decoded Y-axis acceleration.
    pub y: Gs,
    /// Decoded Z-axis acceleration.
    pub z: Gs,
}

/// The receiver board + laptop pipeline.
#[derive(Debug)]
pub struct DemoStation {
    receiver: SuperRegenReceiver,
    link: Link,
    distance: Meters,
    rng: SimRng,
    received: Vec<ReceivedSample>,
    lost: usize,
}

impl DemoStation {
    /// Sets up the station at a given range from the cube.
    ///
    /// # Panics
    ///
    /// Panics if the distance is non-positive.
    pub fn new(receiver: SuperRegenReceiver, link: Link, distance: Meters, seed: u64) -> Self {
        assert!(distance.value() > 0.0, "distance must be positive");
        Self {
            receiver,
            link,
            distance,
            rng: SimRng::seed_from(seed),
            received: Vec::new(),
            lost: 0,
        }
    }

    /// Station at the demo-table distance (1 m) with the reference-\[12\]
    /// receiver and the as-built antenna link.
    pub fn demo_table(seed: u64) -> Self {
        let link = Link {
            tx_power: picocube_units::Dbm::new(0.8),
            tx_gain: picocube_radio::PatchAntenna::as_built()
                .gain_dbi(picocube_units::Hertz::new(1.863e9)),
            rx_gain: picocube_units::Db::new(0.0),
            orientation_loss: picocube_units::Db::new(2.0),
            channel: picocube_radio::Channel::demo_room(),
        };
        Self::new(
            SuperRegenReceiver::bwrc_issc05(),
            link,
            Meters::new(1.0),
            seed,
        )
    }

    /// Moves the station.
    ///
    /// # Panics
    ///
    /// Panics if the distance is non-positive.
    pub fn set_distance(&mut self, distance: Meters) {
        assert!(distance.value() > 0.0, "distance must be positive");
        self.distance = distance;
    }

    /// Offers one on-air packet to the station; decodes motion payloads.
    /// Returns the decoded sample if the frame survived the channel.
    pub fn offer(&mut self, packet: &TransmittedPacket) -> Option<ReceivedSample> {
        match self.receiver.receive(
            &self.link,
            self.distance,
            &packet.bytes,
            Checksum::Xor,
            &mut self.rng,
        ) {
            Ok(frame) if frame.payload.len() == 6 => {
                let axis = |hi: u8, lo: u8| Sca3000::decode(u16::from(hi) << 8 | u16::from(lo));
                let [xh, xl, yh, yl, zh, zl] = *frame.payload.as_slice() else {
                    return None; // unreachable: length checked by the guard
                };
                let sample = ReceivedSample {
                    time: packet.time,
                    node_id: frame.node_id,
                    x: axis(xh, xl),
                    y: axis(yh, yl),
                    z: axis(zh, zl),
                };
                self.received.push(sample);
                Some(sample)
            }
            Ok(_) => {
                // Well-formed frame of another application; count received
                // but not plottable.
                None
            }
            Err(_) => {
                self.lost += 1;
                None
            }
        }
    }

    /// Offers a batch of packets; returns how many decoded.
    pub fn offer_all(&mut self, packets: &[TransmittedPacket]) -> usize {
        packets.iter().filter(|p| self.offer(p).is_some()).count()
    }

    /// Everything plotted so far.
    pub fn samples(&self) -> &[ReceivedSample] {
        &self.received
    }

    /// Packets lost to the channel so far.
    pub fn lost(&self) -> usize {
        self.lost
    }

    /// Raw decode: parse any TPMS packet's payload (four 12-bit codes).
    pub fn decode_tpms(packet: &TransmittedPacket) -> Option<[u16; 4]> {
        let frame = packet::decode(&packet.bytes, Checksum::Xor).ok()?;
        if frame.payload.len() != 8 {
            return None;
        }
        let mut codes = [0u16; 4];
        for (slot, pair) in codes.iter_mut().zip(frame.payload.chunks_exact(2)) {
            if let [hi, lo] = *pair {
                *slot = u16::from(hi) << 8 | u16::from(lo);
            }
        }
        Some(codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_radio::{OokTransmitter, Transmission};

    fn motion_packet(x: f64, y: f64, z: f64) -> TransmittedPacket {
        let enc = |g: f64| Sca3000::encode(Gs::new(g));
        let payload: Vec<u8> = [enc(x), enc(y), enc(z)]
            .iter()
            .flat_map(|c| [(c >> 8) as u8, *c as u8])
            .collect();
        let bytes = packet::encode(0x42, &payload, Checksum::Xor);
        let transmission: Transmission = OokTransmitter::picocube().transmit(&bytes);
        TransmittedPacket {
            time: SimTime::from_secs(1),
            bytes,
            transmission,
            relayed: false,
        }
    }

    #[test]
    fn decodes_xyz_at_the_table() {
        let mut station = DemoStation::demo_table(1);
        let sample = station
            .offer(&motion_packet(0.5, -1.0, 1.2))
            .expect("decodes at 1 m");
        assert!((sample.x.value() - 0.5).abs() < 0.01);
        assert!((sample.y.value() + 1.0).abs() < 0.01);
        assert!((sample.z.value() - 1.2).abs() < 0.01);
        assert_eq!(sample.node_id, 0x42);
    }

    #[test]
    fn range_matters() {
        let mut station = DemoStation::demo_table(2);
        station.set_distance(Meters::new(500.0));
        let got = station.offer_all(
            &(0..50)
                .map(|_| motion_packet(0.0, 0.0, 1.0))
                .collect::<Vec<_>>(),
        );
        assert!(got < 5, "decoded {got}/50 at 500 m");
        assert!(station.lost() > 45);
    }

    #[test]
    fn tpms_payloads_are_not_plotted_as_motion() {
        let bytes = packet::encode(7, &[0; 8], Checksum::Xor);
        let transmission = OokTransmitter::picocube().transmit(&bytes);
        let p = TransmittedPacket {
            time: SimTime::ZERO,
            bytes,
            transmission,
            relayed: false,
        };
        let mut station = DemoStation::demo_table(3);
        assert!(station.offer(&p).is_none());
        assert_eq!(
            station.lost(),
            0,
            "an 8-byte frame is received, just not motion"
        );
        let codes = DemoStation::decode_tpms(&p).unwrap();
        assert_eq!(codes, [0, 0, 0, 0]);
    }
}
