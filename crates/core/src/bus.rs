//! The 18-signal bus: SPI multiplexing between sensor and radio, and the
//! radio front-end that turns firmware SPI writes into on-air packets.

use picocube_mcu::firmware::{PIN_RADIO_PA, PIN_RADIO_SPI, PIN_SENSOR_CS};
use picocube_mcu::SpiDevice;
use picocube_radio::{OokTransmitter, Transmission};
use picocube_sensors::{Sca3000, Sp12};
use picocube_sim::SimTime;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A packet the node put on the air, with its RF accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TransmittedPacket {
    /// When the PA window closed (end of transmission).
    pub time: SimTime,
    /// The frame bytes as clocked to the radio.
    pub bytes: Vec<u8>,
    /// RF energy/duration accounting from the transmitter model.
    pub transmission: Transmission,
}

impl picocube_units::json::ToJson for TransmittedPacket {
    fn to_json(&self) -> picocube_units::json::Json {
        use picocube_units::json::Json;
        Json::Obj(vec![
            ("time".into(), self.time.to_json()),
            ("bytes".into(), self.bytes.to_json()),
            ("transmission".into(), self.transmission.to_json()),
        ])
    }
}

impl picocube_units::json::FromJson for TransmittedPacket {
    fn from_json(
        value: &picocube_units::json::Json,
    ) -> Result<Self, picocube_units::json::JsonError> {
        use picocube_units::json::{field, FromJson};
        Ok(Self {
            time: FromJson::from_json(field(value, "time")?)?,
            bytes: FromJson::from_json(field(value, "bytes")?)?,
            transmission: FromJson::from_json(field(value, "transmission")?)?,
        })
    }
}

/// The radio board's baseband side: buffers bytes the firmware clocks in
/// over SPI while the radio is selected, and finalizes a packet when the
/// PA window closes.
#[derive(Debug)]
pub struct RadioFrontend {
    tx: OokTransmitter,
    buffer: Vec<u8>,
    packets: Vec<TransmittedPacket>,
}

impl RadioFrontend {
    /// Creates a front-end around a transmitter model.
    pub fn new(tx: OokTransmitter) -> Self {
        Self {
            tx,
            buffer: Vec::new(),
            packets: Vec::new(),
        }
    }

    /// The transmitter model.
    pub fn transmitter(&self) -> &OokTransmitter {
        &self.tx
    }

    /// Accepts one byte from the firmware.
    pub fn feed(&mut self, byte: u8) {
        self.buffer.push(byte);
    }

    /// Whether bytes are pending in the current window.
    pub fn window_open(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// Closes the PA window: accounts the buffered bytes as one packet.
    pub fn close_window(&mut self, at: SimTime) {
        if self.buffer.is_empty() {
            return;
        }
        let bytes = std::mem::take(&mut self.buffer);
        let transmission = self.tx.transmit(&bytes);
        self.packets.push(TransmittedPacket {
            time: at,
            bytes,
            transmission,
        });
    }

    /// All packets transmitted so far.
    pub fn packets(&self) -> &[TransmittedPacket] {
        &self.packets
    }
}

/// The sensor plugged into the bus.
#[derive(Debug)]
pub enum BusSensor {
    /// SP12 TPMS board.
    Sp12(Rc<RefCell<Sp12>>),
    /// SCA3000 accelerometer board.
    Sca3000(Rc<RefCell<Sca3000>>),
}

/// Routes the MCU's SPI transfers by the same GPIO lines the firmware
/// drives: sensor when its chip select is high, radio when the radio SPI
/// power is on.
pub struct BusMux {
    /// P1 output pins, mirrored from the MCU by the node after every step.
    pub(crate) p1: Rc<Cell<u8>>,
    /// P2 output pins, mirrored likewise.
    pub(crate) p2: Rc<Cell<u8>>,
    pub(crate) sensor: BusSensor,
    pub(crate) radio: Rc<RefCell<RadioFrontend>>,
}

impl core::fmt::Debug for BusMux {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "BusMux(p1={:#04x}, p2={:#04x})",
            self.p1.get(),
            self.p2.get()
        )
    }
}

impl SpiDevice for BusMux {
    fn transfer(&mut self, mosi: u8) -> u8 {
        if self.p2.get() & PIN_SENSOR_CS != 0 {
            match &self.sensor {
                BusSensor::Sp12(s) => s.borrow_mut().spi(mosi),
                BusSensor::Sca3000(s) => s.borrow_mut().spi(mosi),
            }
        } else if self.p1.get() & PIN_RADIO_SPI != 0 {
            self.radio.borrow_mut().feed(mosi);
            0x00
        } else {
            // Nothing selected: the bus floats high.
            0xFF
        }
    }
}

/// Exposed for tests: is the PA window currently flagged by the pins?
pub(crate) fn pa_enabled(p1: u8) -> bool {
    p1 & PIN_RADIO_PA != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_sensors::TireSample;

    type MuxParts = (
        BusMux,
        Rc<Cell<u8>>,
        Rc<Cell<u8>>,
        Rc<RefCell<RadioFrontend>>,
    );

    fn mux_with_sp12() -> MuxParts {
        let p1 = Rc::new(Cell::new(0u8));
        let p2 = Rc::new(Cell::new(0u8));
        let sp12 = Rc::new(RefCell::new(Sp12::new()));
        sp12.borrow_mut().set_sample(TireSample::parked());
        let radio = Rc::new(RefCell::new(RadioFrontend::new(OokTransmitter::picocube())));
        let mux = BusMux {
            p1: p1.clone(),
            p2: p2.clone(),
            sensor: BusSensor::Sp12(sp12),
            radio: radio.clone(),
        };
        (mux, p1, p2, radio)
    }

    #[test]
    fn routes_to_sensor_when_selected() {
        let (mut mux, _p1, p2, _) = mux_with_sp12();
        p2.set(PIN_SENSOR_CS);
        // Idle status read: SP12 answers ready.
        assert_eq!(mux.transfer(0xF0) & 1, 1);
    }

    #[test]
    fn routes_to_radio_when_powered() {
        let (mut mux, p1, _p2, radio) = mux_with_sp12();
        p1.set(PIN_RADIO_SPI);
        mux.transfer(0xAA);
        mux.transfer(0xD3);
        assert!(radio.borrow().window_open());
    }

    #[test]
    fn floats_high_when_nothing_selected() {
        let (mut mux, ..) = mux_with_sp12();
        assert_eq!(mux.transfer(0x55), 0xFF);
    }

    #[test]
    fn sensor_wins_over_radio() {
        // Firmware never enables both, but the mux must be deterministic.
        let (mut mux, p1, p2, radio) = mux_with_sp12();
        p1.set(PIN_RADIO_SPI);
        p2.set(PIN_SENSOR_CS);
        mux.transfer(0xF0);
        assert!(!radio.borrow().window_open());
    }

    #[test]
    fn frontend_packetizes_on_window_close() {
        let mut fe = RadioFrontend::new(OokTransmitter::picocube());
        fe.close_window(SimTime::ZERO); // empty window: no packet
        assert!(fe.packets().is_empty());
        for b in [0xAA, 0xAA, 0xD3, 0x42, 1, 2, 3] {
            fe.feed(b);
        }
        fe.close_window(SimTime::from_millis(10));
        assert_eq!(fe.packets().len(), 1);
        let p = &fe.packets()[0];
        assert_eq!(p.bytes.len(), 7);
        assert_eq!(p.transmission.bits, 56);
        assert!(p.transmission.energy.value() > 0.0);
        // The window resets.
        assert!(!fe.window_open());
    }
}
