//! The 18-signal bus: SPI multiplexing between sensor and radio, and the
//! radio front-end that turns firmware SPI writes into on-air packets.

use picocube_mcu::firmware::{PIN_RADIO_PA, PIN_RADIO_SPI, PIN_SENSOR_CS};
use picocube_mcu::SpiDevice;
use picocube_radio::packet::{self, Checksum};
use picocube_radio::{OokTransmitter, Transmission};
use picocube_sensors::{Sca3000, Sp12};
use picocube_sim::{SimDuration, SimTime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A packet the node put on the air, with its RF accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TransmittedPacket {
    /// When the transmission ended (the PA window closed, or — for a
    /// multi-frame window — the next frame started).
    pub time: SimTime,
    /// The frame bytes as clocked to the radio.
    pub bytes: Vec<u8>,
    /// RF energy/duration accounting from the transmitter model.
    pub transmission: Transmission,
    /// Whether this packet was a mesh rebroadcast (synthesized by the
    /// relay path rather than clocked out by the firmware).
    pub relayed: bool,
}

impl picocube_units::json::ToJson for TransmittedPacket {
    fn to_json(&self) -> picocube_units::json::Json {
        use picocube_units::json::Json;
        let mut obj = vec![
            ("time".into(), self.time.to_json()),
            ("bytes".into(), self.bytes.to_json()),
            ("transmission".into(), self.transmission.to_json()),
        ];
        // Omitted when false, keeping pre-mesh serializations byte-stable.
        if self.relayed {
            obj.push(("relayed".into(), self.relayed.to_json()));
        }
        Json::Obj(obj)
    }
}

impl picocube_units::json::FromJson for TransmittedPacket {
    fn from_json(
        value: &picocube_units::json::Json,
    ) -> Result<Self, picocube_units::json::JsonError> {
        use picocube_units::json::{field, FromJson};
        Ok(Self {
            time: FromJson::from_json(field(value, "time")?)?,
            bytes: FromJson::from_json(field(value, "bytes")?)?,
            transmission: FromJson::from_json(field(value, "transmission")?)?,
            relayed: match value.get("relayed") {
                Some(flag) => FromJson::from_json(flag)?,
                None => false,
            },
        })
    }
}

/// The on-air frame header every application firmware emits: two
/// preamble bytes and the start symbol (see `picocube_radio::packet`).
const FRAME_HEADER: [u8; 3] = [0xAA, 0xAA, 0xD3];

/// Splits a PA-window buffer into consecutive well-formed frames.
///
/// The firmware frame format carries no length field, so the split is
/// structural: a boundary is accepted only where the preceding segment
/// decodes cleanly (XOR checksum) *and* the next segment starts with the
/// frame header — and the whole buffer must be covered. Returns `None`
/// unless that yields at least two frames, so single-frame (and
/// unparseable) windows keep the historical one-packet accounting.
fn split_frames(bytes: &[u8]) -> Option<Vec<Vec<u8>>> {
    let mut frames = Vec::new();
    let mut start = 0usize;
    while start < bytes.len() {
        let rest = bytes.get(start..)?;
        if !rest.starts_with(&FRAME_HEADER) {
            return None;
        }
        // Shortest prefix that decodes and ends at the next header (or
        // the end of the buffer).
        let mut frame_len = None;
        for (offset, window) in rest.windows(FRAME_HEADER.len()).enumerate().skip(1) {
            let prefix_decodes = rest
                .get(..offset)
                .is_some_and(|prefix| packet::decode(prefix, Checksum::Xor).is_ok());
            if window == FRAME_HEADER && prefix_decodes {
                frame_len = Some(offset);
                break;
            }
        }
        let frame_len = match frame_len {
            Some(len) => len,
            None if packet::decode(rest, Checksum::Xor).is_ok() => rest.len(),
            None => return None,
        };
        frames.push(rest.get(..frame_len)?.to_vec());
        start += frame_len;
    }
    (frames.len() >= 2).then_some(frames)
}

/// The radio board's baseband side: buffers bytes the firmware clocks in
/// over SPI while the radio is selected, and finalizes a packet when the
/// PA window closes.
#[derive(Debug)]
pub struct RadioFrontend {
    tx: OokTransmitter,
    buffer: Vec<u8>,
    packets: Vec<TransmittedPacket>,
}

impl RadioFrontend {
    /// Creates a front-end around a transmitter model.
    pub fn new(tx: OokTransmitter) -> Self {
        Self {
            tx,
            buffer: Vec::new(),
            packets: Vec::new(),
        }
    }

    /// The transmitter model.
    pub fn transmitter(&self) -> &OokTransmitter {
        &self.tx
    }

    /// Accepts one byte from the firmware.
    pub fn feed(&mut self, byte: u8) {
        self.buffer.push(byte);
    }

    /// Whether bytes are pending in the current window.
    pub fn window_open(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// Closes the PA window: accounts the buffered bytes as on-air packets.
    ///
    /// A window holding several back-to-back frames (the alarm firmware
    /// double-transmits inside one PA pulse) is split structurally and
    /// accounted frame by frame: the last frame ends when the PA closes at
    /// `at`, each earlier one when its successor starts. Buffers that do
    /// not parse as at least two well-formed frames remain one packet.
    pub fn close_window(&mut self, at: SimTime) {
        if self.buffer.is_empty() {
            return;
        }
        let bytes = std::mem::take(&mut self.buffer);
        let frames = split_frames(&bytes).unwrap_or_else(|| vec![bytes]);
        let mut window: Vec<TransmittedPacket> = Vec::with_capacity(frames.len());
        let mut end = at;
        for frame in frames.into_iter().rev() {
            let transmission = self.tx.transmit(&frame);
            let start = end
                .checked_sub(SimDuration::from_seconds(transmission.duration))
                .unwrap_or(SimTime::ZERO);
            window.push(TransmittedPacket {
                time: end,
                bytes: frame,
                transmission,
                relayed: false,
            });
            end = start;
        }
        window.reverse();
        self.packets.extend(window);
    }

    /// Synthesizes a transmission that bypasses the firmware SPI path: the
    /// mesh relay hands a received frame straight to the transmitter at
    /// `start`. The packet is recorded with its end time and the `relayed`
    /// marker; the RF accounting is returned for the caller's energy and
    /// telemetry bookkeeping.
    pub fn transmit_relay(&mut self, start: SimTime, bytes: Vec<u8>) -> Transmission {
        let transmission = self.tx.transmit(&bytes);
        self.packets.push(TransmittedPacket {
            time: start + SimDuration::from_seconds(transmission.duration),
            bytes,
            transmission,
            relayed: true,
        });
        transmission
    }

    /// All packets transmitted so far.
    pub fn packets(&self) -> &[TransmittedPacket] {
        &self.packets
    }
}

/// The sensor plugged into the bus.
#[derive(Debug)]
pub enum BusSensor {
    /// SP12 TPMS board.
    Sp12(Rc<RefCell<Sp12>>),
    /// SCA3000 accelerometer board.
    Sca3000(Rc<RefCell<Sca3000>>),
}

/// Routes the MCU's SPI transfers by the same GPIO lines the firmware
/// drives: sensor when its chip select is high, radio when the radio SPI
/// power is on.
pub struct BusMux {
    /// P1 output pins, mirrored from the MCU by the node after every step.
    pub(crate) p1: Rc<Cell<u8>>,
    /// P2 output pins, mirrored likewise.
    pub(crate) p2: Rc<Cell<u8>>,
    pub(crate) sensor: BusSensor,
    pub(crate) radio: Rc<RefCell<RadioFrontend>>,
}

impl core::fmt::Debug for BusMux {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "BusMux(p1={:#04x}, p2={:#04x})",
            self.p1.get(),
            self.p2.get()
        )
    }
}

impl SpiDevice for BusMux {
    fn transfer(&mut self, mosi: u8) -> u8 {
        if self.p2.get() & PIN_SENSOR_CS != 0 {
            match &self.sensor {
                BusSensor::Sp12(s) => s.borrow_mut().spi(mosi),
                BusSensor::Sca3000(s) => s.borrow_mut().spi(mosi),
            }
        } else if self.p1.get() & PIN_RADIO_SPI != 0 {
            self.radio.borrow_mut().feed(mosi);
            0x00
        } else {
            // Nothing selected: the bus floats high.
            0xFF
        }
    }
}

/// Exposed for tests: is the PA window currently flagged by the pins?
pub(crate) fn pa_enabled(p1: u8) -> bool {
    p1 & PIN_RADIO_PA != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_sensors::TireSample;

    type MuxParts = (
        BusMux,
        Rc<Cell<u8>>,
        Rc<Cell<u8>>,
        Rc<RefCell<RadioFrontend>>,
    );

    fn mux_with_sp12() -> MuxParts {
        let p1 = Rc::new(Cell::new(0u8));
        let p2 = Rc::new(Cell::new(0u8));
        let sp12 = Rc::new(RefCell::new(Sp12::new()));
        sp12.borrow_mut().set_sample(TireSample::parked());
        let radio = Rc::new(RefCell::new(RadioFrontend::new(OokTransmitter::picocube())));
        let mux = BusMux {
            p1: p1.clone(),
            p2: p2.clone(),
            sensor: BusSensor::Sp12(sp12),
            radio: radio.clone(),
        };
        (mux, p1, p2, radio)
    }

    #[test]
    fn routes_to_sensor_when_selected() {
        let (mut mux, _p1, p2, _) = mux_with_sp12();
        p2.set(PIN_SENSOR_CS);
        // Idle status read: SP12 answers ready.
        assert_eq!(mux.transfer(0xF0) & 1, 1);
    }

    #[test]
    fn routes_to_radio_when_powered() {
        let (mut mux, p1, _p2, radio) = mux_with_sp12();
        p1.set(PIN_RADIO_SPI);
        mux.transfer(0xAA);
        mux.transfer(0xD3);
        assert!(radio.borrow().window_open());
    }

    #[test]
    fn floats_high_when_nothing_selected() {
        let (mut mux, ..) = mux_with_sp12();
        assert_eq!(mux.transfer(0x55), 0xFF);
    }

    #[test]
    fn sensor_wins_over_radio() {
        // Firmware never enables both, but the mux must be deterministic.
        let (mut mux, p1, p2, radio) = mux_with_sp12();
        p1.set(PIN_RADIO_SPI);
        p2.set(PIN_SENSOR_CS);
        mux.transfer(0xF0);
        assert!(!radio.borrow().window_open());
    }

    #[test]
    fn two_frames_in_one_window_become_two_packets() {
        let mut fe = RadioFrontend::new(OokTransmitter::picocube());
        let frame = packet::encode(0x42, &[1, 2, 3, 4, 5, 6], Checksum::Xor);
        for b in frame.iter().chain(&frame) {
            fe.feed(*b);
        }
        fe.close_window(SimTime::from_millis(40));
        assert_eq!(fe.packets().len(), 2, "double-tx window splits");
        let (first, second) = (&fe.packets()[0], &fe.packets()[1]);
        assert_eq!(first.bytes, frame);
        assert_eq!(second.bytes, frame);
        // The second frame ends at the PA close; the first ends where the
        // second started.
        assert_eq!(second.time, SimTime::from_millis(40));
        assert_eq!(
            first.time,
            second
                .time
                .checked_sub(SimDuration::from_seconds(second.transmission.duration))
                .expect("window start after t=0")
        );
        assert!(!first.relayed && !second.relayed);
    }

    #[test]
    fn corrupt_window_stays_one_packet() {
        // A buffer that fails structural parsing keeps the historical
        // one-packet accounting (here: the second "frame" checksum is bad).
        let mut fe = RadioFrontend::new(OokTransmitter::picocube());
        let frame = packet::encode(0x42, &[1, 2, 3, 4, 5, 6], Checksum::Xor);
        let mut bad = frame.clone();
        if let Some(last) = bad.last_mut() {
            *last ^= 0xFF;
        }
        for b in frame.iter().chain(&bad) {
            fe.feed(*b);
        }
        fe.close_window(SimTime::from_millis(40));
        assert_eq!(fe.packets().len(), 1);
        assert_eq!(fe.packets()[0].bytes.len(), 2 * frame.len());
    }

    #[test]
    fn relay_transmission_is_marked_and_timed() {
        let mut fe = RadioFrontend::new(OokTransmitter::picocube());
        let frame = packet::encode(0x07, &[1, 2, 3, 4, 5, 6], Checksum::Xor);
        let start = SimTime::from_millis(25);
        let transmission = fe.transmit_relay(start, frame.clone());
        assert_eq!(fe.packets().len(), 1);
        let p = &fe.packets()[0];
        assert!(p.relayed);
        assert_eq!(p.bytes, frame);
        assert_eq!(
            p.time,
            start + SimDuration::from_seconds(transmission.duration)
        );
        // The relayed flag survives (and its absence defaults) in JSON.
        use picocube_units::json::{FromJson, Json, ToJson};
        let text = p.to_json().to_string();
        assert!(text.contains("\"relayed\""));
        let back = TransmittedPacket::from_json(&Json::parse(&text).expect("parses"))
            .expect("round trips");
        assert_eq!(&back, p);
    }

    #[test]
    fn frontend_packetizes_on_window_close() {
        let mut fe = RadioFrontend::new(OokTransmitter::picocube());
        fe.close_window(SimTime::ZERO); // empty window: no packet
        assert!(fe.packets().is_empty());
        for b in [0xAA, 0xAA, 0xD3, 0x42, 1, 2, 3] {
            fe.feed(b);
        }
        fe.close_window(SimTime::from_millis(10));
        assert_eq!(fe.packets().len(), 1);
        let p = &fe.packets()[0];
        assert_eq!(p.bytes.len(), 7);
        assert_eq!(p.transmission.bits, 56);
        assert!(p.transmission.energy.value() > 0.0);
        // The window resets.
        assert!(!fe.window_open());
    }
}
