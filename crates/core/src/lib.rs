//! The assembled PicoCube: a full-node simulation of the 1 cm³
//! harvested-energy sensor node.
//!
//! This crate wires the subsystem models together exactly as the hardware
//! is wired (Fig. 1): the emulated MSP430 runs the stock interrupt-driven
//! firmware; its SPI bus is multiplexed between the sensor and the radio by
//! the same GPIO lines the firmware drives; the power chain (the built
//! COTS chain or the §7.1 integrated IC) maps every rail's draw back to
//! the NiMH bus; a harvester charges the cell through the rectifier; and a
//! [`PowerLedger`](picocube_sim::PowerLedger) integrates it all so the
//! paper's measured quantities — the Fig. 6 power profile, the 6 µW
//! average, the ~14 ms burst — are *measurements of the simulation*.
//!
//! # Examples
//!
//! ```
//! use picocube_node::{NodeConfig, PicoCube};
//! use picocube_sim::SimDuration;
//!
//! let mut node = PicoCube::tpms(NodeConfig::default())?;
//! node.run_for(SimDuration::from_secs(60));
//! let report = node.report();
//! assert!(report.average_power.micro() < 20.0);
//! assert!(!report.packets.is_empty());
//! # Ok::<(), picocube_node::BuildError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
mod bus;
mod demo;
mod fleet;
mod mesh;
mod node;
mod packaging;
pub mod scenario;
pub mod stack;

pub use baseline::{node_class_table, MoteClassNode, NodeClassRow};
pub use bus::{RadioFrontend, TransmittedPacket};
pub use demo::{DemoStation, ReceivedSample};
pub use fleet::{
    capture_sweep, merge_fleet, run_fleet, run_fleet_partial, run_fleet_resumable, run_fleet_with,
    run_fleet_with_stats, simulate_node, simulate_node_instrumented, AirSlot, CheckpointError,
    FleetApp, FleetCheckpoint, FleetConfig, FleetConfigBuilder, FleetConfigError, FleetOutcome,
    FleetSchedStats, NodeOnAir, PacketFate, Parallelism, StackCheckpoint,
};
pub use mesh::{run_mesh, run_mesh_with, MeshConfig, MeshConfigError, MeshOutcome};
pub use node::{
    BuildError, HarvestDropout, HarvesterKind, NodeConfig, NodeReport, PicoCube, PowerChainKind,
    SensorKind, StorageKind,
};
pub use packaging::{
    BoardSpec, BusAllocation, ElastomerSpec, PackagingError, StackDesign, StackReport,
};
pub use scenario::{
    run_scenario_with, Campaign, ChaosPlan, FleetSpec, MeshSpec, RunSummary, Scenario,
    ScenarioError, ScenarioOutcome, SurvivalCurve, Sweep, SweepKnob,
};
pub use stack::{
    AppBoard, Board, BoardDraw, NodeFault, RadioBoard, RailSolve, RunOutcome, SensorBoard, Stack,
    StackBuilder, StackCtx, StorageBoard, SupervisorVerdict, SwitchBoard,
};
