//! The §2 background baseline: a Berkeley-COTS-"mote"-class node, for the
//! node-class comparison (experiment E9).
//!
//! "Early sensor nodes were bulky (the size of a coke can) […] Yet the size
//! and power consumption of the motes (and their derivatives) was still too
//! large to be considered for true ubiquitous deployment." This module
//! gives that claim a runnable comparator: a parametric duty-cycled node
//! model evaluated on the same sample-every-6-s workload.

use picocube_units::{Amps, CubicMillimeters, Joules, Seconds, Volts, Watts};

/// A duty-cycled COTS node (Mica-class mote or similar).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoteClassNode {
    /// Node name for tables.
    pub name: &'static str,
    /// Supply voltage (2×AA ≈ 3 V).
    pub supply: Volts,
    /// Sleep-state current.
    pub sleep_current: Amps,
    /// Active (CPU + sensor) current.
    pub active_current: Amps,
    /// Radio transmit current.
    pub radio_current: Amps,
    /// Time awake per sample.
    pub active_time: Seconds,
    /// Time transmitting per sample.
    pub radio_time: Seconds,
    /// Node volume.
    pub volume: CubicMillimeters,
    /// Onboard energy store (2×AA ≈ 2500 mAh × 3 V).
    pub stored_energy: Joules,
}

impl MoteClassNode {
    /// A Mica2-class COTS mote: 8-bit MCU, CC1000-class radio, 2×AA cells,
    /// matchbox-plus-batteries volume.
    pub fn mica_class() -> Self {
        Self {
            name: "COTS mote (Mica-class)",
            supply: Volts::new(3.0),
            sleep_current: Amps::from_micro(30.0),
            active_current: Amps::from_milli(8.0),
            radio_current: Amps::from_milli(25.0),
            active_time: Seconds::new(5e-3),
            radio_time: Seconds::new(4e-3),
            volume: CubicMillimeters::new(58.0 * 32.0 * 25.0),
            stored_energy: Joules::from_milliamp_hours(2_500.0, Volts::new(3.0)),
        }
    }

    /// The original "coke can" COTS node of the late 90s.
    pub fn coke_can_class() -> Self {
        Self {
            name: "COTS node (coke-can era)",
            supply: Volts::new(9.0),
            sleep_current: Amps::from_milli(5.0),
            active_current: Amps::from_milli(50.0),
            radio_current: Amps::from_milli(80.0),
            active_time: Seconds::new(20e-3),
            radio_time: Seconds::new(20e-3),
            volume: CubicMillimeters::new(66.0 * 66.0 * 120.0),
            stored_energy: Joules::from_milliamp_hours(10_000.0, Volts::new(9.0)),
        }
    }

    /// Average power on a periodic sampling workload.
    ///
    /// # Panics
    ///
    /// Panics if the period is not strictly positive.
    pub fn average_power(&self, sample_period: Seconds) -> Watts {
        assert!(sample_period.value() > 0.0, "period must be positive");
        let sleep_time = Seconds::new(
            (sample_period.value() - self.active_time.value() - self.radio_time.value()).max(0.0),
        );
        let energy = self.supply * self.sleep_current * sleep_time
            + self.supply * self.active_current * self.active_time
            + self.supply * self.radio_current * self.radio_time;
        energy / sample_period
    }

    /// Battery lifetime on the workload (no harvesting).
    pub fn lifetime(&self, sample_period: Seconds) -> Seconds {
        self.stored_energy / self.average_power(sample_period)
    }
}

/// One row of the node-class comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeClassRow {
    /// Node name.
    pub name: String,
    /// Average power on the TPMS workload.
    pub average_power: Watts,
    /// Volume.
    pub volume: CubicMillimeters,
    /// Lifetime on onboard storage only.
    pub lifetime: Seconds,
    /// Whether the node can run indefinitely from the PicoCube's harvester
    /// budget (~450 µW driving).
    pub harvestable: bool,
}

/// Builds the E9 comparison: motes vs the measured PicoCube numbers.
pub fn node_class_table(
    picocube_average: Watts,
    picocube_volume: CubicMillimeters,
    sample_period: Seconds,
) -> Vec<NodeClassRow> {
    let harvest_budget = Watts::from_micro(450.0);
    let mut rows = Vec::new();
    for mote in [MoteClassNode::coke_can_class(), MoteClassNode::mica_class()] {
        let avg = mote.average_power(sample_period);
        rows.push(NodeClassRow {
            name: mote.name.to_string(),
            average_power: avg,
            volume: mote.volume,
            lifetime: mote.lifetime(sample_period),
            harvestable: avg <= harvest_budget,
        });
    }
    let cube_storage = Joules::from_milliamp_hours(15.0, Volts::new(1.2));
    rows.push(NodeClassRow {
        name: "PicoCube".to_string(),
        average_power: picocube_average,
        volume: picocube_volume,
        lifetime: cube_storage / picocube_average,
        harvestable: picocube_average <= harvest_budget,
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const PERIOD: Seconds = Seconds::new(6.0);

    #[test]
    fn mote_average_power_is_dominated_by_sleep() {
        // 30 µA × 3 V = 90 µW of sleep floor alone — 15× the whole
        // PicoCube.
        let mote = MoteClassNode::mica_class();
        let avg = mote.average_power(PERIOD);
        assert!(avg > Watts::from_micro(90.0));
        assert!(avg < Watts::from_micro(300.0));
    }

    #[test]
    fn picocube_wins_power_by_an_order_of_magnitude() {
        let rows = node_class_table(
            Watts::from_micro(6.0),
            CubicMillimeters::new(1_450.0),
            PERIOD,
        );
        let cube = rows.last().unwrap();
        for mote in &rows[..rows.len() - 1] {
            assert!(mote.average_power.value() / cube.average_power.value() > 10.0);
            assert!(mote.volume.value() / cube.volume.value() > 30.0);
        }
    }

    #[test]
    fn harvestability_separates_the_classes() {
        let rows = node_class_table(
            Watts::from_micro(6.0),
            CubicMillimeters::new(1_450.0),
            PERIOD,
        );
        // The coke-can node cannot live on a 450 µW scavenger; the mote
        // squeaks under on *average* power but is 30× the volume (no room
        // for it plus a harvester on a rim); the PicoCube fits both ways.
        assert!(!rows[0].harvestable);
        assert!(rows.last().unwrap().harvestable);
        let cube_volume = rows.last().unwrap().volume;
        assert!(rows[1].volume.value() / cube_volume.value() > 30.0);
    }

    #[test]
    fn mote_lifetime_is_months_not_decades() {
        // The paper's motivation: batteries die long before the building.
        let mote = MoteClassNode::mica_class();
        let life = mote.lifetime(PERIOD);
        assert!(life > Seconds::from_days(100.0));
        assert!(
            life < Seconds::from_days(3_650.0),
            "a mote does not last a decade"
        );
    }

    #[test]
    fn faster_sampling_costs_more() {
        let mote = MoteClassNode::mica_class();
        assert!(mote.average_power(Seconds::new(1.0)) > mote.average_power(Seconds::new(60.0)));
    }

    #[test]
    fn degenerate_period_clamps_sleep() {
        let mote = MoteClassNode::mica_class();
        // Period shorter than the active window: never sleeps.
        let avg = mote.average_power(Seconds::new(5e-3));
        assert!(avg > Watts::from_milli(10.0));
    }
}
