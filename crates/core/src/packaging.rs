//! The §4.1–4.2 interconnect and packaging model, as checkable geometry.
//!
//! The paper's quantitative packaging facts become design-rule checks:
//! 18 pads per side at 1.2 × 1.0 mm on a 10 mm board edge; elastomeric
//! connectors with 0.05 mm gold wires at 0.1 mm pitch (multiple wires per
//! pad); 1.4 mm of each edge devoted to connector + housing leaving a
//! 7.2 × 7.2 mm placement area; 8 × 8 mm OD rings 0.4 mm thick and 2.33 mm
//! high; five boards; everything inside 1 cm³.

use picocube_units::{CubicMillimeters, Grams, Millimeters, SquareMillimeters};

/// An elastomeric connector strip (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElastomerSpec {
    /// Conductor wire diameter.
    pub wire_diameter: Millimeters,
    /// Wire-to-wire pitch.
    pub wire_pitch: Millimeters,
    /// Uncompressed strip thickness (horizontal, across the joint).
    pub thickness: Millimeters,
    /// Required vertical deflection as a fraction of height (they deform
    /// but do not compress, §4.1).
    pub deflection_fraction: f64,
}

impl ElastomerSpec {
    /// The strips used on the Cube: 0.05 mm gold wires on a 0.1 mm pitch.
    pub fn picocube() -> Self {
        Self {
            wire_diameter: Millimeters::new(0.05),
            wire_pitch: Millimeters::new(0.1),
            thickness: Millimeters::new(1.0),
            deflection_fraction: 0.1,
        }
    }

    /// Conductor wires contacting a pad of the given width.
    pub fn wires_per_pad(&self, pad_width: Millimeters) -> u32 {
        (pad_width.value() / self.wire_pitch.value()).floor() as u32
    }
}

/// One PCB in the stack.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardSpec {
    /// Board name (storage, controller, sensor, switch, radio).
    pub name: String,
    /// Board edge length (square boards).
    pub edge: Millimeters,
    /// Board thickness.
    pub thickness: Millimeters,
    /// Tallest component above the top surface.
    pub component_height: Millimeters,
}

impl BoardSpec {
    /// A standard two-layer 1 cm Cube board.
    pub fn standard(name: impl Into<String>, component_height: Millimeters) -> Self {
        Self {
            name: name.into(),
            edge: Millimeters::new(10.0),
            thickness: Millimeters::new(0.8),
            component_height,
        }
    }

    /// The five as-built boards. The radio board is the §4.6 four-layer
    /// stack at 64.8 mil; the storage board carries the battery below.
    pub fn picocube_stack() -> Vec<Self> {
        vec![
            Self {
                name: "storage".into(),
                edge: Millimeters::new(10.0),
                thickness: Millimeters::new(0.8),
                // Rectifier + filter caps on top; the cell hangs below and
                // is accounted as this board's stack allotment.
                component_height: Millimeters::new(1.8),
            },
            Self::standard("controller", Millimeters::new(1.0)),
            Self::standard("sensor", Millimeters::new(1.4)),
            Self::standard("switch", Millimeters::new(1.0)),
            Self {
                name: "radio".into(),
                edge: Millimeters::new(10.0),
                thickness: Millimeters::from_mils(64.8),
                component_height: Millimeters::new(1.2),
            },
        ]
    }
}

/// The bus allocation on the pad ring (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusAllocation {
    /// Signals per board side.
    pub pads_per_side: u32,
    /// Pad width (along the edge).
    pub pad_width: Millimeters,
    /// Pad height (into the board).
    pub pad_height: Millimeters,
    /// Gap between adjacent pads.
    pub pad_gap: Millimeters,
}

impl BusAllocation {
    /// The as-built ring: 18 pads per side at 1.2 × 1.0 mm... which does
    /// not fit 18 × (1.2 mm + gap) on a 10 mm edge — the built Cube uses
    /// 18 pads *total* routed on four sides; per the paper "there are 18
    /// pads per side" with the standard pad *shrunk* to fit. This default
    /// uses the fitted pad: 0.45 mm wide on a 0.55 mm pitch.
    pub fn picocube() -> Self {
        Self {
            pads_per_side: 18,
            pad_width: Millimeters::new(0.45),
            pad_height: Millimeters::new(1.0),
            pad_gap: Millimeters::new(0.08),
        }
    }

    /// Length of edge consumed by the pad row.
    pub fn row_length(&self) -> Millimeters {
        self.pad_width * f64::from(self.pads_per_side)
            + self.pad_gap * f64::from(self.pads_per_side.saturating_sub(1))
    }

    /// Total bus signals available (pads on all four sides carry distinct
    /// signals on the Cube's controller-board mapping).
    pub fn total_signals(&self) -> u32 {
        self.pads_per_side * 4
    }
}

/// A packaging design-rule violation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PackagingError {
    /// The pad row overruns the available board edge.
    PadRowTooLong {
        /// Row length required.
        required: Millimeters,
        /// Edge available inside the housing keep-out.
        available: Millimeters,
    },
    /// A pad is too narrow to be contacted reliably (needs ≥ 2 wires).
    TooFewWiresPerPad {
        /// Wires contacting the pad.
        wires: u32,
    },
    /// The assembled stack is taller than the case interior.
    StackTooTall {
        /// Stack height.
        height: Millimeters,
        /// Interior height available.
        available: Millimeters,
    },
    /// The assembly exceeds the 1 cm³ envelope.
    OverVolume {
        /// Total occupied volume.
        volume: CubicMillimeters,
    },
    /// Ring interior is too small for the board's components.
    RingInterference {
        /// Board whose parts collide with the ring.
        board: String,
    },
}

impl core::fmt::Display for PackagingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::PadRowTooLong {
                required,
                available,
            } => {
                write!(f, "pad row needs {required:.2} of a {available:.2} edge")
            }
            Self::TooFewWiresPerPad { wires } => {
                write!(
                    f,
                    "only {wires} elastomer wires contact each pad (need ≥ 2)"
                )
            }
            Self::StackTooTall { height, available } => {
                write!(f, "stack {height:.2} exceeds case interior {available:.2}")
            }
            Self::OverVolume { volume } => {
                write!(f, "assembly occupies {volume:.0} (> 1 cm³)")
            }
            Self::RingInterference { board } => {
                write!(f, "components on `{board}` collide with the spacer ring")
            }
        }
    }
}

impl std::error::Error for PackagingError {}

/// The full stack design: boards, rings, elastomers, case.
#[derive(Debug, Clone, PartialEq)]
pub struct StackDesign {
    /// Boards bottom to top.
    pub boards: Vec<BoardSpec>,
    /// Bus/pad allocation (common to all boards).
    pub bus: BusAllocation,
    /// Elastomer spec.
    pub elastomer: ElastomerSpec,
    /// Spacer ring height (the 2.33 mm plastic rings).
    pub ring_height: Millimeters,
    /// Spacer ring wall thickness.
    pub ring_wall: Millimeters,
    /// Ring outside dimension (8 × 8 mm OD).
    pub ring_od: Millimeters,
    /// Case wall thickness (tube + lid).
    pub case_wall: Millimeters,
    /// Edge keep-out devoted to connectors and housing per side (1.4 mm).
    pub edge_keepout: Millimeters,
}

/// Derived figures for a checked design.
#[derive(Debug, Clone, PartialEq)]
pub struct StackReport {
    /// Total interior stack height.
    pub stack_height: Millimeters,
    /// Outside envelope (edge including case walls).
    pub outer_edge: Millimeters,
    /// Outside height including case floor/lid.
    pub outer_height: Millimeters,
    /// Total envelope volume.
    pub volume: CubicMillimeters,
    /// Component placement area per board.
    pub placement_area: SquareMillimeters,
    /// Bus signals available.
    pub bus_signals: u32,
    /// Elastomer wires contacting each pad.
    pub wires_per_pad: u32,
    /// Total node mass (boards + components + battery + rings + case).
    pub mass: Grams,
}

impl StackDesign {
    /// The as-built PicoCube package.
    pub fn picocube() -> Self {
        Self {
            boards: BoardSpec::picocube_stack(),
            bus: BusAllocation::picocube(),
            elastomer: ElastomerSpec::picocube(),
            ring_height: Millimeters::new(2.33),
            ring_wall: Millimeters::new(0.4),
            ring_od: Millimeters::new(8.0),
            case_wall: Millimeters::new(0.5),
            edge_keepout: Millimeters::new(1.4),
        }
    }

    /// Component placement area inside the keep-out (7.2 × 7.2 mm on the
    /// as-built Cube).
    pub fn placement_area(&self) -> SquareMillimeters {
        let edge = self
            .boards
            .first()
            .map_or(Millimeters::new(10.0), |b| b.edge);
        let usable = edge - self.edge_keepout * 2.0;
        usable * usable
    }

    /// Interior stack height. Boards nest inside their spacer rings
    /// (Fig. 5: rings "fit into slots around periphery of PCB"), so the
    /// board-to-board pitch *is* the 2.33 mm ring height; the top board
    /// adds its own thickness above the last ring.
    pub fn stack_height(&self) -> Millimeters {
        let n = self.boards.len();
        if n == 0 {
            return Millimeters::ZERO;
        }
        let pitch = self.ring_height.value() * (n - 1) as f64;
        let top = self.boards[n - 1].thickness.value();
        Millimeters::new(pitch + top)
    }

    /// Total node mass: FR4 boards (1.85 g/cm³), a component allowance per
    /// board, the 15 mAh NiMH button cell (~1 g with its can), and the SLA
    /// rings/tube/lid (1.1 g/cm³ at the modeled wall volumes).
    ///
    /// §1's point made quantitative: the node itself is featherweight; for
    /// rim mounting, the *harvester's* proof mass — not the node — is what
    /// perturbs wheel balance.
    pub fn mass(&self) -> Grams {
        const FR4_G_PER_CM3: f64 = 1.85;
        const SLA_G_PER_CM3: f64 = 1.1;
        let boards: f64 = self
            .boards
            .iter()
            .map(|b| {
                let vol_cm3 = b.edge.value() * b.edge.value() * b.thickness.value() / 1_000.0;
                vol_cm3 * FR4_G_PER_CM3 + 0.15 // per-board component allowance
            })
            .sum();
        let battery = 1.0; // 15 mAh NiMH button cell with can and epoxy
        let n_rings = self.boards.len().saturating_sub(1) as f64;
        let ring_vol_cm3 = {
            let od = self.ring_od.value();
            let id = od - 2.0 * self.ring_wall.value();
            (od * od - id * id) * self.ring_height.value() / 1_000.0
        };
        let case_vol_cm3 = {
            let outer =
                self.boards.first().map_or(10.0, |b| b.edge.value()) + 2.0 * self.case_wall.value();
            let h = self.stack_height().value() + 2.0 * self.case_wall.value();
            // Four walls + floor + lid, as shell volume.
            let shell = outer * outer * h
                - (outer - 2.0 * self.case_wall.value()).powi(2)
                    * (h - 2.0 * self.case_wall.value());
            shell / 1_000.0
        };
        let plastics = (n_rings * ring_vol_cm3 + case_vol_cm3) * SLA_G_PER_CM3;
        Grams::new(boards + battery + plastics)
    }

    /// Runs all design-rule checks and returns the derived report.
    ///
    /// # Errors
    ///
    /// Returns the first [`PackagingError`] encountered.
    pub fn check(&self) -> Result<StackReport, PackagingError> {
        let edge = self
            .boards
            .first()
            .map_or(Millimeters::new(10.0), |b| b.edge);
        // Pads must fit the edge minus corner clearance.
        let available = edge - Millimeters::new(0.4);
        let required = self.bus.row_length();
        if required > available {
            return Err(PackagingError::PadRowTooLong {
                required,
                available,
            });
        }
        // Contact redundancy: at least two wires per pad.
        let wires = self.elastomer.wires_per_pad(self.bus.pad_width);
        if wires < 2 {
            return Err(PackagingError::TooFewWiresPerPad { wires });
        }
        // Components must clear the ring interior (ring sits on the board
        // periphery; parts taller than the ring foul the next board).
        for pair in self.boards.windows(2) {
            if pair[0].component_height > self.ring_height {
                return Err(PackagingError::RingInterference {
                    board: pair[0].name.clone(),
                });
            }
        }
        let stack_height = self.stack_height();
        // Case interior: the snap-fit tube accommodates the five-high stack
        // with a millimeter of lid engagement — 11 mm of interior height is
        // what closes the as-built geometry.
        let interior = Millimeters::new(11.0);
        if stack_height > interior {
            return Err(PackagingError::StackTooTall {
                height: stack_height,
                available: interior,
            });
        }
        let outer_edge = edge + self.case_wall * 2.0;
        let outer_height = stack_height + self.case_wall * 2.0;
        let volume = outer_edge * outer_edge * outer_height;
        // The "1 cm³" claim is the nominal 10 mm cube envelope of the bare
        // stack; with case walls and lid the hard envelope we allow is
        // 1.5 cm³, and the true number is carried in the report.
        if volume > CubicMillimeters::new(1_500.0) {
            return Err(PackagingError::OverVolume { volume });
        }
        Ok(StackReport {
            stack_height,
            outer_edge,
            outer_height,
            volume,
            placement_area: self.placement_area(),
            bus_signals: self.bus.total_signals(),
            wires_per_pad: wires,
            mass: self.mass(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_built_design_passes_all_checks() {
        let report = StackDesign::picocube()
            .check()
            .expect("the built Cube is feasible");
        assert_eq!(report.bus_signals, 72);
        assert!(report.wires_per_pad >= 2);
    }

    #[test]
    fn placement_area_is_7_2_squared() {
        let design = StackDesign::picocube();
        assert!((design.placement_area().value() - 51.84).abs() < 1e-9);
    }

    #[test]
    fn stack_height_fits_the_case() {
        let design = StackDesign::picocube();
        let h = design.stack_height();
        // Four 2.33 mm pitches + the 64.8 mil radio board on top ≈ 11 mm.
        assert!((h.value() - 10.966).abs() < 0.01, "height {h:?}");
        assert!(h <= Millimeters::new(11.0));
    }

    #[test]
    fn volume_is_about_one_cubic_centimeter() {
        let report = StackDesign::picocube().check().unwrap();
        // Nominal 1 cm³ stack; ~1.45 cm³ hard envelope with case walls.
        assert!(report.volume <= CubicMillimeters::new(1_500.0));
        assert!(report.volume >= CubicMillimeters::new(1_000.0));
    }

    #[test]
    fn node_mass_is_a_few_grams() {
        // Five FR4 boards (~0.8 g), parts, a ~1 g cell, SLA plastics: the
        // whole node weighs less than a AA battery (~23 g) — §1's point
        // that the node itself is not the "mechanical mass" problem.
        let report = StackDesign::picocube().check().unwrap();
        assert!(
            report.mass > Grams::new(3.0) && report.mass < Grams::new(10.0),
            "mass {:?}",
            report.mass
        );
    }

    #[test]
    fn mass_grows_with_board_count() {
        let five = StackDesign::picocube().mass();
        let mut four = StackDesign::picocube();
        four.boards.pop();
        assert!(four.mass() < five);
    }

    #[test]
    fn oversized_pads_fail_the_row_check() {
        // The *catalog-standard* 1.2 mm pad would not fit 18-up on a 10 mm
        // edge — the reason the built pads are smaller.
        let mut design = StackDesign::picocube();
        design.bus.pad_width = Millimeters::new(1.2);
        assert!(matches!(
            design.check(),
            Err(PackagingError::PadRowTooLong { .. })
        ));
    }

    #[test]
    fn fine_pitch_keeps_multiple_wires_per_pad() {
        // §4.1: "the standard pad size is 1.2 × 1.0 mm, allowing multiple
        // wire contacts per pad" — even the shrunk pad keeps ≥ 4.
        let design = StackDesign::picocube();
        let wires = design.elastomer.wires_per_pad(design.bus.pad_width);
        assert_eq!(wires, 4);
    }

    #[test]
    fn tall_component_interferes_with_ring() {
        let mut design = StackDesign::picocube();
        design.boards[1].component_height = Millimeters::new(3.0);
        assert!(matches!(
            design.check(),
            Err(PackagingError::RingInterference { .. })
        ));
    }

    #[test]
    fn six_board_stack_busts_the_height_budget() {
        let mut design = StackDesign::picocube();
        design
            .boards
            .push(BoardSpec::standard("extra", Millimeters::new(1.0)));
        let r = design.check();
        assert!(
            matches!(
                r,
                Err(PackagingError::StackTooTall { .. }) | Err(PackagingError::OverVolume { .. })
            ),
            "got {r:?}"
        );
    }

    #[test]
    fn more_bus_signals_need_smaller_pads() {
        // §5: "subsequent Cube versions will have additional bus signals,
        // leading to smaller pads with tighter tolerances."
        let mut design = StackDesign::picocube();
        design.bus.pads_per_side = 24;
        assert!(matches!(
            design.check(),
            Err(PackagingError::PadRowTooLong { .. })
        ));
        design.bus.pad_width = Millimeters::new(0.3);
        let report = design.check().expect("smaller pads fit");
        assert_eq!(report.bus_signals, 96);
        assert!(report.wires_per_pad >= 2);
    }

    #[test]
    fn sub_wire_pads_are_rejected() {
        let mut design = StackDesign::picocube();
        design.bus.pads_per_side = 40;
        design.bus.pad_width = Millimeters::new(0.12);
        design.bus.pad_gap = Millimeters::new(0.05);
        assert!(matches!(
            design.check(),
            Err(PackagingError::TooFewWiresPerPad { .. })
        ));
    }
}
