//! The assembled node and its event loop.

use crate::bus::{pa_enabled, BusMux, BusSensor, RadioFrontend, TransmittedPacket};
use picocube_harvest::{
    DriveCycle, ElectromagneticShaker, Harvester, Irradiance, SolarCladding, WheelHarvester,
};
use picocube_mcu::firmware::{self, PIN_RADIO_SPI};
use picocube_mcu::{Mcu, StepResult};
use picocube_power::converter_ic::PowerInterfaceIc;
use picocube_power::cots::CotsPowerChain;
use picocube_power::switches::LevelShifter;
use picocube_radio::OokTransmitter;
use picocube_sensors::{MotionScenario, Sca3000, Sp12, TireEnvironment};
use picocube_sim::{LoadId, PowerLedger, PowerTrace, RailId, ScalarTrace, SimDuration, SimTime};
use picocube_storage::{NimhCell, StorageElement};
use picocube_telemetry::{EventKind, TelemetryBuffer};
use picocube_units::json::{field, FromJson, Json, JsonError, ToJson};
use picocube_units::{Amps, Celsius, Hertz, Joules, Seconds, Volts, Watts};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Which power train feeds the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerChainKind {
    /// The as-built COTS chain: TPS60313 pump + gated LT3020 + shunt.
    Cots,
    /// The §7.1 integrated power interface IC.
    IntegratedIc,
}

/// Which sensor board is stacked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorKind {
    /// SP12 TPMS board (pressure/temperature/acceleration/voltage).
    Tpms,
    /// SCA3000 accelerometer board (motion demo).
    Motion,
}

/// Which harvester feeds the storage board.
#[derive(Debug, Clone, PartialEq)]
pub enum HarvesterKind {
    /// Rim-mounted generator driven by the node's drive cycle.
    Automotive,
    /// The §6 bicycle-wheel scavenger.
    Bicycle,
    /// Solar cladding under the given lighting.
    Solar(Irradiance),
    /// The bench electromagnetic shaker (450 µW average).
    Shaker,
    /// No harvester: run down the battery.
    None,
}

/// Node configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Power train selection.
    pub power_chain: PowerChainKind,
    /// Harvester selection.
    pub harvester: HarvesterKind,
    /// Vehicle/wheel speed profile (drives the tire environment and the
    /// motion-coupled harvesters).
    pub drive_cycle: DriveCycle,
    /// Node id byte placed in every packet.
    pub node_id: u8,
    /// Master random seed (ADC noise, channel realizations).
    pub seed: u64,
    /// Initial battery state of charge.
    pub initial_soc: f64,
    /// Slow-leak rate for the tire model (kPa/hour), TPMS only.
    pub leak_kpa_per_hour: f64,
    /// Fit the §7.3 always-on wakeup receiver (an extension study: adds a
    /// standing ~50 µW listener so the node could take downlink commands).
    pub wakeup_receiver: bool,
    /// Offset of the first sensor wake (models the power-up phase of the
    /// free-running SP12 timer; fleets use this to stagger nodes).
    pub first_wake_offset_ms: u64,
    /// Deviation of the sensor timer from its nominal period, in parts per
    /// million (RC-oscillator tolerance; what slowly de-collides
    /// clock-locked nodes in a dense deployment).
    pub wake_interval_ppm: f64,
    /// Low-pressure alarm threshold (kPa). When set, the node runs the
    /// alarm firmware: packets for samples below this pressure transmit
    /// twice.
    pub alarm_threshold_kpa: Option<f64>,
    /// Ablation: leave the radio-rail LT3020 un-gated (its 120 µA ground
    /// current burns continuously). The §4.3 design argument, made
    /// measurable at node level.
    pub ungated_rf_ldo: bool,
    /// Override the SP12's 6 s wake interval (seconds), for duty-cycle
    /// design-space sweeps. `None` keeps the stock 6 s part.
    pub sample_period_s: Option<f64>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            power_chain: PowerChainKind::Cots,
            harvester: HarvesterKind::Automotive,
            drive_cycle: DriveCycle::highway(),
            node_id: 0x42,
            seed: 42,
            initial_soc: 0.8,
            leak_kpa_per_hour: 0.0,
            wakeup_receiver: false,
            first_wake_offset_ms: 0,
            wake_interval_ppm: 0.0,
            alarm_threshold_kpa: None,
            ungated_rf_ldo: false,
            sample_period_s: None,
        }
    }
}

/// Node construction failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// The embedded firmware failed to assemble (a bug).
    Firmware(picocube_mcu::asm::AsmError),
    /// A configuration value is out of range.
    InvalidConfig(&'static str),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Firmware(e) => write!(f, "firmware assembly failed: {e}"),
            Self::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<picocube_mcu::asm::AsmError> for BuildError {
    fn from(e: picocube_mcu::asm::AsmError) -> Self {
        Self::Firmware(e)
    }
}

enum Chain {
    Cots(Box<CotsPowerChain>),
    Ic(Box<PowerInterfaceIc>),
}

enum SensorState {
    Tpms {
        env: Box<TireEnvironment>,
        device: Rc<RefCell<Sp12>>,
        next_wake: SimTime,
        interval_scale: f64,
    },
    Motion {
        scenario: Box<MotionScenario>,
        device: Rc<RefCell<Sca3000>>,
        next_check: SimTime,
    },
}

/// Summary of a simulation run.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Simulated time covered.
    pub elapsed: Seconds,
    /// Battery-side average power (the paper's 6 µW headline for TPMS).
    pub average_power: Watts,
    /// Peak instantaneous battery-side power (the Fig. 6 burst top).
    pub peak_power: Watts,
    /// Total energy drawn from the cell.
    pub consumed: Joules,
    /// Total energy delivered into the cell by the harvester (after the
    /// rectifier).
    pub harvested: Joules,
    /// Rail/load energy breakdown.
    pub power: picocube_sim::PowerReport,
    /// Packets put on the air.
    pub packets: Vec<TransmittedPacket>,
    /// Wake (sample cycle) count.
    pub wakes: u64,
    /// Battery state of charge at the end.
    pub final_soc: f64,
}

impl ToJson for PowerChainKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Self::Cots => "Cots",
                Self::IntegratedIc => "IntegratedIc",
            }
            .into(),
        )
    }
}

impl FromJson for PowerChainKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Cots") => Ok(Self::Cots),
            Some("IntegratedIc") => Ok(Self::IntegratedIc),
            _ => Err(JsonError::new("unknown PowerChainKind")),
        }
    }
}

impl ToJson for SensorKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Self::Tpms => "Tpms",
                Self::Motion => "Motion",
            }
            .into(),
        )
    }
}

impl FromJson for SensorKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Tpms") => Ok(Self::Tpms),
            Some("Motion") => Ok(Self::Motion),
            _ => Err(JsonError::new("unknown SensorKind")),
        }
    }
}

impl ToJson for HarvesterKind {
    fn to_json(&self) -> Json {
        match self {
            Self::Automotive => Json::Str("Automotive".into()),
            Self::Bicycle => Json::Str("Bicycle".into()),
            Self::Shaker => Json::Str("Shaker".into()),
            Self::None => Json::Str("None".into()),
            Self::Solar(irr) => Json::Obj(vec![("Solar".into(), irr.to_json())]),
        }
    }
}

impl FromJson for HarvesterKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if let Some(irr) = value.get("Solar") {
            return Ok(Self::Solar(FromJson::from_json(irr)?));
        }
        match value.as_str() {
            Some("Automotive") => Ok(Self::Automotive),
            Some("Bicycle") => Ok(Self::Bicycle),
            Some("Shaker") => Ok(Self::Shaker),
            Some("None") => Ok(Self::None),
            _ => Err(JsonError::new("unknown HarvesterKind")),
        }
    }
}

impl ToJson for NodeConfig {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("power_chain".into(), self.power_chain.to_json()),
            ("harvester".into(), self.harvester.to_json()),
            ("drive_cycle".into(), self.drive_cycle.to_json()),
            ("node_id".into(), self.node_id.to_json()),
            ("seed".into(), self.seed.to_json()),
            ("initial_soc".into(), self.initial_soc.to_json()),
            ("leak_kpa_per_hour".into(), self.leak_kpa_per_hour.to_json()),
            ("wakeup_receiver".into(), self.wakeup_receiver.to_json()),
            (
                "first_wake_offset_ms".into(),
                self.first_wake_offset_ms.to_json(),
            ),
            ("wake_interval_ppm".into(), self.wake_interval_ppm.to_json()),
            (
                "alarm_threshold_kpa".into(),
                self.alarm_threshold_kpa.to_json(),
            ),
            ("ungated_rf_ldo".into(), self.ungated_rf_ldo.to_json()),
            ("sample_period_s".into(), self.sample_period_s.to_json()),
        ])
    }
}

impl FromJson for NodeConfig {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            power_chain: FromJson::from_json(field(value, "power_chain")?)?,
            harvester: FromJson::from_json(field(value, "harvester")?)?,
            drive_cycle: FromJson::from_json(field(value, "drive_cycle")?)?,
            node_id: FromJson::from_json(field(value, "node_id")?)?,
            seed: FromJson::from_json(field(value, "seed")?)?,
            initial_soc: FromJson::from_json(field(value, "initial_soc")?)?,
            leak_kpa_per_hour: FromJson::from_json(field(value, "leak_kpa_per_hour")?)?,
            wakeup_receiver: FromJson::from_json(field(value, "wakeup_receiver")?)?,
            first_wake_offset_ms: FromJson::from_json(field(value, "first_wake_offset_ms")?)?,
            wake_interval_ppm: FromJson::from_json(field(value, "wake_interval_ppm")?)?,
            alarm_threshold_kpa: FromJson::from_json(field(value, "alarm_threshold_kpa")?)?,
            ungated_rf_ldo: FromJson::from_json(field(value, "ungated_rf_ldo")?)?,
            sample_period_s: FromJson::from_json(field(value, "sample_period_s")?)?,
        })
    }
}

impl ToJson for NodeReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("elapsed".into(), self.elapsed.to_json()),
            ("average_power".into(), self.average_power.to_json()),
            ("peak_power".into(), self.peak_power.to_json()),
            ("consumed".into(), self.consumed.to_json()),
            ("harvested".into(), self.harvested.to_json()),
            ("power".into(), self.power.to_json()),
            ("packets".into(), self.packets.to_json()),
            ("wakes".into(), self.wakes.to_json()),
            ("final_soc".into(), self.final_soc.to_json()),
        ])
    }
}

impl FromJson for NodeReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            elapsed: FromJson::from_json(field(value, "elapsed")?)?,
            average_power: FromJson::from_json(field(value, "average_power")?)?,
            peak_power: FromJson::from_json(field(value, "peak_power")?)?,
            consumed: FromJson::from_json(field(value, "consumed")?)?,
            harvested: FromJson::from_json(field(value, "harvested")?)?,
            power: FromJson::from_json(field(value, "power")?)?,
            packets: FromJson::from_json(field(value, "packets")?)?,
            wakes: FromJson::from_json(field(value, "wakes")?)?,
            final_soc: FromJson::from_json(field(value, "final_soc")?)?,
        })
    }
}

/// The simulated node.
pub struct PicoCube {
    mcu: Mcu,
    p1: Rc<Cell<u8>>,
    p2: Rc<Cell<u8>>,
    sensor: SensorState,
    radio: Rc<RefCell<RadioFrontend>>,
    chain: Chain,
    battery: NimhCell,
    harvester: Option<Box<dyn Harvester>>,
    ledger: PowerLedger,
    rail: RailId,
    load_overhead: LoadId,
    load_vdd: LoadId,
    load_digital: LoadId,
    load_rf: LoadId,
    load_wakeup: LoadId,
    wakeup: Option<picocube_radio::WakeupReceiver>,
    trace: PowerTrace,
    soc_trace: ScalarTrace,
    telemetry: TelemetryBuffer,
    slept: SimDuration,
    last_battery_update: SimTime,
    last_consumed: Joules,
    harvested: Joules,
    wakes: u64,
    vdd: Volts,
    last_inputs: (Amps, Amps, bool, bool),
    browned_out: Option<SimTime>,
    brownout_count: u32,
    ungated_rf_ldo: bool,
}

impl core::fmt::Debug for PicoCube {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PicoCube")
            .field("now", &self.now())
            .field("wakes", &self.wakes)
            .field("soc", &self.battery.state_of_charge())
            .finish_non_exhaustive()
    }
}

impl PicoCube {
    /// Builds the tire-pressure node (SP12 board, TPMS firmware).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for invalid configuration.
    pub fn tpms(config: NodeConfig) -> Result<Self, BuildError> {
        let image = match config.alarm_threshold_kpa {
            Some(kpa) => {
                if !(0.0..=450.0).contains(&kpa) {
                    return Err(BuildError::InvalidConfig(
                        "alarm threshold outside the SP12's 0-450 kPa range",
                    ));
                }
                let code = Sp12::new().encode(picocube_sensors::Sp12Channel::Pressure, kpa);
                firmware::tpms_alarm_app(config.node_id, code)?
            }
            None => firmware::tpms_app(config.node_id)?,
        };
        let mut env = TireEnvironment::passenger_car(config.drive_cycle.clone());
        if config.leak_kpa_per_hour > 0.0 {
            env = env.with_leak(picocube_units::Kilopascals::new(config.leak_kpa_per_hour));
        }
        let mut sp12 = Sp12::new().with_noise(config.seed);
        if let Some(period) = config.sample_period_s {
            if period <= 0.0 {
                return Err(BuildError::InvalidConfig("sample period must be positive"));
            }
            sp12 = sp12.with_wake_interval(Seconds::new(period));
        }
        let device = Rc::new(RefCell::new(sp12));
        let wake = SimTime::from_seconds(device.borrow().wake_interval())
            + SimDuration::from_millis(config.first_wake_offset_ms);
        let interval_scale = 1.0 + config.wake_interval_ppm * 1e-6;
        let sensor = SensorState::Tpms {
            env: Box::new(env),
            device: device.clone(),
            next_wake: wake,
            interval_scale,
        };
        Self::build(config, image, sensor, BusSensor::Sp12(device))
    }

    /// Builds the §6 motion-demo node (SCA3000 board, motion firmware).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for invalid configuration.
    pub fn motion(config: NodeConfig, scenario: MotionScenario) -> Result<Self, BuildError> {
        let image = firmware::motion_app(config.node_id)?;
        let device = Rc::new(RefCell::new(Sca3000::new()));
        let sensor = SensorState::Motion {
            scenario: Box::new(scenario),
            device: device.clone(),
            next_check: SimTime::from_millis(100),
        };
        Self::build(config, image, sensor, BusSensor::Sca3000(device))
    }

    /// Builds the timer-paced beacon node (SCA3000 board, beacon firmware):
    /// no sensor interrupt line — the MSP430's Timer A paces sampling every
    /// `period_s` seconds, the building-monitor configuration.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for invalid configuration or a zero period.
    pub fn beacon(
        config: NodeConfig,
        scenario: MotionScenario,
        period_s: u16,
    ) -> Result<Self, BuildError> {
        if period_s == 0 {
            return Err(BuildError::InvalidConfig(
                "beacon period must be at least 1 s",
            ));
        }
        let image = firmware::beacon_app(config.node_id, period_s)?;
        let device = Rc::new(RefCell::new(Sca3000::new()));
        let sensor = SensorState::Motion {
            scenario: Box::new(scenario),
            device: device.clone(),
            next_check: SimTime::from_millis(100),
        };
        Self::build(config, image, sensor, BusSensor::Sca3000(device))
    }

    fn build(
        config: NodeConfig,
        image: picocube_mcu::Image,
        sensor: SensorState,
        bus_sensor: BusSensor,
    ) -> Result<Self, BuildError> {
        if !(0.0..=1.0).contains(&config.initial_soc) {
            return Err(BuildError::InvalidConfig("initial_soc must be in [0, 1]"));
        }
        if config.leak_kpa_per_hour < 0.0 {
            return Err(BuildError::InvalidConfig("leak rate must be non-negative"));
        }
        let mut mcu = Mcu::new();
        mcu.load(&image);
        mcu.reset();

        let p1 = Rc::new(Cell::new(0u8));
        let p2 = Rc::new(Cell::new(0u8));
        let radio = Rc::new(RefCell::new(RadioFrontend::new(OokTransmitter::picocube())));
        mcu.attach_spi(Box::new(BusMux {
            p1: p1.clone(),
            p2: p2.clone(),
            sensor: bus_sensor,
            radio: radio.clone(),
        }));

        let mut battery = NimhCell::picocube();
        battery.set_state_of_charge(config.initial_soc);

        let chain = match config.power_chain {
            PowerChainKind::Cots => Chain::Cots(Box::new(CotsPowerChain::paper())),
            PowerChainKind::IntegratedIc => Chain::Ic(Box::new(PowerInterfaceIc::paper())),
        };

        let harvester: Option<Box<dyn Harvester>> = match &config.harvester {
            HarvesterKind::Automotive => Some(Box::new(WheelHarvester::automotive(
                config.drive_cycle.clone(),
            ))),
            HarvesterKind::Bicycle => Some(Box::new(WheelHarvester::bicycle(
                config.drive_cycle.clone(),
            ))),
            HarvesterKind::Solar(light) => Some(Box::new(SolarCladding::five_faces(*light))),
            HarvesterKind::Shaker => Some(Box::new(ElectromagneticShaker::bench_450uw())),
            HarvesterKind::None => None,
        };

        let mut ledger = PowerLedger::new();
        let rail = ledger.add_rail("VBAT", battery.terminal_voltage(Amps::ZERO));
        let load_overhead = ledger.register_load(rail, "power chain overhead");
        let load_vdd = ledger.register_load(rail, "mcu+sensor (via pump)");
        let load_digital = ledger.register_load(rail, "radio digital (via pump)");
        let load_rf = ledger.register_load(rail, "radio RF rail");
        let load_wakeup = ledger.register_load(rail, "wakeup receiver");
        let wakeup = config
            .wakeup_receiver
            .then(picocube_radio::WakeupReceiver::bwrc);

        let mut node = Self {
            mcu,
            p1,
            p2,
            sensor,
            radio,
            chain,
            battery,
            harvester,
            ledger,
            rail,
            load_overhead,
            load_vdd,
            load_digital,
            load_rf,
            load_wakeup,
            wakeup,
            trace: PowerTrace::new("node_power_w"),
            soc_trace: ScalarTrace::new("battery_soc"),
            telemetry: TelemetryBuffer::new(),
            slept: SimDuration::ZERO,
            last_battery_update: SimTime::ZERO,
            last_consumed: Joules::ZERO,
            harvested: Joules::ZERO,
            wakes: 0,
            vdd: Volts::new(2.4),
            last_inputs: (Amps::new(-1.0), Amps::new(-1.0), false, false),
            browned_out: None,
            brownout_count: 0,
            ungated_rf_ldo: config.ungated_rf_ldo,
        };
        node.soc_trace
            .record(SimTime::ZERO, node.battery.state_of_charge());
        node.update_currents(true);
        Ok(node)
    }

    /// Current simulation time (derived from the MCU's cycle counter at
    /// 1 µs per MCLK cycle).
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.mcu.cycles())
    }

    /// The battery-side power trace (the Fig. 6 instrument).
    pub fn power_trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// Turns structured event recording on or off (metrics counters are
    /// always maintained). Off by default: the hot path then pays one
    /// branch per potential event.
    pub fn set_event_recording(&mut self, enabled: bool) {
        self.telemetry.set_events_enabled(enabled);
    }

    /// Live view of the node's telemetry (counters accumulated so far and
    /// any buffered events).
    pub fn telemetry(&self) -> &TelemetryBuffer {
        &self.telemetry
    }

    /// Finalizes and takes the node's telemetry: the buffered events plus
    /// the metric registry, extended with the run's sleep/active residency
    /// (`mcu.lpm_ns` / `mcu.active_ns`) and the ledger's per-rail,
    /// per-load energy export.
    ///
    /// Intended to be called once at the end of a run; the node keeps
    /// recording into a fresh buffer afterwards, but residency and energy
    /// totals restart from zero only for events — the power ledger keeps
    /// integrating, so a second drain would re-export its lifetime totals.
    pub fn drain_telemetry(&mut self) -> TelemetryBuffer {
        let enabled = self.telemetry.events_enabled();
        let mut buf = std::mem::take(&mut self.telemetry);
        self.telemetry.set_events_enabled(enabled);
        let lpm_ns = self.slept.as_nanos();
        buf.metrics.inc("mcu.lpm_ns", lpm_ns);
        buf.metrics.inc(
            "mcu.active_ns",
            self.now().as_nanos().saturating_sub(lpm_ns),
        );
        self.ledger.export_metrics(&mut buf.metrics);
        buf
    }

    /// Battery state-of-charge trace over the run.
    pub fn soc_trace(&self) -> &ScalarTrace {
        &self.soc_trace
    }

    /// Packets transmitted so far.
    pub fn packets(&self) -> Vec<TransmittedPacket> {
        self.radio.borrow().packets().to_vec()
    }

    /// Present battery state of charge.
    pub fn battery_soc(&self) -> f64 {
        self.battery.state_of_charge()
    }

    /// When the node browned out (battery too depleted to hold the rails),
    /// if it has.
    ///
    /// A browned-out node stops waking and transmitting; harvested energy
    /// keeps trickling into the cell, and the node restarts once the cell
    /// recovers above the restart threshold (a 10 % hysteresis band, like
    /// a supply supervisor).
    pub fn browned_out_at(&self) -> Option<SimTime> {
        self.browned_out
    }

    /// How many brown-out events have occurred over the node's lifetime.
    pub fn brownout_count(&self) -> u32 {
        self.brownout_count
    }

    /// The always-on supply voltage currently delivered to MCU and sensor.
    pub fn vdd(&self) -> Volts {
        self.vdd
    }

    /// Sensor current draw right now.
    fn sensor_current(&self) -> Amps {
        match &self.sensor {
            SensorState::Tpms { device, .. } => device.borrow().current_draw(),
            SensorState::Motion { device, .. } => device.borrow().current_draw(),
        }
    }

    /// Recomputes rail currents from the node state. `force` records even
    /// if nothing changed.
    fn update_currents(&mut self, force: bool) {
        if self.browned_out.is_some() {
            return; // supervisor holds everything unpowered
        }
        let i_mcu = self.mcu.current_draw();
        let i_sensor = self.sensor_current();
        let p1 = self.p1.get();
        let spi_on = p1 & PIN_RADIO_SPI != 0;
        let pa_on = pa_enabled(p1);
        let inputs = (i_mcu, i_sensor, spi_on, pa_on);
        if !force && inputs == self.last_inputs {
            return;
        }
        self.last_inputs = inputs;

        let vbat = self.ledger.rail_voltage(self.rail);
        let mut i_vdd = i_mcu + i_sensor;
        if spi_on {
            // CSP level shifters between the VDD and radio logic domains.
            let shifters = LevelShifter::radio_board();
            let p = shifters.power(self.vdd, Hertz::from_kilo(100.0));
            i_vdd += p / self.vdd;
        }
        // Radio RF rail draw: 50 % OOK average while the PA window is open.
        let i_rf = if pa_on {
            self.radio.borrow().transmitter().supply_current_on() * 0.5
        } else {
            Amps::ZERO
        };

        let (overhead, vdd_reflected, digital, rf, vdd_out) = match &self.chain {
            Chain::Cots(chain) => {
                let base = chain
                    .supply_mcu(vbat, i_vdd)
                    .expect("pump operating point must solve");
                let vdd_out = base.vout;
                let quiescent = base.iin - Amps::new(chain.pump().gain() * i_vdd.value());
                // Radio digital rail: GPIO at VDD through the shunt, which
                // reflects through the pump.
                let digital = if spi_on {
                    let shunt_op = chain
                        .supply_radio_digital(vdd_out, Amps::from_micro(300.0))
                        .expect("shunt operating point must solve");
                    Amps::new(chain.pump().gain() * shunt_op.iin.value())
                } else {
                    Amps::ZERO
                };
                let rf = if pa_on {
                    chain
                        .supply_radio_rf(vbat, i_rf)
                        .expect("rf rail operating point must solve")
                        .iin
                } else if self.ungated_rf_ldo {
                    // Ablation: the LT3020's ground current burns even with
                    // the radio idle — the loss the switch board exists to
                    // eliminate.
                    Amps::from_micro(120.0)
                } else {
                    Amps::ZERO
                };
                let leakage = Amps::from_nano(30.0); // three open load switches
                (
                    quiescent + leakage,
                    Amps::new(chain.pump().gain() * i_vdd.value()),
                    digital,
                    rf,
                    vdd_out,
                )
            }
            Chain::Ic(ic) => {
                let standby = ic.standby_current(Celsius::new(25.0), vbat);
                let op = ic
                    .supply_mcu(vbat, i_vdd)
                    .expect("1:2 converter operating point must solve");
                let vdd_out = op.vout;
                let digital = if spi_on {
                    // The shunt still hangs off a GPIO; its draw reflects
                    // through the 1:2 converter at roughly 2×.
                    let gpio = (vdd_out - Volts::new(1.0)) / picocube_units::Ohms::new(2_200.0);
                    Amps::new(2.0 * gpio.value())
                } else {
                    Amps::ZERO
                };
                let rf = if pa_on {
                    ic.supply_radio(vbat, i_rf)
                        .expect("3:2 converter operating point must solve")
                        .battery_current()
                } else {
                    Amps::ZERO
                };
                (standby, op.iin, digital, rf, vdd_out)
            }
        };

        self.vdd = vdd_out;
        if let Some(w) = &self.wakeup {
            self.ledger
                .set_load_current(self.load_wakeup, w.listen_power() / vbat);
        }
        self.ledger.set_load_current(self.load_overhead, overhead);
        self.ledger.set_load_current(self.load_vdd, vdd_reflected);
        self.ledger.set_load_current(self.load_digital, digital);
        self.ledger.set_load_current(self.load_rf, rf);
        self.trace
            .record(self.ledger.now(), self.ledger.total_power());
    }

    /// Settles harvest/consumption into the battery over the elapsed span.
    fn settle_battery(&mut self) {
        let now = self.now();
        let dt = now
            .checked_duration_since(self.last_battery_update)
            .unwrap_or(SimDuration::ZERO)
            .as_seconds();
        if dt.value() <= 0.0 {
            return;
        }
        let vbat = self.ledger.rail_voltage(self.rail);
        // Harvest: average source power over the interval, through the
        // chain's rectifier.
        let mut charge_current = Amps::ZERO;
        if let Some(h) = &self.harvester {
            let raw = h.average_power(self.last_battery_update.as_seconds(), now.as_seconds(), 16);
            let delivered = match &self.chain {
                Chain::Cots(c) => c.harvest(raw, vbat).unwrap_or(Watts::ZERO),
                Chain::Ic(ic) => ic.harvest(raw, vbat).unwrap_or(Watts::ZERO),
            };
            self.harvested += delivered * dt;
            charge_current = delivered / vbat;
        }
        let consumed_now = self.ledger.total_energy();
        let drawn = consumed_now - self.last_consumed;
        self.last_consumed = consumed_now;
        let discharge_current = drawn / dt / vbat;
        self.battery.step(charge_current - discharge_current, dt);
        self.last_battery_update = now;
        self.soc_trace.record(now, self.battery.state_of_charge());
        // Battery sag/recovery feeds back into the rail voltage.
        self.ledger
            .set_rail_voltage(self.rail, self.battery.terminal_voltage(Amps::ZERO));
        self.check_brownout();
    }

    /// Supply supervision: below 1.05 V the pump can no longer hold the
    /// rails; the node is held in reset until the cell recovers to 1.15 V
    /// (hysteresis), at which point the firmware cold-boots.
    fn check_brownout(&mut self) {
        let ocv = self.battery.open_circuit_voltage();
        match self.browned_out {
            None => {
                if ocv < Volts::new(1.05) {
                    self.browned_out = Some(self.now());
                    self.brownout_count += 1;
                    self.telemetry.metrics.inc("node.brownouts", 1);
                    self.telemetry
                        .record(self.now().as_nanos(), EventKind::BrownOut);
                    self.mcu.set_register(2, 0); // hold in reset: GIE off
                    self.mcu.clear_pending_irqs();
                    for load in [
                        self.load_overhead,
                        self.load_vdd,
                        self.load_digital,
                        self.load_rf,
                        self.load_wakeup,
                    ] {
                        self.ledger.set_load_current(load, Amps::ZERO);
                    }
                    self.trace
                        .record(self.ledger.now(), self.ledger.total_power());
                }
            }
            Some(_) => {
                if ocv >= Volts::new(1.15) {
                    self.browned_out = None;
                    self.telemetry
                        .record(self.now().as_nanos(), EventKind::Recovered);
                    self.mcu.warm_reset();
                    // Sensor schedules restart relative to the reboot.
                    let now = self.now();
                    match &mut self.sensor {
                        SensorState::Tpms {
                            device, next_wake, ..
                        } => {
                            *next_wake =
                                now + SimDuration::from_seconds(device.borrow().wake_interval());
                        }
                        SensorState::Motion { next_check, .. } => {
                            *next_check = now + SimDuration::from_millis(100);
                        }
                    }
                    self.last_inputs = (Amps::new(-1.0), Amps::new(-1.0), false, false);
                    self.update_currents(true);
                }
            }
        }
    }

    /// The next scheduled environment/sensor event, if any.
    fn next_event(&self) -> SimTime {
        match &self.sensor {
            SensorState::Tpms { next_wake, .. } => *next_wake,
            SensorState::Motion { next_check, .. } => *next_check,
        }
    }

    /// Fires the event scheduled for `at` (must equal `next_event()`).
    fn fire_event(&mut self) {
        let t_ns = self.now().as_nanos();
        match &mut self.sensor {
            SensorState::Tpms {
                env,
                device,
                next_wake,
                interval_scale,
            } => {
                let interval = device.borrow().wake_interval();
                let mut sample = env.step(interval);
                sample.supply = self.vdd;
                device.borrow_mut().set_sample(sample);
                // The cell rides on the rim at tire temperature: cold
                // stiffens it, heat leaks it (automotive reality).
                self.battery.set_temperature(sample.temperature);
                *next_wake += SimDuration::from_seconds(interval * *interval_scale);
                self.wakes += 1;
                self.telemetry.metrics.inc("node.wakes", 1);
                self.telemetry
                    .record(t_ns, EventKind::Wake { index: self.wakes });
                // The SP12 digital die raises its interrupt line.
                self.mcu.drive_p1(0, false);
                self.mcu.drive_p1(0, true);
            }
            SensorState::Motion {
                scenario,
                device,
                next_check,
            } => {
                let t = next_check.as_seconds();
                let sample = scenario.sample_at(t);
                let triggered = device.borrow_mut().update(sample);
                *next_check += SimDuration::from_millis(100);
                if triggered {
                    self.wakes += 1;
                    self.telemetry.metrics.inc("node.wakes", 1);
                    self.telemetry
                        .record(t_ns, EventKind::Wake { index: self.wakes });
                    self.mcu.drive_p1(0, false);
                    self.mcu.drive_p1(0, true);
                }
            }
        }
    }

    /// Runs the node for a span of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let end = self.now() + duration;
        // Guard against a stuck simulation (firmware fault).
        let mut fault_guard: u64 = 0;
        while self.now() < end {
            if self.browned_out.is_some() {
                // Held in reset: advance in supervisor-poll chunks, letting
                // the harvester recharge the cell toward the restart
                // threshold.
                let next = (self.now() + SimDuration::from_secs(60)).min(end);
                let gap = next
                    .checked_duration_since(self.now())
                    .unwrap_or(SimDuration::ZERO);
                if gap.is_zero() {
                    break;
                }
                self.mcu.sleep(gap.as_nanos() / 1_000);
                self.slept += gap;
                self.ledger.advance_to(self.now());
                self.settle_battery();
                continue;
            }
            let asleep =
                matches!(self.mcu.step_peek(), PeekState::Sleeping) && !self.mcu.has_pending_irq();
            if asleep {
                let next = self.next_event().min(end);
                let gap = next
                    .checked_duration_since(self.now())
                    .unwrap_or(SimDuration::ZERO);
                if !gap.is_zero() {
                    let cycles = gap.as_nanos() / 1_000; // 1 µs per cycle
                    self.mcu.sleep(cycles.max(1));
                    self.slept += gap;
                    self.ledger.advance_to(self.now());
                }
                self.settle_battery();
                if self.now() >= end {
                    break;
                }
                if self.browned_out.is_none() && self.now() >= self.next_event() {
                    self.fire_event();
                    self.update_currents(false);
                }
            } else {
                let p1_before = self.p1.get();
                match self.mcu.step() {
                    StepResult::Ran { .. } => {}
                    StepResult::Sleeping(_) => { /* loop re-evaluates */ }
                    StepResult::IllegalInstruction { word, at } => {
                        panic!("firmware fault: opcode {word:#06x} at {at:#06x}")
                    }
                }
                self.ledger.advance_to(self.now());
                // Mirror pins for the bus mux and catch PA window closure.
                let p1_now = self.mcu.p1_output();
                self.p1.set(p1_now);
                self.p2.set(self.mcu.p2_output());
                if pa_enabled(p1_before) && !pa_enabled(p1_now) {
                    let now = self.now();
                    let mut radio = self.radio.borrow_mut();
                    let before = radio.packets().len();
                    radio.close_window(now);
                    if let Some(packet) = radio.packets().get(before..).and_then(<[_]>::first) {
                        packet
                            .transmission
                            .export_metrics(&mut self.telemetry.metrics);
                        if self.telemetry.events_enabled() {
                            self.telemetry.record(
                                now.as_nanos(),
                                EventKind::Tx {
                                    bytes: packet.bytes.len() as u32,
                                    airtime_us: packet.transmission.duration.value() * 1e6,
                                    energy_uj: packet.transmission.energy.micro(),
                                },
                            );
                        }
                    }
                }
                self.update_currents(false);
                fault_guard += 1;
                if fault_guard > 200_000_000 {
                    panic!("node simulation stuck in active state");
                }
            }
        }
        self.ledger.advance_to(end.max(self.ledger.now()));
        self.settle_battery();
        self.update_currents(true);
    }

    /// Produces the run summary.
    pub fn report(&self) -> NodeReport {
        NodeReport {
            elapsed: self.now().as_seconds(),
            average_power: self.ledger.average_power(),
            peak_power: self.trace.peak(),
            consumed: self.ledger.total_energy(),
            harvested: self.harvested,
            power: self.ledger.report(),
            packets: self.packets(),
            wakes: self.wakes,
            final_soc: self.battery.state_of_charge(),
        }
    }
}

/// Internal peek at whether the MCU would sleep (without consuming a step).
enum PeekState {
    Sleeping,
    Runnable,
}

trait McuPeek {
    fn step_peek(&self) -> PeekState;
}

impl McuPeek for Mcu {
    fn step_peek(&self) -> PeekState {
        use picocube_mcu::OperatingMode;
        if self.mode() == OperatingMode::Active {
            PeekState::Runnable
        } else {
            PeekState::Sleeping
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_tpms_for(secs: u64, config: NodeConfig) -> (PicoCube, NodeReport) {
        let mut node = PicoCube::tpms(config).expect("node builds");
        node.run_for(SimDuration::from_secs(secs));
        let report = node.report();
        (node, report)
    }

    #[test]
    fn average_power_is_about_6_microwatts() {
        // §6: "Average Cube power consumption using the TPMS sensor is
        // 6 µW, dominated by quiescent losses from the power management
        // circuitry."
        let (_, report) = run_tpms_for(60, NodeConfig::default());
        let avg = report.average_power;
        assert!(
            avg > Watts::from_micro(3.0) && avg < Watts::from_micro(10.0),
            "average power {:.2} µW (paper: 6 µW)",
            avg.micro()
        );
    }

    #[test]
    fn wakes_every_six_seconds_and_transmits() {
        let (_, report) = run_tpms_for(61, NodeConfig::default());
        assert_eq!(report.wakes, 10);
        assert_eq!(report.packets.len(), 10);
    }

    #[test]
    fn telemetry_counts_wakes_packets_and_residency() {
        let (mut node, report) = run_tpms_for(61, NodeConfig::default());
        let telemetry = node.drain_telemetry();
        assert_eq!(telemetry.metrics.counter("node.wakes"), report.wakes);
        assert_eq!(
            telemetry.metrics.counter("radio.tx.packets"),
            report.packets.len() as u64
        );
        // Per-rail energy export totals the run's consumption (in µJ).
        let total_uj = telemetry.metrics.gauge("power.total.uj");
        assert!((total_uj - report.consumed.micro()).abs() < 1e-6);
        // A TPMS node sleeps nearly the whole minute.
        let lpm = telemetry.metrics.counter("mcu.lpm_ns");
        let active = telemetry.metrics.counter("mcu.active_ns");
        assert!(lpm > 60 * (active + 1), "lpm {lpm} active {active}");
        // Events are off by default: the buffer stays empty.
        assert!(telemetry.events().is_empty());
    }

    #[test]
    fn event_recording_captures_wake_and_tx_events() {
        let mut node = PicoCube::tpms(NodeConfig::default()).expect("node builds");
        node.set_event_recording(true);
        node.run_for(SimDuration::from_secs(20));
        let telemetry = node.drain_telemetry();
        use picocube_telemetry::EventKind;
        let wakes = telemetry
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Wake { .. }))
            .count();
        let txs: Vec<_> = telemetry
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Tx { .. }))
            .collect();
        assert_eq!(wakes as u64, telemetry.metrics.counter("node.wakes"));
        assert_eq!(
            txs.len() as u64,
            telemetry.metrics.counter("radio.tx.packets")
        );
        for tx in txs {
            if let EventKind::Tx {
                bytes,
                airtime_us,
                energy_uj,
            } = tx.kind
            {
                assert!(bytes > 0);
                assert!(airtime_us > 0.0);
                assert!(energy_uj > 0.0);
            }
        }
        // Timestamps are monotone (the node records as it simulates).
        let times: Vec<u64> = telemetry.events().iter().map(|e| e.t_ns).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn packets_decode_with_tire_data() {
        let (_, report) = run_tpms_for(20, NodeConfig::default());
        let packet = &report.packets[0];
        let frame =
            picocube_radio::packet::decode(&packet.bytes, picocube_radio::packet::Checksum::Xor)
                .expect("packet decodes");
        assert_eq!(frame.node_id, 0x42);
        assert_eq!(frame.payload.len(), 8);
        // Channel 0 (pressure) decodes near the 220 kPa fill.
        let code = u16::from(frame.payload[0]) << 8 | u16::from(frame.payload[1]);
        let sp12 = Sp12::new();
        let kpa = sp12.decode(picocube_sensors::Sp12Channel::Pressure, code);
        assert!((kpa - 220.0).abs() < 15.0, "decoded {kpa:.1} kPa");
    }

    #[test]
    fn active_burst_shape_matches_fig6() {
        let (node, report) = run_tpms_for(13, NodeConfig::default());
        // Peak (burst) power is orders of magnitude above the sleep floor.
        let sleep_floor = node.power_trace().power_at(SimTime::from_secs(3)).unwrap();
        assert!(
            report.peak_power > Watts::from_milli(1.0),
            "peak {:?}",
            report.peak_power
        );
        assert!(
            sleep_floor < Watts::from_micro(5.0),
            "floor {sleep_floor:?}"
        );
        assert!(report.peak_power.value() / sleep_floor.value() > 100.0);
    }

    #[test]
    fn harvesting_keeps_the_battery_charged_on_the_highway() {
        let (_, report) = run_tpms_for(120, NodeConfig::default());
        assert!(report.harvested > report.consumed);
        assert!(report.final_soc >= 0.8 - 1e-6);
    }

    #[test]
    fn no_harvester_drains_the_battery() {
        let config = NodeConfig {
            harvester: HarvesterKind::None,
            ..NodeConfig::default()
        };
        let (node, report) = run_tpms_for(120, config);
        assert_eq!(report.harvested, Joules::ZERO);
        assert!(node.battery_soc() < 0.8);
    }

    #[test]
    fn integrated_ic_node_runs() {
        let config = NodeConfig {
            power_chain: PowerChainKind::IntegratedIc,
            ..NodeConfig::default()
        };
        let (_, report) = run_tpms_for(31, config);
        assert_eq!(report.wakes, 5);
        assert_eq!(report.packets.len(), 5);
        // The IC's 6.5 µA leakage makes its floor a touch higher.
        assert!(report.average_power > Watts::from_micro(6.0));
        assert!(report.average_power < Watts::from_micro(20.0));
    }

    #[test]
    fn motion_node_sleeps_until_handled() {
        let config = NodeConfig {
            harvester: HarvesterKind::None,
            ..NodeConfig::default()
        };
        let mut node =
            PicoCube::motion(config, MotionScenario::retreat_table(9)).expect("node builds");
        // First 20 s are at-rest: no packets.
        node.run_for(SimDuration::from_secs(19));
        assert!(node.packets().is_empty());
        // Handling window 20–28 s: interrupts arrive.
        node.run_for(SimDuration::from_secs(11));
        let report = node.report();
        assert!(!report.packets.is_empty());
        let frame = picocube_radio::packet::decode(
            &report.packets[0].bytes,
            picocube_radio::packet::Checksum::Xor,
        )
        .expect("demo packet decodes");
        assert_eq!(frame.payload.len(), 6);
    }

    #[test]
    fn report_breakdown_names_the_rails() {
        let (_, report) = run_tpms_for(12, NodeConfig::default());
        let names: Vec<&str> = report.power.rails[0]
            .loads
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"power chain overhead"));
        assert!(names.contains(&"radio RF rail"));
        // The standing terms (chain quiescent + always-on MCU/sensor rail)
        // dominate the budget, as §6 reports.
        let overhead = report.power.rails[0].loads[0].1;
        let vdd = report.power.rails[0].loads[1].1;
        assert!(overhead.value() > 0.05 * report.consumed.value());
        assert!((overhead + vdd).value() > 0.5 * report.consumed.value());
    }

    #[test]
    fn deep_discharge_browns_out_then_recovers_on_harvest() {
        // Start the cell below the 1.05 V supervisor threshold with a bench
        // shaker attached: the node browns out at the first supervisor
        // check, recharges while held in reset (432 µW delivered), and
        // reboots once the cell crosses 1.15 V (~0.045 SoC, ≲2 h).
        let config = NodeConfig {
            harvester: HarvesterKind::Shaker,
            initial_soc: 0.009,
            ..NodeConfig::default()
        };
        let mut node = PicoCube::tpms(config).expect("node builds");
        node.run_for(SimDuration::from_secs(3 * 3_600));
        assert!(
            node.brownout_count() >= 1,
            "expected at least one brown-out"
        );
        // The 450 µW shaker recharges 1.05→1.15 V territory within the
        // hour, so the node must be running again and sampling.
        assert!(
            node.browned_out_at().is_none(),
            "node should have recovered"
        );
        let report = node.report();
        assert!(report.wakes > 0);
        assert!(!report.packets.is_empty());
    }

    #[test]
    fn deep_discharge_without_harvester_stays_down() {
        let config = NodeConfig {
            harvester: HarvesterKind::None,
            initial_soc: 0.009, // below the 1.05 V threshold from the start
            ..NodeConfig::default()
        };
        let mut node = PicoCube::tpms(config).expect("node builds");
        node.run_for(SimDuration::from_secs(1_200));
        assert!(node.browned_out_at().is_some());
        let report = node.report();
        // Held in reset: at most the first cycle escaped before the
        // supervisor tripped, and the floor is zero afterwards.
        assert!(
            report.packets.len() <= 1,
            "packets {}",
            report.packets.len()
        );
        let late_power = node
            .power_trace()
            .power_at(picocube_sim::SimTime::from_secs(1_000))
            .unwrap();
        assert_eq!(late_power, Watts::ZERO);
    }

    #[test]
    fn low_pressure_alarm_doubles_transmissions() {
        // A fast leak with an alarm threshold: once the tire deflates past
        // 180 kPa, each wake transmits the packet twice.
        let config = NodeConfig {
            leak_kpa_per_hour: 300.0, // punctured: hits 180 kPa in ~8 min
            alarm_threshold_kpa: Some(180.0),
            drive_cycle: picocube_harvest::DriveCycle::parked(),
            ..NodeConfig::default()
        };
        let mut node = PicoCube::tpms(config).expect("node builds");
        node.run_for(SimDuration::from_secs(1_201)); // 20 minutes
        let report = node.report();
        assert_eq!(report.wakes, 200);
        assert!(
            report.packets.len() > 220 && report.packets.len() < 400,
            "expected healthy-then-alarming mix, got {} packets",
            report.packets.len()
        );
        // Early packets single, late packets doubled: compare inter-packet
        // spacing at the start and end.
        let healthy_first = report.packets[1]
            .time
            .duration_since(report.packets[0].time);
        let last = report.packets.len() - 1;
        let alarm_gap = report.packets[last]
            .time
            .duration_since(report.packets[last - 1].time);
        assert!(
            alarm_gap < healthy_first,
            "alarm repetition should be back-to-back"
        );
    }

    #[test]
    fn ungated_ldo_ablation_craters_the_budget() {
        // §4.3's motivation measured at node level: leaving the LT3020
        // enabled between transmissions multiplies the average by ~25×.
        let (_, gated) = run_tpms_for(60, NodeConfig::default());
        let (_, ungated) = run_tpms_for(
            60,
            NodeConfig {
                ungated_rf_ldo: true,
                ..NodeConfig::default()
            },
        );
        assert!(
            ungated.average_power.value() / gated.average_power.value() > 15.0,
            "ungated {:.1} µW vs gated {:.1} µW",
            ungated.average_power.micro(),
            gated.average_power.micro()
        );
        assert!(ungated.average_power > Watts::from_micro(100.0));
    }

    #[test]
    fn alarm_threshold_validated() {
        let bad = NodeConfig {
            alarm_threshold_kpa: Some(900.0),
            ..NodeConfig::default()
        };
        assert!(matches!(
            PicoCube::tpms(bad),
            Err(BuildError::InvalidConfig(_))
        ));
    }

    #[test]
    fn healthy_tire_never_alarms() {
        let config = NodeConfig {
            alarm_threshold_kpa: Some(180.0),
            ..NodeConfig::default()
        };
        let mut node = PicoCube::tpms(config).expect("node builds");
        node.run_for(SimDuration::from_secs(61));
        let report = node.report();
        assert_eq!(report.wakes, 10);
        assert_eq!(report.packets.len(), 10, "no repeats above threshold");
    }

    #[test]
    fn beacon_node_transmits_on_the_timer() {
        // No sensor interrupt at all: Timer A paces sampling. 31 s at a
        // 5 s period → 6 beacons regardless of motion.
        let config = NodeConfig {
            harvester: HarvesterKind::None,
            ..NodeConfig::default()
        };
        let mut node =
            PicoCube::beacon(config, MotionScenario::retreat_table(5), 5).expect("node builds");
        node.run_for(SimDuration::from_secs(31));
        let report = node.report();
        assert_eq!(report.packets.len(), 6, "timer beacons");
        // Each decodes as a 6-byte motion payload.
        let frame = picocube_radio::packet::decode(
            &report.packets[0].bytes,
            picocube_radio::packet::Checksum::Xor,
        )
        .expect("beacon decodes");
        assert_eq!(frame.payload.len(), 6);
        // The SCA3000's standing ~10 µA motion-detect bias (reflected 2×
        // through the pump) dominates: ~27 µW — the accelerometer board
        // was never the 6 µW configuration; that headline belongs to the
        // TPMS board.
        assert!(report.average_power > Watts::from_micro(20.0));
        assert!(report.average_power < Watts::from_micro(40.0));
    }

    #[test]
    fn beacon_rejects_zero_period() {
        let r = PicoCube::beacon(NodeConfig::default(), MotionScenario::retreat_table(1), 0);
        assert!(matches!(r, Err(BuildError::InvalidConfig(_))));
    }

    #[test]
    fn wakeup_receiver_option_costs_50_uw() {
        let base = NodeConfig::default();
        let with_wakeup = NodeConfig {
            wakeup_receiver: true,
            ..NodeConfig::default()
        };
        let (_, plain) = run_tpms_for(60, base);
        let (_, listening) = run_tpms_for(60, with_wakeup);
        let delta = listening.average_power - plain.average_power;
        // §7.3: the always-on listener adds its ~50 µW on top of the node.
        assert!(
            (delta.micro() - 50.0).abs() < 3.0,
            "wakeup delta {:.1} µW",
            delta.micro()
        );
        let names: Vec<&str> = listening.power.rails[0]
            .loads
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"wakeup receiver"));
    }

    #[test]
    fn invalid_config_rejected() {
        let bad = NodeConfig {
            initial_soc: 1.5,
            ..NodeConfig::default()
        };
        assert!(matches!(
            PicoCube::tpms(bad),
            Err(BuildError::InvalidConfig(_))
        ));
    }

    #[test]
    fn deterministic_given_a_seed() {
        let (_, a) = run_tpms_for(30, NodeConfig::default());
        let (_, b) = run_tpms_for(30, NodeConfig::default());
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.consumed, b.consumed);
    }
}
