//! Node configuration, build errors, the run report — and the
//! compatibility constructors for the board-stack engine.
//!
//! The simulation engine itself lives in [`crate::stack`]: [`PicoCube`]
//! is an alias for [`Stack`], assembled from the five paper boards by a
//! [`StackBuilder`]. The `tpms`/`motion`/`beacon` constructors here are
//! thin wrappers kept for source compatibility; they produce bit-identical
//! results (pinned by `tests/stack_compat.rs`).

use crate::bus::TransmittedPacket;
use crate::stack::{AppBoard, NodeFault, Stack, StackBuilder};
use picocube_harvest::{DriveCycle, IndoorLightTrace, Irradiance, PiezoDrive};
use picocube_sensors::MotionScenario;
use picocube_units::json::{field, FromJson, Json, JsonError, ToJson};
use picocube_units::{Joules, Seconds, Watts};

/// Which power train feeds the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerChainKind {
    /// The as-built COTS chain: TPS60313 pump + gated LT3020 + shunt.
    Cots,
    /// The §7.1 integrated power interface IC.
    IntegratedIc,
}

/// Which sensor board is stacked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorKind {
    /// SP12 TPMS board (pressure/temperature/acceleration/voltage).
    Tpms,
    /// SCA3000 accelerometer board (motion demo).
    Motion,
}

/// Which harvester feeds the storage board.
#[derive(Debug, Clone, PartialEq)]
pub enum HarvesterKind {
    /// Rim-mounted generator driven by the node's drive cycle.
    Automotive,
    /// The §6 bicycle-wheel scavenger.
    Bicycle,
    /// Solar cladding under the given lighting.
    Solar(Irradiance),
    /// The bench electromagnetic shaker (450 µW average).
    Shaker,
    /// Pible-style indoor PV panel under a scheduled office-light trace
    /// (see `PAPERS.md`); pairs naturally with [`StorageKind::Supercap`].
    IndoorLight(IndoorLightTrace),
    /// Kassan-style piezoelectric beam on a duty-cycled machine
    /// (see `PAPERS.md`).
    Piezo(PiezoDrive),
    /// No harvester: run down the battery.
    None,
}

/// Which storage element sits on the storage board.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// The as-built 15 mAh NiMH button cell (§3).
    Nimh,
    /// A supercapacitor bank in the cell's footprint — the Pible-style
    /// storage for indoor-light harvesting (see `PAPERS.md`).
    Supercap,
}

/// Deterministic square-wave harvest dropout — the chaos-plan knob that
/// gates the harvester off for `off_s` out of every `period_s` seconds
/// (a parked car, lights-out, a stopped machine). The phase within the
/// period is derived from the node seed, so a fleet's dropouts are
/// staggered but reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarvestDropout {
    /// Square-wave period (seconds).
    pub period_s: f64,
    /// Portion of each period with the harvester gated off (seconds).
    pub off_s: f64,
}

/// Node configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Power train selection.
    pub power_chain: PowerChainKind,
    /// Harvester selection.
    pub harvester: HarvesterKind,
    /// Vehicle/wheel speed profile (drives the tire environment and the
    /// motion-coupled harvesters).
    pub drive_cycle: DriveCycle,
    /// Node id byte placed in every packet.
    pub node_id: u8,
    /// Master random seed (ADC noise, channel realizations).
    pub seed: u64,
    /// Initial battery state of charge.
    pub initial_soc: f64,
    /// Slow-leak rate for the tire model (kPa/hour), TPMS only.
    pub leak_kpa_per_hour: f64,
    /// Fit the §7.3 always-on wakeup receiver (an extension study: adds a
    /// standing ~50 µW listener so the node could take downlink commands).
    pub wakeup_receiver: bool,
    /// Offset of the first sensor wake (models the power-up phase of the
    /// free-running SP12 timer; fleets use this to stagger nodes).
    pub first_wake_offset_ms: u64,
    /// Deviation of the sensor timer from its nominal period, in parts per
    /// million (RC-oscillator tolerance; what slowly de-collides
    /// clock-locked nodes in a dense deployment).
    pub wake_interval_ppm: f64,
    /// Low-pressure alarm threshold (kPa). When set, the node runs the
    /// alarm firmware: packets for samples below this pressure transmit
    /// twice.
    pub alarm_threshold_kpa: Option<f64>,
    /// Ablation: leave the radio-rail LT3020 un-gated (its 120 µA ground
    /// current burns continuously). The §4.3 design argument, made
    /// measurable at node level.
    pub ungated_rf_ldo: bool,
    /// Override the SP12's 6 s wake interval (seconds), for duty-cycle
    /// design-space sweeps. `None` keeps the stock 6 s part.
    pub sample_period_s: Option<f64>,
    /// Storage element selection (NiMH cell or supercapacitor bank).
    pub storage: StorageKind,
    /// Battery-aging chaos knob: remaining capacity as a fraction of the
    /// nameplate 15 mAh, in `(0, 1]`. `1.0` is a fresh cell and is exact
    /// (bit-identical to the un-aged path).
    pub battery_capacity_fraction: f64,
    /// Initial storage temperature (°C), `None` for the stock 25 °C.
    /// Drives the NiMH temperature-dependent self-discharge
    /// (`2^((T-25)/10)`) — the leakage chaos knob. The TPMS application
    /// overwrites it with tire temperature on every wake; motion/beacon
    /// nodes keep it for life.
    pub ambient_celsius: Option<f64>,
    /// Harvest-dropout chaos knob: square-wave gating of the harvester.
    pub harvest_dropout: Option<HarvestDropout>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            power_chain: PowerChainKind::Cots,
            harvester: HarvesterKind::Automotive,
            drive_cycle: DriveCycle::highway(),
            node_id: 0x42,
            seed: 42,
            initial_soc: 0.8,
            leak_kpa_per_hour: 0.0,
            wakeup_receiver: false,
            first_wake_offset_ms: 0,
            wake_interval_ppm: 0.0,
            alarm_threshold_kpa: None,
            ungated_rf_ldo: false,
            sample_period_s: None,
            storage: StorageKind::Nimh,
            battery_capacity_fraction: 1.0,
            ambient_celsius: None,
            harvest_dropout: None,
        }
    }
}

/// Node construction failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum BuildError {
    /// The embedded firmware failed to assemble (a bug).
    Firmware(picocube_mcu::asm::AsmError),
    /// A configuration value is out of range.
    InvalidConfig(&'static str),
    /// The power chain could not solve the initial operating point.
    PowerChain(NodeFault),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Firmware(e) => write!(f, "firmware assembly failed: {e}"),
            Self::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            Self::PowerChain(fault) => write!(f, "power chain failed at build: {fault}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<picocube_mcu::asm::AsmError> for BuildError {
    fn from(e: picocube_mcu::asm::AsmError) -> Self {
        Self::Firmware(e)
    }
}

impl From<picocube_sim::LedgerError> for BuildError {
    fn from(e: picocube_sim::LedgerError) -> Self {
        Self::PowerChain(e.into())
    }
}

/// Summary of a simulation run.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Simulated time covered.
    pub elapsed: Seconds,
    /// Battery-side average power (the paper's 6 µW headline for TPMS).
    pub average_power: Watts,
    /// Peak instantaneous battery-side power (the Fig. 6 burst top).
    pub peak_power: Watts,
    /// Total energy drawn from the cell.
    pub consumed: Joules,
    /// Total energy delivered into the cell by the harvester (after the
    /// rectifier).
    pub harvested: Joules,
    /// Rail/load energy breakdown.
    pub power: picocube_sim::PowerReport,
    /// Packets put on the air.
    pub packets: Vec<TransmittedPacket>,
    /// Wake (sample cycle) count.
    pub wakes: u64,
    /// Battery state of charge at the end.
    pub final_soc: f64,
    /// Brown-out events over the node's lifetime.
    pub brownout_count: u32,
    /// Whether the run ended with the supervisor holding the node in
    /// reset (browned out, awaiting recharge).
    pub browned_out: bool,
    /// The latched fault that ended the run early, if any.
    pub fault: Option<NodeFault>,
}

impl ToJson for PowerChainKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Self::Cots => "Cots",
                Self::IntegratedIc => "IntegratedIc",
            }
            .into(),
        )
    }
}

impl FromJson for PowerChainKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Cots") => Ok(Self::Cots),
            Some("IntegratedIc") => Ok(Self::IntegratedIc),
            _ => Err(JsonError::new("unknown PowerChainKind")),
        }
    }
}

impl ToJson for SensorKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Self::Tpms => "Tpms",
                Self::Motion => "Motion",
            }
            .into(),
        )
    }
}

impl FromJson for SensorKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Tpms") => Ok(Self::Tpms),
            Some("Motion") => Ok(Self::Motion),
            _ => Err(JsonError::new("unknown SensorKind")),
        }
    }
}

impl ToJson for StorageKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Self::Nimh => "Nimh",
                Self::Supercap => "Supercap",
            }
            .into(),
        )
    }
}

impl FromJson for StorageKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Nimh") => Ok(Self::Nimh),
            Some("Supercap") => Ok(Self::Supercap),
            _ => Err(JsonError::new("unknown StorageKind")),
        }
    }
}

impl ToJson for HarvestDropout {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("period_s".into(), self.period_s.to_json()),
            ("off_s".into(), self.off_s.to_json()),
        ])
    }
}

impl FromJson for HarvestDropout {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            period_s: FromJson::from_json(field(value, "period_s")?)?,
            off_s: FromJson::from_json(field(value, "off_s")?)?,
        })
    }
}

impl ToJson for HarvesterKind {
    fn to_json(&self) -> Json {
        match self {
            Self::Automotive => Json::Str("Automotive".into()),
            Self::Bicycle => Json::Str("Bicycle".into()),
            Self::Shaker => Json::Str("Shaker".into()),
            Self::None => Json::Str("None".into()),
            Self::Solar(irr) => Json::Obj(vec![("Solar".into(), irr.to_json())]),
            Self::IndoorLight(trace) => Json::Obj(vec![("IndoorLight".into(), trace.to_json())]),
            Self::Piezo(drive) => Json::Obj(vec![("Piezo".into(), drive.to_json())]),
        }
    }
}

impl FromJson for HarvesterKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if let Some(irr) = value.get("Solar") {
            return Ok(Self::Solar(FromJson::from_json(irr)?));
        }
        if let Some(trace) = value.get("IndoorLight") {
            return Ok(Self::IndoorLight(FromJson::from_json(trace)?));
        }
        if let Some(drive) = value.get("Piezo") {
            return Ok(Self::Piezo(FromJson::from_json(drive)?));
        }
        match value.as_str() {
            Some("Automotive") => Ok(Self::Automotive),
            Some("Bicycle") => Ok(Self::Bicycle),
            Some("Shaker") => Ok(Self::Shaker),
            Some("None") => Ok(Self::None),
            _ => Err(JsonError::new("unknown HarvesterKind")),
        }
    }
}

impl ToJson for NodeConfig {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("power_chain".into(), self.power_chain.to_json()),
            ("harvester".into(), self.harvester.to_json()),
            ("drive_cycle".into(), self.drive_cycle.to_json()),
            ("node_id".into(), self.node_id.to_json()),
            ("seed".into(), self.seed.to_json()),
            ("initial_soc".into(), self.initial_soc.to_json()),
            ("leak_kpa_per_hour".into(), self.leak_kpa_per_hour.to_json()),
            ("wakeup_receiver".into(), self.wakeup_receiver.to_json()),
            (
                "first_wake_offset_ms".into(),
                self.first_wake_offset_ms.to_json(),
            ),
            ("wake_interval_ppm".into(), self.wake_interval_ppm.to_json()),
            (
                "alarm_threshold_kpa".into(),
                self.alarm_threshold_kpa.to_json(),
            ),
            ("ungated_rf_ldo".into(), self.ungated_rf_ldo.to_json()),
            ("sample_period_s".into(), self.sample_period_s.to_json()),
            ("storage".into(), self.storage.to_json()),
            (
                "battery_capacity_fraction".into(),
                self.battery_capacity_fraction.to_json(),
            ),
            ("ambient_celsius".into(), self.ambient_celsius.to_json()),
            ("harvest_dropout".into(), self.harvest_dropout.to_json()),
        ])
    }
}

impl FromJson for NodeConfig {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            power_chain: FromJson::from_json(field(value, "power_chain")?)?,
            harvester: FromJson::from_json(field(value, "harvester")?)?,
            drive_cycle: FromJson::from_json(field(value, "drive_cycle")?)?,
            node_id: FromJson::from_json(field(value, "node_id")?)?,
            seed: FromJson::from_json(field(value, "seed")?)?,
            initial_soc: FromJson::from_json(field(value, "initial_soc")?)?,
            leak_kpa_per_hour: FromJson::from_json(field(value, "leak_kpa_per_hour")?)?,
            wakeup_receiver: FromJson::from_json(field(value, "wakeup_receiver")?)?,
            first_wake_offset_ms: FromJson::from_json(field(value, "first_wake_offset_ms")?)?,
            wake_interval_ppm: FromJson::from_json(field(value, "wake_interval_ppm")?)?,
            alarm_threshold_kpa: FromJson::from_json(field(value, "alarm_threshold_kpa")?)?,
            ungated_rf_ldo: FromJson::from_json(field(value, "ungated_rf_ldo")?)?,
            sample_period_s: FromJson::from_json(field(value, "sample_period_s")?)?,
            // Configs written before the scenario engine lack the storage
            // and chaos knobs; default them to the exact stock behavior.
            storage: match value.get("storage") {
                Some(v) => FromJson::from_json(v)?,
                None => StorageKind::Nimh,
            },
            battery_capacity_fraction: match value.get("battery_capacity_fraction") {
                Some(v) => FromJson::from_json(v)?,
                None => 1.0,
            },
            ambient_celsius: match value.get("ambient_celsius") {
                Some(v) => FromJson::from_json(v)?,
                None => None,
            },
            harvest_dropout: match value.get("harvest_dropout") {
                Some(v) => FromJson::from_json(v)?,
                None => None,
            },
        })
    }
}

impl ToJson for NodeFault {
    fn to_json(&self) -> Json {
        let mut obj = vec![("kind".into(), Json::Str(self.tag().into()))];
        match self {
            NodeFault::IllegalInstruction { word, at } => {
                obj.push(("word".into(), u64::from(*word).to_json()));
                obj.push(("at".into(), u64::from(*at).to_json()));
            }
            NodeFault::Stuck { steps } => obj.push(("steps".into(), steps.to_json())),
            NodeFault::PowerChain { rail } => {
                obj.push(("rail".into(), Json::Str((*rail).into())));
            }
            NodeFault::Accounting => {}
        }
        Json::Obj(obj)
    }
}

impl FromJson for NodeFault {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.get("kind").and_then(Json::as_str) {
            Some("illegal_instruction") => Ok(Self::IllegalInstruction {
                word: u64::from_json(field(value, "word")?)? as u16,
                at: u64::from_json(field(value, "at")?)? as u16,
            }),
            Some("stuck") => Ok(Self::Stuck {
                steps: u64::from_json(field(value, "steps")?)?,
            }),
            Some("power_chain") => {
                // The rail names form a closed set (one per converter).
                let rail = match field(value, "rail")?.as_str() {
                    Some("pump operating point") => "pump operating point",
                    Some("shunt operating point") => "shunt operating point",
                    Some("rf rail operating point") => "rf rail operating point",
                    Some("1:2 converter operating point") => "1:2 converter operating point",
                    Some("3:2 converter operating point") => "3:2 converter operating point",
                    _ => return Err(JsonError::new("unknown power-chain rail")),
                };
                Ok(Self::PowerChain { rail })
            }
            Some("accounting") => Ok(Self::Accounting),
            _ => Err(JsonError::new("unknown NodeFault kind")),
        }
    }
}

impl ToJson for NodeReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("elapsed".into(), self.elapsed.to_json()),
            ("average_power".into(), self.average_power.to_json()),
            ("peak_power".into(), self.peak_power.to_json()),
            ("consumed".into(), self.consumed.to_json()),
            ("harvested".into(), self.harvested.to_json()),
            ("power".into(), self.power.to_json()),
            ("packets".into(), self.packets.to_json()),
            ("wakes".into(), self.wakes.to_json()),
            ("final_soc".into(), self.final_soc.to_json()),
            ("brownout_count".into(), self.brownout_count.to_json()),
            ("browned_out".into(), self.browned_out.to_json()),
            ("fault".into(), self.fault.to_json()),
        ])
    }
}

impl FromJson for NodeReport {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            elapsed: FromJson::from_json(field(value, "elapsed")?)?,
            average_power: FromJson::from_json(field(value, "average_power")?)?,
            peak_power: FromJson::from_json(field(value, "peak_power")?)?,
            consumed: FromJson::from_json(field(value, "consumed")?)?,
            harvested: FromJson::from_json(field(value, "harvested")?)?,
            power: FromJson::from_json(field(value, "power")?)?,
            packets: FromJson::from_json(field(value, "packets")?)?,
            wakes: FromJson::from_json(field(value, "wakes")?)?,
            final_soc: FromJson::from_json(field(value, "final_soc")?)?,
            // Reports written before the board-stack engine lack the
            // brownout/fault fields; default them.
            brownout_count: match value.get("brownout_count") {
                Some(v) => FromJson::from_json(v)?,
                None => 0,
            },
            browned_out: match value.get("browned_out") {
                Some(v) => FromJson::from_json(v)?,
                None => false,
            },
            fault: match value.get("fault") {
                Some(v) => FromJson::from_json(v)?,
                None => None,
            },
        })
    }
}

/// The simulated node — an alias for the board-stack [`Stack`].
pub type PicoCube = Stack;

impl Stack {
    /// Builds the tire-pressure node (SP12 board, TPMS firmware).
    ///
    /// Compatibility wrapper over [`StackBuilder`], equivalent to
    /// `StackBuilder::new(config).app(AppBoard::Tpms).build()`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for invalid configuration.
    pub fn tpms(config: NodeConfig) -> Result<Self, BuildError> {
        StackBuilder::new(config).app(AppBoard::Tpms).build()
    }

    /// Builds the §6 motion-demo node (SCA3000 board, motion firmware).
    ///
    /// Compatibility wrapper over [`StackBuilder`], equivalent to
    /// `StackBuilder::new(config).app(AppBoard::Motion { scenario }).build()`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for invalid configuration.
    pub fn motion(config: NodeConfig, scenario: MotionScenario) -> Result<Self, BuildError> {
        StackBuilder::new(config)
            .app(AppBoard::Motion { scenario })
            .build()
    }

    /// Builds the timer-paced beacon node (SCA3000 board, beacon firmware):
    /// no sensor interrupt line — the MSP430's Timer A paces sampling every
    /// `period_s` seconds, the building-monitor configuration.
    ///
    /// Compatibility wrapper over [`StackBuilder`], equivalent to
    /// `StackBuilder::new(config).app(AppBoard::Beacon { scenario, period_s }).build()`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for invalid configuration or a zero period.
    pub fn beacon(
        config: NodeConfig,
        scenario: MotionScenario,
        period_s: u16,
    ) -> Result<Self, BuildError> {
        StackBuilder::new(config)
            .app(AppBoard::Beacon { scenario, period_s })
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_sensors::Sp12;
    use picocube_sim::{SimDuration, SimTime};

    fn run_tpms_for(secs: u64, config: NodeConfig) -> (PicoCube, NodeReport) {
        let mut node = PicoCube::tpms(config).expect("node builds");
        node.run_for(SimDuration::from_secs(secs));
        let report = node.report();
        (node, report)
    }

    #[test]
    fn average_power_is_about_6_microwatts() {
        // §6: "Average Cube power consumption using the TPMS sensor is
        // 6 µW, dominated by quiescent losses from the power management
        // circuitry."
        let (_, report) = run_tpms_for(60, NodeConfig::default());
        let avg = report.average_power;
        assert!(
            avg > Watts::from_micro(3.0) && avg < Watts::from_micro(10.0),
            "average power {:.2} µW (paper: 6 µW)",
            avg.micro()
        );
    }

    #[test]
    fn wakes_every_six_seconds_and_transmits() {
        let (_, report) = run_tpms_for(61, NodeConfig::default());
        assert_eq!(report.wakes, 10);
        assert_eq!(report.packets.len(), 10);
    }

    #[test]
    fn telemetry_counts_wakes_packets_and_residency() {
        let (mut node, report) = run_tpms_for(61, NodeConfig::default());
        let telemetry = node.drain_telemetry();
        assert_eq!(telemetry.metrics.counter("node.wakes"), report.wakes);
        assert_eq!(
            telemetry.metrics.counter("radio.tx.packets"),
            report.packets.len() as u64
        );
        // Per-rail energy export totals the run's consumption (in µJ).
        let total_uj = telemetry.metrics.gauge("power.total.uj");
        assert!((total_uj - report.consumed.micro()).abs() < 1e-6);
        // A TPMS node sleeps nearly the whole minute.
        let lpm = telemetry.metrics.counter("mcu.lpm_ns");
        let active = telemetry.metrics.counter("mcu.active_ns");
        assert!(lpm > 60 * (active + 1), "lpm {lpm} active {active}");
        // Events are off by default: the buffer stays empty.
        assert!(telemetry.events().is_empty());
    }

    #[test]
    fn event_recording_captures_wake_and_tx_events() {
        let mut node = PicoCube::tpms(NodeConfig::default()).expect("node builds");
        node.set_event_recording(true);
        node.run_for(SimDuration::from_secs(20));
        let telemetry = node.drain_telemetry();
        use picocube_telemetry::EventKind;
        let wakes = telemetry
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Wake { .. }))
            .count();
        let txs: Vec<_> = telemetry
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Tx { .. }))
            .collect();
        assert_eq!(wakes as u64, telemetry.metrics.counter("node.wakes"));
        assert_eq!(
            txs.len() as u64,
            telemetry.metrics.counter("radio.tx.packets")
        );
        for tx in txs {
            if let EventKind::Tx {
                bytes,
                airtime_us,
                energy_uj,
            } = tx.kind
            {
                assert!(bytes > 0);
                assert!(airtime_us > 0.0);
                assert!(energy_uj > 0.0);
            }
        }
        // Timestamps are monotone (the node records as it simulates).
        let times: Vec<u64> = telemetry.events().iter().map(|e| e.t_ns).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn packets_decode_with_tire_data() {
        let (_, report) = run_tpms_for(20, NodeConfig::default());
        let packet = &report.packets[0];
        let frame =
            picocube_radio::packet::decode(&packet.bytes, picocube_radio::packet::Checksum::Xor)
                .expect("packet decodes");
        assert_eq!(frame.node_id, 0x42);
        assert_eq!(frame.payload.len(), 8);
        // Channel 0 (pressure) decodes near the 220 kPa fill.
        let code = u16::from(frame.payload[0]) << 8 | u16::from(frame.payload[1]);
        let sp12 = Sp12::new();
        let kpa = sp12.decode(picocube_sensors::Sp12Channel::Pressure, code);
        assert!((kpa - 220.0).abs() < 15.0, "decoded {kpa:.1} kPa");
    }

    #[test]
    fn active_burst_shape_matches_fig6() {
        let (node, report) = run_tpms_for(13, NodeConfig::default());
        // Peak (burst) power is orders of magnitude above the sleep floor.
        let sleep_floor = node.power_trace().power_at(SimTime::from_secs(3)).unwrap();
        assert!(
            report.peak_power > Watts::from_milli(1.0),
            "peak {:?}",
            report.peak_power
        );
        assert!(
            sleep_floor < Watts::from_micro(5.0),
            "floor {sleep_floor:?}"
        );
        assert!(report.peak_power.value() / sleep_floor.value() > 100.0);
    }

    #[test]
    fn harvesting_keeps_the_battery_charged_on_the_highway() {
        let (_, report) = run_tpms_for(120, NodeConfig::default());
        assert!(report.harvested > report.consumed);
        assert!(report.final_soc >= 0.8 - 1e-6);
    }

    #[test]
    fn no_harvester_drains_the_battery() {
        let config = NodeConfig {
            harvester: HarvesterKind::None,
            ..NodeConfig::default()
        };
        let (node, report) = run_tpms_for(120, config);
        assert_eq!(report.harvested, Joules::ZERO);
        assert!(node.battery_soc() < 0.8);
    }

    #[test]
    fn integrated_ic_node_runs() {
        let config = NodeConfig {
            power_chain: PowerChainKind::IntegratedIc,
            ..NodeConfig::default()
        };
        let (_, report) = run_tpms_for(31, config);
        assert_eq!(report.wakes, 5);
        assert_eq!(report.packets.len(), 5);
        // The IC's 6.5 µA leakage makes its floor a touch higher.
        assert!(report.average_power > Watts::from_micro(6.0));
        assert!(report.average_power < Watts::from_micro(20.0));
    }

    #[test]
    fn motion_node_sleeps_until_handled() {
        let config = NodeConfig {
            harvester: HarvesterKind::None,
            ..NodeConfig::default()
        };
        let mut node =
            PicoCube::motion(config, MotionScenario::retreat_table(9)).expect("node builds");
        // First 20 s are at-rest: no packets.
        node.run_for(SimDuration::from_secs(19));
        assert!(node.packets().is_empty());
        // Handling window 20–28 s: interrupts arrive.
        node.run_for(SimDuration::from_secs(11));
        let report = node.report();
        assert!(!report.packets.is_empty());
        let frame = picocube_radio::packet::decode(
            &report.packets[0].bytes,
            picocube_radio::packet::Checksum::Xor,
        )
        .expect("demo packet decodes");
        assert_eq!(frame.payload.len(), 6);
    }

    #[test]
    fn report_breakdown_names_the_rails() {
        let (_, report) = run_tpms_for(12, NodeConfig::default());
        let names: Vec<&str> = report.power.rails[0]
            .loads
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"power chain overhead"));
        assert!(names.contains(&"radio RF rail"));
        // The standing terms (chain quiescent + always-on MCU/sensor rail)
        // dominate the budget, as §6 reports.
        let overhead = report.power.rails[0].loads[0].1;
        let vdd = report.power.rails[0].loads[1].1;
        assert!(overhead.value() > 0.05 * report.consumed.value());
        assert!((overhead + vdd).value() > 0.5 * report.consumed.value());
    }

    #[test]
    fn deep_discharge_browns_out_then_recovers_on_harvest() {
        // Start the cell below the 1.05 V supervisor threshold with a bench
        // shaker attached: the node browns out at the first supervisor
        // check, recharges while held in reset (432 µW delivered), and
        // reboots once the cell crosses 1.15 V (~0.045 SoC, ≲2 h).
        let config = NodeConfig {
            harvester: HarvesterKind::Shaker,
            initial_soc: 0.009,
            ..NodeConfig::default()
        };
        let mut node = PicoCube::tpms(config).expect("node builds");
        node.run_for(SimDuration::from_secs(3 * 3_600));
        assert!(
            node.brownout_count() >= 1,
            "expected at least one brown-out"
        );
        // The 450 µW shaker recharges 1.05→1.15 V territory within the
        // hour, so the node must be running again and sampling.
        assert!(
            node.browned_out_at().is_none(),
            "node should have recovered"
        );
        let report = node.report();
        assert!(report.wakes > 0);
        assert!(!report.packets.is_empty());
        // The report now carries the supervisor state directly.
        assert!(report.brownout_count >= 1);
        assert!(!report.browned_out);
        assert_eq!(report.fault, None);
    }

    #[test]
    fn deep_discharge_without_harvester_stays_down() {
        let config = NodeConfig {
            harvester: HarvesterKind::None,
            initial_soc: 0.009, // below the 1.05 V threshold from the start
            ..NodeConfig::default()
        };
        let mut node = PicoCube::tpms(config).expect("node builds");
        node.run_for(SimDuration::from_secs(1_200));
        assert!(node.browned_out_at().is_some());
        let report = node.report();
        assert!(report.browned_out);
        // Held in reset: at most the first cycle escaped before the
        // supervisor tripped, and the floor is zero afterwards.
        assert!(
            report.packets.len() <= 1,
            "packets {}",
            report.packets.len()
        );
        let late_power = node
            .power_trace()
            .power_at(picocube_sim::SimTime::from_secs(1_000))
            .unwrap();
        assert_eq!(late_power, Watts::ZERO);
    }

    #[test]
    fn low_pressure_alarm_doubles_transmissions() {
        // A fast leak with an alarm threshold: once the tire deflates past
        // 180 kPa, each wake transmits the packet twice.
        let config = NodeConfig {
            leak_kpa_per_hour: 300.0, // punctured: hits 180 kPa in ~8 min
            alarm_threshold_kpa: Some(180.0),
            drive_cycle: picocube_harvest::DriveCycle::parked(),
            ..NodeConfig::default()
        };
        let mut node = PicoCube::tpms(config).expect("node builds");
        node.run_for(SimDuration::from_secs(1_201)); // 20 minutes
        let report = node.report();
        assert_eq!(report.wakes, 200);
        assert!(
            report.packets.len() > 220 && report.packets.len() < 400,
            "expected healthy-then-alarming mix, got {} packets",
            report.packets.len()
        );
        // Early packets single, late packets doubled: compare inter-packet
        // spacing at the start and end.
        let healthy_first = report.packets[1]
            .time
            .duration_since(report.packets[0].time);
        let last = report.packets.len() - 1;
        let alarm_gap = report.packets[last]
            .time
            .duration_since(report.packets[last - 1].time);
        assert!(
            alarm_gap < healthy_first,
            "alarm repetition should be back-to-back"
        );
    }

    #[test]
    fn ungated_ldo_ablation_craters_the_budget() {
        // §4.3's motivation measured at node level: leaving the LT3020
        // enabled between transmissions multiplies the average by ~25×.
        let (_, gated) = run_tpms_for(60, NodeConfig::default());
        let (_, ungated) = run_tpms_for(
            60,
            NodeConfig {
                ungated_rf_ldo: true,
                ..NodeConfig::default()
            },
        );
        assert!(
            ungated.average_power.value() / gated.average_power.value() > 15.0,
            "ungated {:.1} µW vs gated {:.1} µW",
            ungated.average_power.micro(),
            gated.average_power.micro()
        );
        assert!(ungated.average_power > Watts::from_micro(100.0));
    }

    #[test]
    fn alarm_threshold_validated() {
        let bad = NodeConfig {
            alarm_threshold_kpa: Some(900.0),
            ..NodeConfig::default()
        };
        assert!(matches!(
            PicoCube::tpms(bad),
            Err(BuildError::InvalidConfig(_))
        ));
    }

    #[test]
    fn healthy_tire_never_alarms() {
        let config = NodeConfig {
            alarm_threshold_kpa: Some(180.0),
            ..NodeConfig::default()
        };
        let mut node = PicoCube::tpms(config).expect("node builds");
        node.run_for(SimDuration::from_secs(61));
        let report = node.report();
        assert_eq!(report.wakes, 10);
        assert_eq!(report.packets.len(), 10, "no repeats above threshold");
    }

    #[test]
    fn beacon_node_transmits_on_the_timer() {
        // No sensor interrupt at all: Timer A paces sampling. 31 s at a
        // 5 s period → 6 beacons regardless of motion.
        let config = NodeConfig {
            harvester: HarvesterKind::None,
            ..NodeConfig::default()
        };
        let mut node =
            PicoCube::beacon(config, MotionScenario::retreat_table(5), 5).expect("node builds");
        node.run_for(SimDuration::from_secs(31));
        let report = node.report();
        assert_eq!(report.packets.len(), 6, "timer beacons");
        // Each decodes as a 6-byte motion payload.
        let frame = picocube_radio::packet::decode(
            &report.packets[0].bytes,
            picocube_radio::packet::Checksum::Xor,
        )
        .expect("beacon decodes");
        assert_eq!(frame.payload.len(), 6);
        // The SCA3000's standing ~10 µA motion-detect bias (reflected 2×
        // through the pump) dominates: ~27 µW — the accelerometer board
        // was never the 6 µW configuration; that headline belongs to the
        // TPMS board.
        assert!(report.average_power > Watts::from_micro(20.0));
        assert!(report.average_power < Watts::from_micro(40.0));
    }

    #[test]
    fn beacon_rejects_zero_period() {
        let r = PicoCube::beacon(NodeConfig::default(), MotionScenario::retreat_table(1), 0);
        assert!(matches!(r, Err(BuildError::InvalidConfig(_))));
    }

    #[test]
    fn wakeup_receiver_option_costs_50_uw() {
        let base = NodeConfig::default();
        let with_wakeup = NodeConfig {
            wakeup_receiver: true,
            ..NodeConfig::default()
        };
        let (_, plain) = run_tpms_for(60, base);
        let (_, listening) = run_tpms_for(60, with_wakeup);
        let delta = listening.average_power - plain.average_power;
        // §7.3: the always-on listener adds its ~50 µW on top of the node.
        assert!(
            (delta.micro() - 50.0).abs() < 3.0,
            "wakeup delta {:.1} µW",
            delta.micro()
        );
        let names: Vec<&str> = listening.power.rails[0]
            .loads
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(names.contains(&"wakeup receiver"));
    }

    #[test]
    fn invalid_config_rejected() {
        let bad = NodeConfig {
            initial_soc: 1.5,
            ..NodeConfig::default()
        };
        assert!(matches!(
            PicoCube::tpms(bad),
            Err(BuildError::InvalidConfig(_))
        ));
    }

    #[test]
    fn deterministic_given_a_seed() {
        let (_, a) = run_tpms_for(30, NodeConfig::default());
        let (_, b) = run_tpms_for(30, NodeConfig::default());
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.consumed, b.consumed);
    }

    #[test]
    fn builder_requires_an_application_board() {
        assert!(matches!(
            StackBuilder::new(NodeConfig::default()).build(),
            Err(BuildError::InvalidConfig(_))
        ));
    }

    #[test]
    fn node_report_json_round_trips_with_fault_state() {
        let (_, report) = run_tpms_for(13, NodeConfig::default());
        let json = Json::parse(&report.to_json().to_string()).expect("parses");
        let back = NodeReport::from_json(&json).expect("round trips");
        assert_eq!(back.wakes, report.wakes);
        assert_eq!(back.brownout_count, report.brownout_count);
        assert_eq!(back.browned_out, report.browned_out);
        assert_eq!(back.fault, report.fault);
        // Pre-stack reports (no brownout/fault keys) still parse.
        let legacy = Json::parse(
            r#"{"elapsed": 1.0, "average_power": 6e-6, "peak_power": 1e-3,
                "consumed": 6e-6, "harvested": 0.0,
                "power": {"elapsed": 1.0, "total_energy": 6e-6,
                          "average_power": 6e-6, "rails": []},
                "packets": [], "wakes": 0, "final_soc": 0.8}"#,
        )
        .expect("legacy parses");
        let legacy = NodeReport::from_json(&legacy).expect("legacy report accepted");
        assert_eq!(legacy.brownout_count, 0);
        assert!(!legacy.browned_out);
        assert_eq!(legacy.fault, None);
    }

    #[test]
    fn node_fault_json_round_trips() {
        let faults = [
            NodeFault::IllegalInstruction {
                word: 0x4303,
                at: 0xF010,
            },
            NodeFault::Stuck { steps: 200_000_001 },
            NodeFault::PowerChain {
                rail: "pump operating point",
            },
            NodeFault::Accounting,
        ];
        for fault in faults {
            let json = Json::parse(&fault.to_json().to_string()).expect("parses");
            assert_eq!(NodeFault::from_json(&json).expect("round trips"), fault);
        }
    }
}
