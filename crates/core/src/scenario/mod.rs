//! The declarative scenario engine: one serde-able [`Scenario`] spec
//! drives harvesters, environments, fleets, meshes and chaos campaigns.
//!
//! A spec is plain JSON-able data (the `spec` submodule) with explicit
//! lowering rules onto the existing engines (`DESIGN.md` §13):
//!
//! * no `mesh` object → the work-stealing ALOHA fleet
//!   ([`run_fleet_with`]); with one → the multi-hop relay mesh
//!   ([`run_mesh_with`]).
//! * a `chaos` object owns the four chaos knobs (harvest dropout, battery
//!   aging, ambient temperature, clock drift) and overrides the node-level
//!   equivalents; every knob's default is the exact stock behavior, so a
//!   spec with no chaos lowers **bit-identically** onto the hard-coded
//!   engine paths (pinned by `tests/scenarios.rs` golden fixtures).
//! * a `sweep` object fans one scalar knob across a value list (one run
//!   per value, same seed); a `campaign` object fans the *seed* instead
//!   and folds per-node first-brown-out times — harvested from the
//!   deterministic telemetry event stream — into a [`SurvivalCurve`].
//!
//! The spec-parsing and lowering path is panic-free by construction:
//! every malformed input comes back as a typed [`ScenarioError`], and the
//! engines' probe-build asserts are preceded by the same probe run here
//! through the `Result` path.

mod campaign;
mod spec;

pub use campaign::SurvivalCurve;
pub use spec::{Campaign, ChaosPlan, FleetSpec, MeshSpec, Scenario, Sweep, SweepKnob};

use crate::fleet::{
    build_fleet_node, fleet_node_config, node_setup_rng, run_fleet_with, FleetConfig,
    FleetConfigError, FleetOutcome, Parallelism,
};
use crate::mesh::{run_mesh_with, MeshConfig, MeshConfigError};
use crate::node::{BuildError, NodeConfig};
use campaign::SurvivalTracker;
use picocube_sim::{SimDuration, SimRng};
use picocube_telemetry::{keys, Metrics, Recorder};
use picocube_units::json::{Json, JsonError, ToJson};
use picocube_units::{Db, Seconds};

/// Why a scenario was rejected.
#[derive(Debug)]
pub enum ScenarioError {
    /// The JSON text failed to parse or was missing required fields.
    Parse(JsonError),
    /// A spec-level invariant was violated (the inner string names it).
    Invalid(&'static str),
    /// The lowered fleet configuration was rejected.
    Fleet(FleetConfigError),
    /// The lowered mesh configuration was rejected.
    Mesh(MeshConfigError),
    /// The lowered node failed its probe build.
    Build(BuildError),
}

impl core::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "scenario JSON: {e}"),
            Self::Invalid(what) => write!(f, "invalid scenario: {what}"),
            Self::Fleet(e) => write!(f, "scenario fleet config: {e}"),
            Self::Mesh(e) => write!(f, "scenario mesh config: {e}"),
            Self::Build(e) => write!(f, "scenario node build: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<JsonError> for ScenarioError {
    fn from(e: JsonError) -> Self {
        Self::Parse(e)
    }
}

impl From<FleetConfigError> for ScenarioError {
    fn from(e: FleetConfigError) -> Self {
        Self::Fleet(e)
    }
}

impl From<MeshConfigError> for ScenarioError {
    fn from(e: MeshConfigError) -> Self {
        Self::Mesh(e)
    }
}

impl From<BuildError> for ScenarioError {
    fn from(e: BuildError) -> Self {
        Self::Build(e)
    }
}

impl Scenario {
    /// Parses a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Parse`] on malformed JSON or missing
    /// required fields, and the other variants for specs that parse but
    /// cannot lower.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let value = Json::parse(text)?;
        let spec: Self = picocube_units::json::FromJson::from_json(&value)?;
        spec.validate()?;
        Ok(spec)
    }

    /// Checks spec-level invariants (the engine-level ones are checked
    /// again by the lowered configs' own `validate`).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if !(self.duration_s.is_finite() && self.duration_s > 0.0) {
            return Err(ScenarioError::Invalid("duration_s must be positive"));
        }
        if self.nodes == 0 {
            return Err(ScenarioError::Invalid("nodes must be at least 1"));
        }
        if self.sweep.is_some() && self.campaign.is_some() {
            return Err(ScenarioError::Invalid(
                "sweep and campaign modes are mutually exclusive",
            ));
        }
        if let Some(sweep) = &self.sweep {
            if sweep.values.is_empty() {
                return Err(ScenarioError::Invalid("sweep needs at least one value"));
            }
            if self.mesh.is_some() && sweep.knob == SweepKnob::DistanceMaxM {
                return Err(ScenarioError::Invalid(
                    "distance_max_m sweeps apply to fleet mode only",
                ));
            }
        }
        if let Some(campaign) = self.campaign {
            if campaign.seeds == 0 {
                return Err(ScenarioError::Invalid("campaign needs at least one seed"));
            }
            if campaign.bins == 0 || campaign.bins > 10_000 {
                return Err(ScenarioError::Invalid(
                    "campaign bins must be in [1, 10000]",
                ));
            }
        }
        Ok(())
    }

    /// The base node config with the chaos plan applied. A present chaos
    /// object *owns* its knobs: its four fields replace the node-level
    /// equivalents (absent chaos fields take the chaos defaults, i.e.
    /// "off").
    fn lowered_node(&self) -> NodeConfig {
        let mut node = self.node.clone();
        if let Some(chaos) = self.chaos {
            node.harvest_dropout = chaos.harvest_dropout;
            node.battery_capacity_fraction = chaos.battery_capacity_fraction;
            node.ambient_celsius = chaos.ambient_celsius;
        }
        node
    }

    fn wake_ppm_range(&self) -> f64 {
        self.chaos.map_or(500.0, |c| c.wake_ppm_range)
    }

    fn duration(&self) -> SimDuration {
        SimDuration::from_seconds(Seconds::new(self.duration_s))
    }

    /// Lowers the spec onto a validated [`FleetConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError`] for specs the fleet engine would reject.
    pub fn fleet_config(&self, parallelism: Parallelism) -> Result<FleetConfig, ScenarioError> {
        self.validate()?;
        let config = FleetConfig {
            nodes: self.nodes,
            base: self.lowered_node(),
            duration: self.duration(),
            distance_range: (self.fleet.distance_min_m, self.fleet.distance_max_m),
            capture_margin: Db::new(self.fleet.capture_margin_db),
            seed: self.seed,
            parallelism,
            app: self.app,
            wake_ppm_range: self.wake_ppm_range(),
            // Scenario summaries read only fleet aggregates; keep the
            // lowered run on the O(workers) streaming path.
            per_node_stats: false,
        };
        config.validate()?;
        Ok(config)
    }

    /// Lowers the spec onto a validated [`MeshConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Invalid`] when the spec has no `mesh`
    /// object, and the other variants for specs the mesh engine rejects.
    pub fn mesh_config(&self, parallelism: Parallelism) -> Result<MeshConfig, ScenarioError> {
        self.validate()?;
        let Some(mesh) = self.mesh else {
            return Err(ScenarioError::Invalid("scenario has no mesh object"));
        };
        let config = MeshConfig {
            nodes: self.nodes,
            base: self.lowered_node(),
            duration: self.duration(),
            sink_offset_m: mesh.sink_offset_m,
            spacing_m: mesh.spacing_m,
            capture_margin: Db::new(self.fleet.capture_margin_db),
            seed: self.seed,
            parallelism,
            turnaround: SimDuration::from_millis(mesh.turnaround_ms),
            max_hops: mesh.max_hops,
            app: self.app,
            wake_ppm_range: self.wake_ppm_range(),
            ..MeshConfig::default()
        };
        config.validate()?;
        Ok(config)
    }
}

/// One engine run's headline numbers, in the fleet vocabulary (mesh runs
/// report their sink-side accounting).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Master seed this run used.
    pub seed: u64,
    /// The swept knob's value, in sweep mode.
    pub knob_value: Option<f64>,
    /// Packets put on the air.
    pub offered: usize,
    /// Packets decoded at the receiver/sink.
    pub delivered: usize,
    /// Packets lost to collisions.
    pub collided: usize,
    /// Packets lost to the channel.
    pub channel_losses: usize,
    /// `delivered / offered`.
    pub delivery_ratio: f64,
    /// Nodes whose simulation latched a fault.
    pub faulted: usize,
    /// Brown-out events across the fleet (from the merged metrics).
    pub brownouts: u64,
}

impl RunSummary {
    fn from_fleet(
        seed: u64,
        knob_value: Option<f64>,
        outcome: &FleetOutcome,
        metrics: &Metrics,
    ) -> Self {
        Self {
            seed,
            knob_value,
            offered: outcome.offered,
            delivered: outcome.delivered,
            collided: outcome.collided,
            channel_losses: outcome.channel_losses,
            delivery_ratio: outcome.delivery_ratio(),
            faulted: outcome.faulted,
            brownouts: metrics.counter(keys::BOARD_STORAGE_BROWNOUTS),
        }
    }
}

impl ToJson for RunSummary {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), self.seed.to_json()),
            ("knob_value".into(), self.knob_value.to_json()),
            ("offered".into(), self.offered.to_json()),
            ("delivered".into(), self.delivered.to_json()),
            ("collided".into(), self.collided.to_json()),
            ("channel_losses".into(), self.channel_losses.to_json()),
            ("delivery_ratio".into(), self.delivery_ratio.to_json()),
            ("faulted".into(), self.faulted.to_json()),
            ("brownouts".into(), self.brownouts.to_json()),
        ])
    }
}

/// What [`run_scenario_with`] produced: one summary per engine run, the
/// merged metric registry, and (in campaign mode) the survival curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The spec's name, echoed for provenance.
    pub name: String,
    /// One entry per engine run (one for a plain scenario, one per sweep
    /// value, one per campaign seed).
    pub runs: Vec<RunSummary>,
    /// Campaign-mode survival curve.
    pub survival: Option<SurvivalCurve>,
    /// Merged metrics. For a plain (single-run) scenario these are
    /// bit-identical to the underlying engine's registry.
    pub metrics: Metrics,
}

impl ScenarioOutcome {
    /// Overall delivery ratio across all runs.
    pub fn delivery_ratio(&self) -> f64 {
        let offered: usize = self.runs.iter().map(|r| r.offered).sum();
        let delivered: usize = self.runs.iter().map(|r| r.delivered).sum();
        if offered == 0 {
            0.0
        } else {
            delivered as f64 / offered as f64
        }
    }
}

impl ToJson for ScenarioOutcome {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("runs".into(), self.runs.to_json()),
            ("survival".into(), self.survival.to_json()),
            ("metrics".into(), self.metrics.to_json()),
        ])
    }
}

/// Runs one spec'd engine pass (fleet or mesh per the spec), panic-free.
fn run_once(
    spec: &Scenario,
    parallelism: Parallelism,
    recorder: &mut dyn Recorder,
    knob_value: Option<f64>,
) -> Result<(RunSummary, Metrics), ScenarioError> {
    if spec.mesh.is_some() {
        let config = spec.mesh_config(parallelism)?;
        let (outcome, metrics) = run_mesh_with(&config, recorder)?;
        let summary = RunSummary::from_fleet(spec.seed, knob_value, &outcome.sink, &metrics);
        Ok((summary, metrics))
    } else {
        let config = spec.fleet_config(parallelism)?;
        // `run_fleet_with` asserts its probe build; run the same probe
        // through the Result path first so a bad spec (e.g. an unphysical
        // harvester trace from JSON) comes back typed instead of panicking.
        build_fleet_node(
            fleet_node_config(&config, 0, &mut node_setup_rng(config.seed, 0)),
            config.app,
        )?;
        let (outcome, metrics) = run_fleet_with(&config, recorder);
        let summary = RunSummary::from_fleet(spec.seed, knob_value, &outcome, &metrics);
        Ok((summary, metrics))
    }
}

/// Applies one sweep value to a copy of the spec.
fn apply_knob(spec: &Scenario, knob: SweepKnob, value: f64) -> Result<Scenario, ScenarioError> {
    let mut varied = spec.clone();
    varied.sweep = None;
    match knob {
        SweepKnob::Nodes => {
            if !(value.is_finite() && (1.0..=1e6).contains(&value)) {
                return Err(ScenarioError::Invalid("swept node count out of range"));
            }
            varied.nodes = value.round() as usize;
        }
        SweepKnob::InitialSoc => varied.node.initial_soc = value,
        SweepKnob::DistanceMaxM => varied.fleet.distance_max_m = value,
        SweepKnob::SamplePeriodS => varied.node.sample_period_s = Some(value),
    }
    Ok(varied)
}

/// The campaign's seed fan: seed `k` of the fan (k = 0 is the spec's own
/// seed). Delegates to [`SimRng::fan_seed`] — the one home for seed
/// derivation — so the rule cannot drift from the engine's.
fn fan_seed(master: u64, k: usize) -> u64 {
    SimRng::fan_seed(master, k as u64)
}

/// Runs a [`Scenario`] end to end: a single engine pass for a plain spec,
/// one pass per value in sweep mode, or a seed-fanned Monte Carlo
/// campaign (with survival curve) in campaign mode.
///
/// Telemetry streams into `recorder` exactly as the underlying engines
/// emit it (multi-run modes concatenate their runs' streams in run
/// order); for a plain spec the returned metrics are bit-identical to
/// [`run_fleet_with`] / [`run_mesh_with`] on the lowered config.
///
/// # Errors
///
/// Returns [`ScenarioError`] for any spec the engines cannot run — this
/// path never panics on bad input.
pub fn run_scenario_with(
    spec: &Scenario,
    parallelism: Parallelism,
    recorder: &mut dyn Recorder,
) -> Result<ScenarioOutcome, ScenarioError> {
    spec.validate()?;
    if let Some(campaign) = spec.campaign {
        return run_campaign(spec, campaign, parallelism, recorder);
    }
    if let Some(sweep) = spec.sweep.clone() {
        let mut runs = Vec::with_capacity(sweep.values.len());
        let mut merged = Metrics::new();
        for &value in &sweep.values {
            let varied = apply_knob(spec, sweep.knob, value)?;
            let (summary, metrics) = run_once(&varied, parallelism, recorder, Some(value))?;
            merged.merge_from(&metrics);
            runs.push(summary);
        }
        return Ok(ScenarioOutcome {
            name: spec.name.clone(),
            runs,
            survival: None,
            metrics: merged,
        });
    }
    let (summary, metrics) = run_once(spec, parallelism, recorder, None)?;
    Ok(ScenarioOutcome {
        name: spec.name.clone(),
        runs: vec![summary],
        survival: None,
        metrics,
    })
}

/// The campaign runner's one-time spec lowering: the engines' immutable
/// configs, built once and reused across every fanned seed.
enum LoweredCampaign {
    Fleet(FleetConfig),
    Mesh(MeshConfig),
}

fn run_campaign(
    spec: &Scenario,
    campaign: Campaign,
    parallelism: Parallelism,
    recorder: &mut dyn Recorder,
) -> Result<ScenarioOutcome, ScenarioError> {
    // Lower the spec ONCE. Each fanned run reuses the same lowered config
    // — harvest traces, chaos overlays and all — and swaps only the seed,
    // so a wide Monte Carlo campaign pays lowering and validation once,
    // and the per-seed engine passes ride the streaming fleet path in
    // O(workers) memory.
    let mut lowered = if spec.mesh.is_some() {
        LoweredCampaign::Mesh(spec.mesh_config(parallelism)?)
    } else {
        LoweredCampaign::Fleet(spec.fleet_config(parallelism)?)
    };
    let mut runs = Vec::with_capacity(campaign.seeds);
    let mut merged = Metrics::new();
    let mut first_downs: Vec<Vec<Option<u64>>> = Vec::with_capacity(campaign.seeds);
    for k in 0..campaign.seeds {
        let seed = fan_seed(spec.seed, k);
        let mut tracker = SurvivalTracker::new(recorder, spec.nodes);
        let (summary, metrics) = match &mut lowered {
            LoweredCampaign::Fleet(config) => {
                config.seed = seed;
                // `run_fleet_with` asserts its probe build; run the same
                // probe through the Result path first (per seed — the
                // probe's setup draws are seed-dependent) so a bad spec
                // comes back typed instead of panicking.
                build_fleet_node(
                    fleet_node_config(config, 0, &mut node_setup_rng(config.seed, 0)),
                    config.app,
                )?;
                let (outcome, metrics) = run_fleet_with(config, &mut tracker);
                (
                    RunSummary::from_fleet(seed, None, &outcome, &metrics),
                    metrics,
                )
            }
            LoweredCampaign::Mesh(config) => {
                config.seed = seed;
                let (outcome, metrics) = run_mesh_with(config, &mut tracker)?;
                (
                    RunSummary::from_fleet(seed, None, &outcome.sink, &metrics),
                    metrics,
                )
            }
        };
        first_downs.push(tracker.into_first_down());
        merged.merge_from(&metrics);
        runs.push(summary);
    }
    let survival = SurvivalCurve::from_runs(spec.duration_s, campaign.bins, &first_downs);
    let browned_out: usize = first_downs
        .iter()
        .flat_map(|run| run.iter())
        .filter(|down| down.is_some())
        .count();
    merged.inc(keys::CAMPAIGN_SEEDS, campaign.seeds as u64);
    merged.inc(
        keys::CAMPAIGN_NODES_TOTAL,
        (campaign.seeds * spec.nodes) as u64,
    );
    merged.inc(keys::CAMPAIGN_BROWNED_OUT_NODES, browned_out as u64);
    merged.add(keys::CAMPAIGN_FINAL_ALIVE_FRACTION, survival.final_alive());
    Ok(ScenarioOutcome {
        name: spec.name.clone(),
        runs,
        survival: Some(survival),
        metrics: merged,
    })
}
