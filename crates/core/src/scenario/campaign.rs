//! Monte Carlo campaign support: harvesting per-node first-brown-out
//! times from the telemetry event stream and folding a seed fan of runs
//! into a survival curve.
//!
//! The tracker is a [`Recorder`] shim, so survival data rides the same
//! deterministic event stream the engines already guarantee to be
//! bit-identical across [`Parallelism`](crate::fleet::Parallelism) modes —
//! the campaign inherits that determinism for free.

use picocube_telemetry::{Event, EventKind, Recorder};
use picocube_units::json::{Json, ToJson};
use std::io;

/// A [`Recorder`] that watches the stream for each node's *first*
/// [`EventKind::BrownOut`] while forwarding everything to the caller's
/// recorder (when that recorder wants events).
pub(super) struct SurvivalTracker<'a> {
    inner: &'a mut dyn Recorder,
    forward: bool,
    first_down_ns: Vec<Option<u64>>,
}

impl<'a> SurvivalTracker<'a> {
    pub(super) fn new(inner: &'a mut dyn Recorder, nodes: usize) -> Self {
        let forward = inner.wants_events();
        Self {
            inner,
            forward,
            first_down_ns: vec![None; nodes],
        }
    }

    /// Per-node first brown-out times, `None` for nodes that never went
    /// down.
    pub(super) fn into_first_down(self) -> Vec<Option<u64>> {
        self.first_down_ns
    }
}

impl Recorder for SurvivalTracker<'_> {
    fn wants_events(&self) -> bool {
        // The campaign needs the event stream even when the caller's
        // recorder does not.
        true
    }

    fn record(&mut self, event: &Event) {
        if matches!(event.kind, EventKind::BrownOut) {
            // Engine-level events carry NO_NODE (u32::MAX) and fall off
            // the end of the slot table.
            if let Some(slot) = self.first_down_ns.get_mut(event.node as usize) {
                if slot.is_none() {
                    *slot = Some(event.t_ns);
                }
            }
        }
        if self.forward {
            self.inner.record(event);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.forward {
            self.inner.flush()
        } else {
            Ok(())
        }
    }
}

/// A survival curve: the fraction of nodes that have not yet browned out,
/// sampled on a uniform time grid and averaged over a campaign's seed fan.
///
/// "Death" is the node's *first* brown-out — later recoveries do not
/// resurrect it for survival purposes, matching the survival-analysis
/// convention (time to first failure).
#[derive(Debug, Clone, PartialEq)]
pub struct SurvivalCurve {
    /// Simulated span the grid covers, seconds.
    pub duration_s: f64,
    /// Sample times, seconds (`bins` points, ending at `duration_s`).
    pub times_s: Vec<f64>,
    /// Mean alive fraction at each sample time, over all runs.
    pub alive: Vec<f64>,
}

impl SurvivalCurve {
    /// Folds the per-run first-down tables into the averaged curve.
    /// `bins` must be positive (validated at the spec layer).
    pub(super) fn from_runs(duration_s: f64, bins: usize, runs: &[Vec<Option<u64>>]) -> Self {
        let times_s: Vec<f64> = (1..=bins)
            .map(|j| duration_s * j as f64 / bins as f64)
            .collect();
        let total_nodes: usize = runs.iter().map(Vec::len).sum();
        let alive = times_s
            .iter()
            .map(|&t| {
                if total_nodes == 0 {
                    return 1.0;
                }
                let t_ns = t * 1e9;
                let alive_nodes: usize = runs
                    .iter()
                    .flat_map(|run| run.iter())
                    .filter(|down| match down {
                        Some(down_ns) => *down_ns as f64 > t_ns,
                        None => true,
                    })
                    .count();
                alive_nodes as f64 / total_nodes as f64
            })
            .collect();
        Self {
            duration_s,
            times_s,
            alive,
        }
    }

    /// Alive fraction at the end of the run (the curve's last sample).
    pub fn final_alive(&self) -> f64 {
        self.alive.last().copied().unwrap_or(1.0)
    }
}

impl ToJson for SurvivalCurve {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("duration_s".into(), self.duration_s.to_json()),
            ("times_s".into(), self.times_s.to_json()),
            ("alive".into(), self.alive.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_counts_first_downs_only() {
        // Two runs of two nodes over 100 s: one node dies at 25 s, one at
        // 75 s, two never die.
        let runs = vec![
            vec![Some(25_000_000_000), None],
            vec![None, Some(75_000_000_000)],
        ];
        let curve = SurvivalCurve::from_runs(100.0, 4, &runs);
        assert_eq!(curve.times_s, vec![25.0, 50.0, 75.0, 100.0]);
        // At 25 s the first death has happened (down_ns > t_ns is false at
        // exactly t); 3/4 alive until 75 s, then 2/4.
        assert_eq!(curve.alive, vec![0.75, 0.75, 0.5, 0.5]);
        assert_eq!(curve.final_alive(), 0.5);
    }

    #[test]
    fn empty_campaign_stays_alive() {
        let curve = SurvivalCurve::from_runs(60.0, 2, &[]);
        assert_eq!(curve.alive, vec![1.0, 1.0]);
    }
}
