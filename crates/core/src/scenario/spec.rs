//! The declarative [`Scenario`] spec: plain data plus JSON codecs.
//!
//! Everything here is inert description — no simulation state, no RNG.
//! The lowering rules that turn a spec into engine configurations live in
//! the parent module; the chaos-plan knobs lower onto the typed
//! [`NodeConfig`]/fleet fields added for them (see `DESIGN.md` §13).

use crate::fleet::FleetApp;
use crate::node::{HarvestDropout, NodeConfig};
use picocube_units::json::{field, FromJson, Json, JsonError, ToJson};

/// Fleet geometry and channel parameters (the non-chaos fleet knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Minimum node-to-receiver distance, meters.
    pub distance_min_m: f64,
    /// Maximum node-to-receiver distance, meters.
    pub distance_max_m: f64,
    /// Capture threshold for overlapping transmissions, dB.
    pub capture_margin_db: f64,
}

impl Default for FleetSpec {
    fn default() -> Self {
        // Mirrors `FleetConfig::default()` so an omitted "fleet" object
        // lowers onto the stock engine defaults.
        Self {
            distance_min_m: 0.5,
            distance_max_m: 4.0,
            capture_margin_db: 10.0,
        }
    }
}

/// Mesh (multi-hop relay) parameters. A scenario with a `mesh` object
/// runs the line-topology relay engine instead of the single-receiver
/// ALOHA fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshSpec {
    /// Distance from the sink to node 0, meters.
    pub sink_offset_m: f64,
    /// Inter-node spacing along the line, meters.
    pub spacing_m: f64,
    /// Relay decode + PA spin-up delay, milliseconds.
    pub turnaround_ms: u64,
    /// Maximum hop count a relayed copy may reach.
    pub max_hops: u32,
}

impl Default for MeshSpec {
    fn default() -> Self {
        // Mirrors `MeshConfig::default()`.
        Self {
            sink_offset_m: 2.0,
            spacing_m: 2.0,
            turnaround_ms: 20,
            max_hops: 4,
        }
    }
}

/// The fault/chaos plan: deterministic environmental adversity layered on
/// the typed `NodeFault` machinery. Every knob defaults to "off" (the
/// exact stock behavior).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Square-wave harvest dropout (per-node phase staggered by seed).
    pub harvest_dropout: Option<HarvestDropout>,
    /// Battery aging: remaining capacity fraction in `(0, 1]` (1.0 = fresh).
    pub battery_capacity_fraction: f64,
    /// Ambient storage temperature, °C — drives the NiMH
    /// temperature-dependent self-discharge.
    pub ambient_celsius: Option<f64>,
    /// Clock-drift half-width for the per-node wake-timer tolerance draw,
    /// ppm (500 = stock).
    pub wake_ppm_range: f64,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self {
            harvest_dropout: None,
            battery_capacity_fraction: 1.0,
            ambient_celsius: None,
            wake_ppm_range: 500.0,
        }
    }
}

/// Which scalar the sweep mode varies across its `values`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKnob {
    /// Fleet size (values are rounded to whole nodes).
    Nodes,
    /// Initial battery state of charge.
    InitialSoc,
    /// Maximum node-to-receiver distance, meters (fleet mode only).
    DistanceMaxM,
    /// Sensor sample period override, seconds.
    SamplePeriodS,
}

impl SweepKnob {
    /// Stable wire tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Nodes => "nodes",
            Self::InitialSoc => "initial_soc",
            Self::DistanceMaxM => "distance_max_m",
            Self::SamplePeriodS => "sample_period_s",
        }
    }
}

/// A parameter sweep: one engine run per value, all from the same seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Which knob varies.
    pub knob: SweepKnob,
    /// The values to run, in order.
    pub values: Vec<f64>,
}

/// A Monte Carlo campaign: the scenario re-run under a fan of derived
/// seeds, with per-node first-brown-out times harvested from the
/// telemetry stream into a survival curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Campaign {
    /// Number of seeds in the fan (seed 0 is the spec's own seed).
    pub seeds: usize,
    /// Time-axis resolution of the survival curve.
    pub bins: usize,
}

impl Default for Campaign {
    fn default() -> Self {
        Self { seeds: 8, bins: 24 }
    }
}

/// A declarative simulation scenario: one JSON-able value describing the
/// harvester, environment, application board, fleet shape, mesh mode,
/// chaos plan, and (optionally) a sweep or Monte Carlo campaign.
///
/// `name`, `seed`, `duration_s` and `nodes` are required in the JSON
/// form; everything else defaults to the stock engine behavior, so a
/// minimal spec is four lines and lowers bit-identically onto the
/// hard-coded TPMS fleet (pinned by `tests/scenarios.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable scenario name (carried into the outcome).
    pub name: String,
    /// Master seed.
    pub seed: u64,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Fleet size.
    pub nodes: usize,
    /// Base per-node configuration (id/seed/phase overridden per node).
    pub node: NodeConfig,
    /// Application board every node carries.
    pub app: FleetApp,
    /// Fleet geometry/channel parameters.
    pub fleet: FleetSpec,
    /// Multi-hop relay mode, when present.
    pub mesh: Option<MeshSpec>,
    /// Chaos plan, when present.
    pub chaos: Option<ChaosPlan>,
    /// Parameter sweep mode, when present.
    pub sweep: Option<Sweep>,
    /// Monte Carlo campaign mode, when present.
    pub campaign: Option<Campaign>,
}

impl ToJson for FleetSpec {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("distance_min_m".into(), self.distance_min_m.to_json()),
            ("distance_max_m".into(), self.distance_max_m.to_json()),
            ("capture_margin_db".into(), self.capture_margin_db.to_json()),
        ])
    }
}

impl FromJson for FleetSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let defaults = Self::default();
        Ok(Self {
            distance_min_m: optional(value, "distance_min_m", defaults.distance_min_m)?,
            distance_max_m: optional(value, "distance_max_m", defaults.distance_max_m)?,
            capture_margin_db: optional(value, "capture_margin_db", defaults.capture_margin_db)?,
        })
    }
}

impl ToJson for MeshSpec {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sink_offset_m".into(), self.sink_offset_m.to_json()),
            ("spacing_m".into(), self.spacing_m.to_json()),
            ("turnaround_ms".into(), self.turnaround_ms.to_json()),
            ("max_hops".into(), self.max_hops.to_json()),
        ])
    }
}

impl FromJson for MeshSpec {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let defaults = Self::default();
        Ok(Self {
            sink_offset_m: optional(value, "sink_offset_m", defaults.sink_offset_m)?,
            spacing_m: optional(value, "spacing_m", defaults.spacing_m)?,
            turnaround_ms: optional(value, "turnaround_ms", defaults.turnaround_ms)?,
            max_hops: optional(value, "max_hops", defaults.max_hops)?,
        })
    }
}

impl ToJson for ChaosPlan {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("harvest_dropout".into(), self.harvest_dropout.to_json()),
            (
                "battery_capacity_fraction".into(),
                self.battery_capacity_fraction.to_json(),
            ),
            ("ambient_celsius".into(), self.ambient_celsius.to_json()),
            ("wake_ppm_range".into(), self.wake_ppm_range.to_json()),
        ])
    }
}

impl FromJson for ChaosPlan {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let defaults = Self::default();
        Ok(Self {
            harvest_dropout: optional(value, "harvest_dropout", defaults.harvest_dropout)?,
            battery_capacity_fraction: optional(
                value,
                "battery_capacity_fraction",
                defaults.battery_capacity_fraction,
            )?,
            ambient_celsius: optional(value, "ambient_celsius", defaults.ambient_celsius)?,
            wake_ppm_range: optional(value, "wake_ppm_range", defaults.wake_ppm_range)?,
        })
    }
}

impl ToJson for SweepKnob {
    fn to_json(&self) -> Json {
        Json::Str(self.tag().into())
    }
}

impl FromJson for SweepKnob {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let tag: String = FromJson::from_json(value)?;
        match tag.as_str() {
            "nodes" => Ok(Self::Nodes),
            "initial_soc" => Ok(Self::InitialSoc),
            "distance_max_m" => Ok(Self::DistanceMaxM),
            "sample_period_s" => Ok(Self::SamplePeriodS),
            other => Err(JsonError::new(format!("unknown sweep knob {other:?}"))),
        }
    }
}

impl ToJson for Sweep {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("knob".into(), self.knob.to_json()),
            ("values".into(), self.values.to_json()),
        ])
    }
}

impl FromJson for Sweep {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            knob: FromJson::from_json(field(value, "knob")?)?,
            values: FromJson::from_json(field(value, "values")?)?,
        })
    }
}

impl ToJson for Campaign {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seeds".into(), self.seeds.to_json()),
            ("bins".into(), self.bins.to_json()),
        ])
    }
}

impl FromJson for Campaign {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let defaults = Self::default();
        Ok(Self {
            seeds: optional(value, "seeds", defaults.seeds)?,
            bins: optional(value, "bins", defaults.bins)?,
        })
    }
}

impl ToJson for FleetApp {
    fn to_json(&self) -> Json {
        match *self {
            Self::Tpms => Json::Str("Tpms".into()),
            Self::Motion {
                rest_s,
                handled_s,
                vigor_g,
            } => Json::Obj(vec![(
                "Motion".into(),
                Json::Obj(vec![
                    ("rest_s".into(), rest_s.to_json()),
                    ("handled_s".into(), handled_s.to_json()),
                    ("vigor_g".into(), vigor_g.to_json()),
                ]),
            )]),
            Self::Beacon {
                rest_s,
                handled_s,
                vigor_g,
                period_s,
            } => Json::Obj(vec![(
                "Beacon".into(),
                Json::Obj(vec![
                    ("rest_s".into(), rest_s.to_json()),
                    ("handled_s".into(), handled_s.to_json()),
                    ("vigor_g".into(), vigor_g.to_json()),
                    ("period_s".into(), period_s.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for FleetApp {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if let Some(body) = value.get("Motion") {
            return Ok(Self::Motion {
                rest_s: FromJson::from_json(field(body, "rest_s")?)?,
                handled_s: FromJson::from_json(field(body, "handled_s")?)?,
                vigor_g: FromJson::from_json(field(body, "vigor_g")?)?,
            });
        }
        if let Some(body) = value.get("Beacon") {
            return Ok(Self::Beacon {
                rest_s: FromJson::from_json(field(body, "rest_s")?)?,
                handled_s: FromJson::from_json(field(body, "handled_s")?)?,
                vigor_g: FromJson::from_json(field(body, "vigor_g")?)?,
                period_s: FromJson::from_json(field(body, "period_s")?)?,
            });
        }
        let tag: String = FromJson::from_json(value)?;
        match tag.as_str() {
            "Tpms" => Ok(Self::Tpms),
            other => Err(JsonError::new(format!("unknown app board {other:?}"))),
        }
    }
}

impl ToJson for Scenario {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), self.name.to_json()),
            ("seed".into(), self.seed.to_json()),
            ("duration_s".into(), self.duration_s.to_json()),
            ("nodes".into(), self.nodes.to_json()),
            ("node".into(), self.node.to_json()),
            ("app".into(), self.app.to_json()),
            ("fleet".into(), self.fleet.to_json()),
            ("mesh".into(), self.mesh.to_json()),
            ("chaos".into(), self.chaos.to_json()),
            ("sweep".into(), self.sweep.to_json()),
            ("campaign".into(), self.campaign.to_json()),
        ])
    }
}

impl FromJson for Scenario {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: FromJson::from_json(field(value, "name")?)?,
            seed: FromJson::from_json(field(value, "seed")?)?,
            duration_s: FromJson::from_json(field(value, "duration_s")?)?,
            nodes: FromJson::from_json(field(value, "nodes")?)?,
            node: match value.get("node") {
                Some(v) => node_overlay(v)?,
                None => NodeConfig::default(),
            },
            app: optional(value, "app", FleetApp::Tpms)?,
            fleet: optional(value, "fleet", FleetSpec::default())?,
            mesh: optional(value, "mesh", None)?,
            chaos: optional(value, "chaos", None)?,
            sweep: optional(value, "sweep", None)?,
            campaign: optional(value, "campaign", None)?,
        })
    }
}

/// Parses an optional object key, substituting `default` when the key is
/// absent (or, for `Option` targets, explicitly `null`).
fn optional<T: FromJson>(value: &Json, key: &str, default: T) -> Result<T, JsonError> {
    match value.get(key) {
        Some(v) => FromJson::from_json(v),
        None => Ok(default),
    }
}

/// Parses a *partial* node configuration: every key is optional and
/// missing keys take the stock [`NodeConfig::default`] value, so spec
/// files only spell the knobs they change (unlike the strict
/// [`NodeConfig`] codec used for full round-trips).
fn node_overlay(value: &Json) -> Result<NodeConfig, JsonError> {
    let d = NodeConfig::default();
    Ok(NodeConfig {
        power_chain: optional(value, "power_chain", d.power_chain)?,
        harvester: optional(value, "harvester", d.harvester)?,
        drive_cycle: optional(value, "drive_cycle", d.drive_cycle)?,
        node_id: optional(value, "node_id", d.node_id)?,
        seed: optional(value, "seed", d.seed)?,
        initial_soc: optional(value, "initial_soc", d.initial_soc)?,
        leak_kpa_per_hour: optional(value, "leak_kpa_per_hour", d.leak_kpa_per_hour)?,
        wakeup_receiver: optional(value, "wakeup_receiver", d.wakeup_receiver)?,
        first_wake_offset_ms: optional(value, "first_wake_offset_ms", d.first_wake_offset_ms)?,
        wake_interval_ppm: optional(value, "wake_interval_ppm", d.wake_interval_ppm)?,
        alarm_threshold_kpa: optional(value, "alarm_threshold_kpa", d.alarm_threshold_kpa)?,
        ungated_rf_ldo: optional(value, "ungated_rf_ldo", d.ungated_rf_ldo)?,
        sample_period_s: optional(value, "sample_period_s", d.sample_period_s)?,
        storage: optional(value, "storage", d.storage)?,
        battery_capacity_fraction: optional(
            value,
            "battery_capacity_fraction",
            d.battery_capacity_fraction,
        )?,
        ambient_celsius: optional(value, "ambient_celsius", d.ambient_celsius)?,
        harvest_dropout: optional(value, "harvest_dropout", d.harvest_dropout)?,
    })
}
