//! Multi-hop mesh deployments: PicoCubes that hear each other.
//!
//! The two-phase fleet engine ([`crate::fleet`]) treats nodes as
//! transmit-only — packets meet only in the merge. This module gives the
//! fleet a *receive path*: every node carries the §7.3 wakeup receiver as
//! a real addressable detector ([`WakeupReceiver::detects`] gates on the
//! pairwise link budget), and a hop-count-limited flooding protocol
//! rebroadcasts detected frames toward the sink, one per-hop PA pulse and
//! its RF energy at a time.
//!
//! # Conservative time-windowed synchronization
//!
//! Receiving couples the node simulations, so the embarrassingly-parallel
//! two-phase split no longer applies. The mesh engine instead advances
//! all nodes in lockstep windows of length `W = turnaround` (the decode +
//! PA spin-up delay between hearing a frame and rebroadcasting it) and
//! exchanges packets only at window boundaries. The lookahead argument
//! that makes this exact, not approximate: a transmission collected after
//! window `k` ended at some `e > W_{k-1}`, so the earliest relay it can
//! trigger fires at `e + turnaround > W_{k-1} + W = W_k` — always in the
//! *next* window or later, never in a stack's simulated past. Every
//! cross-node interaction therefore happens in the single-threaded match
//! phase between windows, and the engine is bit-identical across
//! [`Parallelism::Serial`] and [`Parallelism::Threads`]: worker threads
//! own static contiguous node shards (stacks hold `Rc` state and cannot
//! migrate), two barriers bracket each match phase, and the match phase
//! itself always runs on one thread over node-indexed data.
//!
//! Randomness follows the fleet's stream discipline: node `i` keeps its
//! fleet streams `2i`/`2i + 1`, false wakes draw from the reserved
//! per-node streams [`FALSE_WAKE_STREAM_BASE`]` + i`, and the sink's
//! channel trials use [`SINK_STREAM`] — no draw ever depends on thread
//! scheduling.

use crate::fleet::{
    capture_sweep, link_for_fleet, node_setup_rng, node_sim_seed, AirSlot, FleetApp,
    FleetConfigError, FleetOutcome, NodeCounts, Parallelism, RX_DBM_BOUNDS,
};
use crate::node::NodeConfig;
use crate::stack::Stack;
use crate::TransmittedPacket;
use picocube_radio::packet::{self, Checksum};
use picocube_radio::{SuperRegenReceiver, WakeupReceiver};
use picocube_sim::{SimDuration, SimRng, SimTime};
use picocube_telemetry::{keys, EventKind, Metrics, NullRecorder, Recorder, TelemetryBuffer};
use picocube_units::{Db, Dbm, Meters, Seconds};
use std::sync::{Barrier, Mutex, MutexGuard};

/// Reserved stream index for the sink's channel trials (the fleet merge
/// uses `u64::MAX`; both are unreachable from any per-node stream).
const SINK_STREAM: u64 = u64::MAX - 1;

/// Base of the reserved per-node false-wake streams: node `i` draws its
/// noise-triggered wake times from stream `FALSE_WAKE_STREAM_BASE + i`,
/// disjoint from the fleet's `2i`/`2i + 1` streams for any fleet that
/// fits in memory and from the engine streams at the top of the range.
const FALSE_WAKE_STREAM_BASE: u64 = 1 << 62;

/// Histogram bounds for delivered-copy hop counts (`mesh.delivered_hops`):
/// one bucket per hop count 0..=7.
const HOP_BOUNDS: [f64; 8] = [0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5];

/// Mesh scenario parameters.
///
/// Geometry is a line: node `i` sits `sink_offset_m + i * spacing_m` from
/// the sink, so pairwise node distance is `|i - j| * spacing_m`. With the
/// default [`WakeupReceiver::mesh_correlator`] detector (−72 dBm) and the
/// demo-room channel, nodes hear only adjacent neighbors while the sink's
/// superregenerative receiver dies past ~20 m — distant nodes deliver
/// only over multiple hops.
#[derive(Debug, Clone)]
pub struct MeshConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Base per-node configuration (id/seed/phase are overridden per node).
    pub base: NodeConfig,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Distance from the sink to node 0, in meters.
    pub sink_offset_m: f64,
    /// Inter-node spacing along the line, in meters.
    pub spacing_m: f64,
    /// Capture threshold for overlapping transmissions, at relays and at
    /// the sink.
    pub capture_margin: Db,
    /// Master seed.
    pub seed: u64,
    /// Window execution mode. Serial and threaded runs of the same
    /// configuration produce bit-identical outcomes.
    pub parallelism: Parallelism,
    /// The wakeup detector every node listens with.
    pub detector: WakeupReceiver,
    /// Decode + PA spin-up delay between hearing a frame's end and
    /// rebroadcasting it. Also the synchronization window length (see the
    /// module docs), so it must be at least the detector's wake latency.
    pub turnaround: SimDuration,
    /// Maximum hop count a copy may reach (1 = first relay; originals are
    /// hop 0). Rebroadcast stops at this count.
    pub max_hops: u32,
    /// Application board every node carries (motion scenarios are seeded
    /// per node).
    pub app: FleetApp,
    /// Half-width of the per-node wake-timer tolerance draw, ppm (500
    /// reproduces the historical draw bit-identically).
    pub wake_ppm_range: f64,
}

impl Default for MeshConfig {
    fn default() -> Self {
        Self {
            nodes: 12,
            base: NodeConfig::default(),
            duration: SimDuration::from_secs(120),
            sink_offset_m: 2.0,
            spacing_m: 2.0,
            capture_margin: Db::new(10.0),
            seed: 1,
            parallelism: Parallelism::Serial,
            detector: WakeupReceiver::mesh_correlator(),
            turnaround: SimDuration::from_millis(20),
            max_hops: 4,
            app: FleetApp::Tpms,
            wake_ppm_range: 500.0,
        }
    }
}

/// Why a mesh configuration (or its probe build) was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum MeshConfigError {
    /// The mesh had zero nodes.
    ZeroNodes,
    /// The simulated duration was zero.
    NonPositiveDuration,
    /// `Parallelism::Threads(0)` was requested.
    ZeroThreads,
    /// Spacing or sink offset was non-positive (or not finite).
    InvalidGeometry,
    /// The turnaround was zero or shorter than the detector's wake
    /// latency (the windowed-sync lookahead argument needs it).
    InvalidTurnaround,
    /// Zero hops would never relay anything.
    ZeroMaxHops,
    /// The application-board parameters were unphysical (the inner string
    /// names the violated invariant).
    InvalidApp(&'static str),
    /// The wake-timer tolerance half-width was negative or non-finite.
    InvalidWakePpmRange,
    /// The base node configuration failed its probe build.
    BaseConfig(String),
}

impl core::fmt::Display for MeshConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ZeroNodes => f.write_str("mesh needs at least one node"),
            Self::NonPositiveDuration => f.write_str("mesh duration must be positive"),
            Self::ZeroThreads => f.write_str("Parallelism::Threads needs at least one thread"),
            Self::InvalidGeometry => {
                f.write_str("mesh geometry needs positive spacing and sink offset")
            }
            Self::InvalidTurnaround => {
                f.write_str("turnaround must be positive and at least the detector latency")
            }
            Self::ZeroMaxHops => f.write_str("max_hops must be at least 1"),
            Self::InvalidApp(what) => f.write_str(what),
            Self::InvalidWakePpmRange => {
                f.write_str("wake timer tolerance half-width must be finite and non-negative")
            }
            Self::BaseConfig(why) => write!(f, "mesh base config does not build: {why}"),
        }
    }
}

impl std::error::Error for MeshConfigError {}

impl MeshConfig {
    /// Checks the invariants the windowed-sync engine relies on.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), MeshConfigError> {
        if self.nodes == 0 {
            return Err(MeshConfigError::ZeroNodes);
        }
        if self.duration.is_zero() {
            return Err(MeshConfigError::NonPositiveDuration);
        }
        if self.parallelism == Parallelism::Threads(0) {
            return Err(MeshConfigError::ZeroThreads);
        }
        let positive_finite = |v: f64| v > 0.0 && v.is_finite();
        if !positive_finite(self.spacing_m) || !positive_finite(self.sink_offset_m) {
            return Err(MeshConfigError::InvalidGeometry);
        }
        let latency = SimDuration::from_seconds(self.detector.latency());
        if self.turnaround.is_zero() || self.turnaround < latency {
            return Err(MeshConfigError::InvalidTurnaround);
        }
        if self.max_hops == 0 {
            return Err(MeshConfigError::ZeroMaxHops);
        }
        if let Err(FleetConfigError::InvalidApp(what)) = self.app.validate() {
            return Err(MeshConfigError::InvalidApp(what));
        }
        if !(self.wake_ppm_range.is_finite() && self.wake_ppm_range >= 0.0) {
            return Err(MeshConfigError::InvalidWakePpmRange);
        }
        Ok(())
    }
}

/// Aggregated mesh results: the sink's per-transmission accounting plus
/// the relay fabric's own counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshOutcome {
    /// Per-transmission accounting at the sink (originals and relayed
    /// copies alike), in the fleet's vocabulary.
    pub sink: FleetOutcome,
    /// Distinct packets originated across the fleet.
    pub unique_offered: usize,
    /// Distinct packets with at least one copy decoded at the sink.
    pub unique_delivered: usize,
    /// Delivered copies by hop count (index = hops; 0 = the originator's
    /// own transmission reached the sink directly).
    pub delivered_by_hop: Vec<usize>,
    /// Rebroadcasts that made it onto the air.
    pub relays: usize,
    /// Rebroadcasts accepted by the match phase (`relays` plus copies
    /// dropped by brown-outs, faults or the end of the run).
    pub relays_injected: usize,
    /// Frames successfully detected and decoded at relay nodes.
    pub receptions: usize,
    /// Receptions suppressed as duplicates by the flooding dedup.
    pub duplicates: usize,
    /// Detections lost to overlapping transmissions at a relay.
    pub rx_collisions: usize,
    /// Noise-triggered wakes across the fleet (the detectors'
    /// `false_rate`).
    pub false_wakes: usize,
}

/// One transmission with its flooding provenance, as plain engine data.
#[derive(Debug, Clone)]
struct MeshTx {
    node: usize,
    start: SimTime,
    end: SimTime,
    bytes: Vec<u8>,
    /// Fleet index of the originating node.
    origin: u32,
    /// The originator's running packet number.
    seq: u32,
    /// Hop count of this copy (0 = transmitted by the originator).
    hops: u32,
}

/// A rebroadcast the match phase scheduled but has not yet observed on
/// the air (the node may still drop it to a brown-out or the run's end).
#[derive(Debug, Clone)]
struct PendingRelay {
    bytes: Vec<u8>,
    origin: u32,
    seq: u32,
    hops: u32,
}

/// Engine-side per-node state (the stacks themselves stay thread-pinned).
#[derive(Debug, Default)]
struct NodeState {
    /// Origination counter.
    seq: u32,
    /// Scheduled rebroadcasts not yet seen on the air.
    pending: Vec<PendingRelay>,
    /// Sorted flooding-dedup set of `(origin, seq)` keys this node has
    /// originated, heard, or relayed.
    seen: Vec<(u32, u32)>,
}

impl NodeState {
    /// Inserts `key` into the dedup set; `false` if it was already there.
    fn remember(&mut self, key: (u32, u32)) -> bool {
        match self.seen.binary_search(&key) {
            Ok(_) => false,
            Err(pos) => {
                self.seen.insert(pos, key);
                true
            }
        }
    }
}

/// What one worker hands the match phase for one node and window, and
/// what the match phase hands back.
#[derive(Debug, Default)]
struct WindowSlot {
    alive: bool,
    faulted: bool,
    new_packets: Vec<TransmittedPacket>,
    injections: Vec<(SimTime, Vec<u8>)>,
    telemetry: Option<TelemetryBuffer>,
}

/// Everything the single-threaded match phase accumulates over the run.
struct EngineState {
    nodes: Vec<NodeState>,
    all_txs: Vec<MeshTx>,
    /// The previous window's transmissions: interference context for
    /// boundary-straddling overlaps in the next match phase.
    prev_txs: Vec<MeshTx>,
    telemetry: TelemetryBuffer,
    receptions: usize,
    duplicates: usize,
    rx_collisions: usize,
    relays_injected: usize,
    relays_on_air: usize,
}

/// The pairwise/sink link-budget tables, precomputed once.
struct Geometry {
    /// Receive level between nodes `d` apart, at index `d - 1`.
    neighbor_level: Vec<Dbm>,
    /// Receive level at the sink, per node index.
    sink_level: Vec<Dbm>,
}

impl Geometry {
    fn new(config: &MeshConfig) -> Self {
        let link = link_for_fleet();
        let neighbor_level = (1..config.nodes)
            .map(|d| {
                link.budget(Meters::new(d as f64 * config.spacing_m))
                    .received
            })
            .collect();
        let sink_level = (0..config.nodes)
            .map(|i| {
                link.budget(Meters::new(
                    config.sink_offset_m + i as f64 * config.spacing_m,
                ))
                .received
            })
            .collect();
        Self {
            neighbor_level,
            sink_level,
        }
    }

    /// Receive level at node `j` of node `i`'s transmission (`None` for
    /// `i == j`; a node hears itself through the half-duplex veto, not
    /// the link budget).
    fn between(&self, i: usize, j: usize) -> Option<Dbm> {
        let d = i.abs_diff(j);
        if d == 0 {
            return None;
        }
        self.neighbor_level.get(d - 1).copied()
    }
}

/// The concrete [`NodeConfig`] for mesh node `index`: the fleet's
/// per-node identity/jitter discipline over the mesh base.
fn mesh_node_config(config: &MeshConfig, index: usize) -> NodeConfig {
    let mut setup = node_setup_rng(config.seed, index);
    let period_ms = 6_000u64;
    NodeConfig {
        node_id: (index & 0xFF) as u8,
        seed: node_sim_seed(config.seed, index),
        first_wake_offset_ms: setup.next_u64() % period_ms,
        // Scaled after the draw so the draw count/order is fixed; the
        // default 500 ppm factor is exactly 1.0 (bit-identical).
        wake_interval_ppm: setup.uniform(-500.0, 500.0) * (config.wake_ppm_range / 500.0),
        ..config.base.clone()
    }
}

/// Builds and arms one mesh node: the configured application stack with
/// the mesh receive path fitted and event recording set.
fn build_mesh_node(
    config: &MeshConfig,
    index: usize,
    record_events: bool,
) -> Result<Stack, String> {
    let mut stack = crate::fleet::build_fleet_node(mesh_node_config(config, index), config.app)
        .map_err(|e| format!("{e:?}"))?;
    stack.set_event_recording(record_events);
    stack
        .fit_mesh_rx(config.detector)
        .map_err(|fault| format!("mesh rx fit: {fault}"))?;
    Ok(stack)
}

/// Precomputes node `index`'s noise-triggered wake times over the run
/// from its reserved false-wake stream.
fn false_wake_times(config: &MeshConfig, index: usize) -> Vec<SimTime> {
    let rate = config.detector.false_rate().value();
    if rate <= 0.0 {
        return Vec::new();
    }
    let mut rng = SimRng::stream(config.seed, FALSE_WAKE_STREAM_BASE + index as u64);
    let horizon = config.duration.as_seconds().value();
    let mut times = Vec::new();
    let mut t = 0.0f64;
    loop {
        t += rng.exponential(rate);
        if t >= horizon {
            break;
        }
        times.push(SimTime::from_seconds(Seconds::new(t)));
    }
    times
}

/// `Mutex` lock with poison recovery: a panicked worker already aborts
/// the run via `resume_unwind`, so a poisoned lock here only means this
/// thread is unwinding alongside it.
fn lock(slot: &Mutex<WindowSlot>) -> MutexGuard<'_, WindowSlot> {
    match slot.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Provenance the collection pass attaches to one on-air packet.
struct Classified {
    origin: u32,
    seq: u32,
    hops: u32,
    was_relay: bool,
}

/// The single-threaded match phase for one window: classify the window's
/// transmissions, gate detection on the wakeup sensitivity, apply
/// collision/capture and half-duplex at each receiver, dedup, hop-limit,
/// and emit next-window injections into the slots.
fn match_window(
    config: &MeshConfig,
    geometry: &Geometry,
    state: &mut EngineState,
    slots: &[Mutex<WindowSlot>],
    prev_txs: &[MeshTx],
) -> Vec<MeshTx> {
    // Collect the window's transmissions with provenance, node-ordered.
    let mut window_txs: Vec<MeshTx> = Vec::new();
    for (index, slot) in slots.iter().enumerate() {
        let packets = std::mem::take(&mut lock(slot).new_packets);
        for packet in packets {
            let start = packet
                .time
                .checked_sub(SimDuration::from_seconds(packet.transmission.duration))
                .unwrap_or(SimTime::ZERO);
            let classified = state.nodes.get_mut(index).and_then(|node_state| {
                if packet.relayed {
                    // Match the copy back to the scheduled rebroadcast it
                    // executes; byte identity is the key (flooding relays
                    // frames verbatim).
                    node_state
                        .pending
                        .iter()
                        .position(|p| p.bytes == packet.bytes)
                        .map(|pos| {
                            let pending = node_state.pending.remove(pos);
                            Classified {
                                origin: pending.origin,
                                seq: pending.seq,
                                hops: pending.hops,
                                was_relay: true,
                            }
                        })
                } else {
                    let seq = node_state.seq;
                    node_state.seq += 1;
                    node_state.remember((index as u32, seq));
                    Some(Classified {
                        origin: index as u32,
                        seq,
                        hops: 0,
                        was_relay: false,
                    })
                }
            });
            let Some(classified) = classified else {
                debug_assert!(false, "relayed packet without a pending record");
                continue;
            };
            if classified.was_relay {
                state.relays_on_air += 1;
            }
            window_txs.push(MeshTx {
                node: index,
                start,
                end: packet.time,
                bytes: packet.bytes,
                origin: classified.origin,
                seq: classified.seq,
                hops: classified.hops,
            });
        }
    }

    // Per-receiver reception: interference context is this window plus
    // the previous one (transmissions are far shorter than a window, so
    // only boundary-straddlers can interfere across the boundary).
    let latency = SimDuration::from_seconds(config.detector.latency());
    for receiver in 0..config.nodes {
        let receiver_alive = slots.get(receiver).is_some_and(|slot| lock(slot).alive);
        if !receiver_alive {
            continue;
        }
        // Interference slots at this receiver, with back-pointers into
        // `window_txs` for the current window's entries.
        let mut heard: Vec<(AirSlot, Option<usize>)> = Vec::new();
        let context = prev_txs
            .iter()
            .map(|t| (None, t))
            .chain(window_txs.iter().enumerate().map(|(i, t)| (Some(i), t)));
        for (tx_index, tx) in context {
            if let Some(level) = geometry.between(tx.node, receiver) {
                heard.push((
                    AirSlot {
                        node: tx.node,
                        start: tx.start,
                        end: tx.end,
                        rx_dbm: level,
                    },
                    tx_index,
                ));
            }
        }
        heard.sort_by_key(|(slot, _)| (slot.start, slot.node));
        let air: Vec<AirSlot> = heard.iter().map(|(slot, _)| *slot).collect();
        let collided = capture_sweep(&air, config.capture_margin);
        // The receiver's own airtime, for the half-duplex veto.
        let own: Vec<(SimTime, SimTime)> = prev_txs
            .iter()
            .chain(window_txs.iter())
            .filter(|t| t.node == receiver)
            .map(|t| (t.start, t.end))
            .collect();

        for ((slot, tx_index), was_collided) in heard.iter().zip(&collided) {
            let Some(tx_index) = tx_index else {
                continue; // previous window: interference context only
            };
            let Some(tx) = window_txs.get(*tx_index) else {
                continue;
            };
            if !config.detector.detects(slot.rx_dbm) {
                continue;
            }
            if *was_collided {
                state.rx_collisions += 1;
                state.telemetry.metrics.inc(keys::MESH_RX_COLLIDED, 1);
                continue;
            }
            if own.iter().any(|&(s, e)| tx.start < e && s < tx.end) {
                // Half-duplex: the receiver was transmitting itself.
                state.telemetry.metrics.inc(keys::MESH_RX_HALF_DUPLEX, 1);
                continue;
            }
            state.receptions += 1;
            state.telemetry.metrics.inc(keys::MESH_RX_DETECTED, 1);
            let detect_at = tx.end + latency;
            if state.telemetry.events_enabled() {
                state.telemetry.record_for(
                    receiver as u32,
                    detect_at.as_nanos(),
                    EventKind::Rx {
                        from: tx.node as u32,
                        hops: tx.hops,
                        level_dbm: slot.rx_dbm.value(),
                    },
                );
            }
            let fresh = match state.nodes.get_mut(receiver) {
                Some(node_state) => node_state.remember((tx.origin, tx.seq)),
                None => continue,
            };
            if !fresh {
                state.duplicates += 1;
                state.telemetry.metrics.inc(keys::MESH_RX_DUPLICATES, 1);
                continue;
            }
            if tx.hops + 1 > config.max_hops {
                state.telemetry.metrics.inc(keys::MESH_RELAY_HOP_LIMITED, 1);
                continue;
            }
            let relay_at = tx.end + config.turnaround;
            if let Some(node_state) = state.nodes.get_mut(receiver) {
                node_state.pending.push(PendingRelay {
                    bytes: tx.bytes.clone(),
                    origin: tx.origin,
                    seq: tx.seq,
                    hops: tx.hops + 1,
                });
            }
            state.relays_injected += 1;
            state.telemetry.metrics.inc(keys::MESH_RELAY_INJECTED, 1);
            if state.telemetry.events_enabled() {
                state.telemetry.record_for(
                    receiver as u32,
                    relay_at.as_nanos(),
                    EventKind::Relay {
                        origin: tx.origin,
                        hops: tx.hops + 1,
                    },
                );
            }
            if let Some(slot) = slots.get(receiver) {
                lock(slot).injections.push((relay_at, tx.bytes.clone()));
            }
        }
    }
    state.all_txs.extend(window_txs.iter().cloned());
    window_txs
}

/// Runs the mesh scenario with the default (event-free) recorder.
///
/// # Errors
///
/// Returns [`MeshConfigError`] on a degenerate configuration or a base
/// config that fails its probe build.
pub fn run_mesh(config: &MeshConfig) -> Result<MeshOutcome, MeshConfigError> {
    run_mesh_with(config, &mut NullRecorder).map(|(outcome, _)| outcome)
}

/// Runs the mesh scenario, streaming telemetry into `recorder` and
/// returning the merged metric registry alongside the outcome.
///
/// The event stream is framed like the fleet's: `phase_start`/`phase_end`
/// for `"simulate"` (node events plus the engine's `rx`/`relay`/
/// `false_wake` events, canonically `(t_ns, node)`-interleaved), then for
/// `"sink"` (per-copy [`EventKind::PacketFate`] in `(start, node)`
/// order). Stream and metrics are bit-identical across [`Parallelism`]
/// modes.
///
/// # Errors
///
/// Returns [`MeshConfigError`] on a degenerate configuration or a base
/// config that fails its probe build.
pub fn run_mesh_with(
    config: &MeshConfig,
    recorder: &mut dyn Recorder,
) -> Result<(MeshOutcome, Metrics), MeshConfigError> {
    config.validate()?;
    let record_events = recorder.wants_events();
    // Probe-build node 0 before any worker threads exist, so an invalid
    // base fails here with a typed error instead of inside a shard.
    build_mesh_node(config, 0, record_events).map_err(MeshConfigError::BaseConfig)?;

    let duration_ns = config.duration.as_nanos();
    let mut engine = TelemetryBuffer::with_events(record_events);
    engine.record(
        0,
        EventKind::PhaseStart {
            phase: "simulate".into(),
        },
    );

    let mut state = EngineState {
        nodes: (0..config.nodes).map(|_| NodeState::default()).collect(),
        all_txs: Vec::new(),
        prev_txs: Vec::new(),
        telemetry: TelemetryBuffer::with_events(record_events),
        receptions: 0,
        duplicates: 0,
        rx_collisions: 0,
        relays_injected: 0,
        relays_on_air: 0,
    };

    // Noise-triggered wakes, from each node's reserved stream: real
    // detectors pay their `false_rate` whether or not a frame is on the
    // air. Surfaced as counted (and recorded) events.
    let mut false_wakes = 0usize;
    for index in 0..config.nodes {
        for at in false_wake_times(config, index) {
            false_wakes += 1;
            state.telemetry.metrics.inc(keys::MESH_FALSE_WAKES, 1);
            if record_events {
                state
                    .telemetry
                    .record_for(index as u32, at.as_nanos(), EventKind::FalseWake);
            }
        }
    }

    let (faulted, node_buffers) = run_windows(config, record_events, &mut state);

    // Deterministic merge: node buffers in node order, then the engine's
    // own rx/relay events, then canonicalize the interleaving.
    let mut shards = TelemetryBuffer::with_events(record_events);
    for buffer in node_buffers {
        shards.absorb(buffer);
    }
    let engine_events = std::mem::take(&mut state.telemetry);
    shards.absorb(engine_events);
    shards.sort_events();
    engine.absorb(shards);
    engine.record(
        duration_ns,
        EventKind::PhaseEnd {
            phase: "simulate".into(),
        },
    );

    engine.record(
        duration_ns,
        EventKind::PhaseStart {
            phase: "sink".into(),
        },
    );
    let outcome = sink_phase(config, &mut state, faulted, false_wakes, &mut engine);
    engine.record(
        duration_ns,
        EventKind::PhaseEnd {
            phase: "sink".into(),
        },
    );

    engine.drain_events_into(recorder);
    Ok((outcome, engine.metrics))
}

/// The window loop: static node shards on `workers` threads, two barriers
/// per window around the single-threaded match phase on worker 0.
///
/// Returns the faulted-node count and each node's drained telemetry, in
/// node order.
fn run_windows(
    config: &MeshConfig,
    record_events: bool,
    state: &mut EngineState,
) -> (usize, Vec<TelemetryBuffer>) {
    let workers = config.parallelism.workers().min(config.nodes).max(1);
    let geometry = Geometry::new(config);
    let slots: Vec<Mutex<WindowSlot>> = (0..config.nodes)
        .map(|_| Mutex::new(WindowSlot::default()))
        .collect();
    let barrier = Barrier::new(workers);

    // Window schedule: equal `turnaround` steps with a short tail.
    let mut steps: Vec<SimDuration> = Vec::new();
    let mut remaining = config.duration;
    while !remaining.is_zero() {
        let step = remaining.min(config.turnaround);
        steps.push(step);
        remaining = remaining - step;
    }

    // Contiguous static shards: `nodes = k * workers + extra` gives the
    // first `extra` workers one node more. (Fleet phase 1 work-steals,
    // but mesh stacks persist across windows and hold `Rc` state, so
    // they stay pinned to the thread that builds them.)
    let per = config.nodes / workers;
    let extra = config.nodes % workers;
    let mut bounds = Vec::with_capacity(workers + 1);
    let mut lo = 0usize;
    bounds.push(lo);
    for t in 0..workers {
        lo += per + usize::from(t < extra);
        bounds.push(lo);
    }

    let state_cell = Mutex::new(state);
    let steps = &steps;
    let slots_ref = &slots;
    let barrier = &barrier;
    let geometry = &geometry;
    let state_cell = &state_cell;
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .windows(2)
            .enumerate()
            .map(|(worker, range)| {
                let (lo, hi) = match *range {
                    [lo, hi] => (lo, hi),
                    _ => (0, 0),
                };
                scope.spawn(move || {
                    // Build this shard's stacks locally: they never leave
                    // this thread. A node whose build fails (cannot
                    // happen after the probe build, but stay total)
                    // counts as faulted from the start.
                    let mut stacks: Vec<Option<Stack>> = (lo..hi)
                        .map(|i| build_mesh_node(config, i, record_events).ok())
                        .collect();
                    for step in steps {
                        // Phase A: advance own nodes one window.
                        for (offset, stack) in stacks.iter_mut().enumerate() {
                            let Some(slot) = slots_ref.get(lo + offset) else {
                                continue;
                            };
                            let mut slot = lock(slot);
                            match stack {
                                Some(node) => {
                                    let before = node.packet_count();
                                    let completed = node.run_for(*step).is_completed();
                                    slot.alive = completed;
                                    slot.faulted |= !completed;
                                    slot.new_packets = node.packets_since(before);
                                }
                                None => {
                                    slot.alive = false;
                                    slot.faulted = true;
                                }
                            }
                        }
                        barrier.wait();
                        // Phase B: worker 0 matches the window while the
                        // others pause at the second barrier.
                        if worker == 0 {
                            let mut engine = lock_state(state_cell);
                            let prev = std::mem::take(&mut engine.prev_txs);
                            let window =
                                match_window(config, geometry, &mut engine, slots_ref, &prev);
                            engine.prev_txs = window;
                        }
                        barrier.wait();
                        // Phase C: owners apply the injections to their
                        // own stacks (worker 0 cannot: stacks are !Send).
                        for (offset, stack) in stacks.iter_mut().enumerate() {
                            let Some(slot) = slots_ref.get(lo + offset) else {
                                continue;
                            };
                            let injections = std::mem::take(&mut lock(slot).injections);
                            if let Some(node) = stack {
                                for (at, bytes) in injections {
                                    node.inject_relay(at, bytes);
                                }
                            }
                        }
                    }
                    // Drain telemetry; reassembled in node order below.
                    for (offset, stack) in stacks.iter_mut().enumerate() {
                        let Some(slot) = slots_ref.get(lo + offset) else {
                            continue;
                        };
                        if let Some(node) = stack {
                            let mut telemetry = node.drain_telemetry();
                            telemetry.attribute_to((lo + offset) as u32);
                            lock(slot).telemetry = Some(telemetry);
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    let mut faulted = 0usize;
    let mut buffers = Vec::with_capacity(config.nodes);
    for slot in &slots {
        let mut slot = lock(slot);
        faulted += usize::from(slot.faulted);
        buffers.push(slot.telemetry.take().unwrap_or_default());
    }
    (faulted, buffers)
}

/// Locks the engine-state cell. Worker 0 is its only contender (the
/// barriers exclude everyone else during the match phase); the mutex
/// exists to move the `&mut` into the scope soundly.
fn lock_state<'a, 'b>(cell: &'a Mutex<&'b mut EngineState>) -> MutexGuard<'a, &'b mut EngineState> {
    match cell.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The sink phase: every transmission (originals and relayed copies)
/// faces the sink's collision/capture sweep and channel trials, exactly
/// like the fleet merge but with line-geometry receive levels and the
/// reserved [`SINK_STREAM`].
fn sink_phase(
    config: &MeshConfig,
    state: &mut EngineState,
    faulted: usize,
    false_wakes: usize,
    engine: &mut TelemetryBuffer,
) -> MeshOutcome {
    let geometry = Geometry::new(config);
    let mut txs = std::mem::take(&mut state.all_txs);
    txs.sort_by_key(|t| (t.start, t.node));
    let slots: Vec<AirSlot> = txs
        .iter()
        .map(|t| AirSlot {
            node: t.node,
            start: t.start,
            end: t.end,
            rx_dbm: geometry
                .sink_level
                .get(t.node)
                .copied()
                .unwrap_or(Dbm::new(-200.0)),
        })
        .collect();
    let collided_flags = capture_sweep(&slots, config.capture_margin);

    let receiver = SuperRegenReceiver::bwrc_issc05();
    let mut rng = SimRng::stream(config.seed, SINK_STREAM);
    let mut delivered = 0usize;
    let mut collided = 0usize;
    let mut channel_losses = 0usize;
    let mut per_node = vec![NodeCounts::default(); config.nodes];
    let mut delivered_by_hop = vec![0usize; config.max_hops as usize + 1];
    let mut delivered_keys: Vec<(u32, u32)> = Vec::new();

    engine
        .metrics
        .register_histogram(keys::MESH_SINK_RX_DBM, &RX_DBM_BOUNDS);
    engine
        .metrics
        .register_histogram(keys::MESH_DELIVERED_HOPS, &HOP_BOUNDS);

    for ((tx, slot), was_collided) in txs.iter().zip(&slots).zip(&collided_flags) {
        if let Some(counts) = per_node.get_mut(tx.node) {
            counts.offered += 1;
        }
        engine
            .metrics
            .observe(keys::MESH_SINK_RX_DBM, slot.rx_dbm.value());
        let fate = if *was_collided {
            collided += 1;
            "collided"
        } else {
            let ber = receiver.ber(slot.rx_dbm);
            let bits = tx.bytes.len() * 8;
            // Consume one Bernoulli per bit unconditionally so the trial
            // count (and thus the stream position) is data-independent.
            let flips = (0..bits).filter(|_| rng.bernoulli(ber)).count();
            if flips == 0 && packet::decode(&tx.bytes, Checksum::Xor).is_ok() {
                delivered += 1;
                if let Some(counts) = per_node.get_mut(tx.node) {
                    counts.delivered += 1;
                }
                if let Some(bucket) = delivered_by_hop.get_mut(tx.hops as usize) {
                    *bucket += 1;
                }
                engine
                    .metrics
                    .observe(keys::MESH_DELIVERED_HOPS, f64::from(tx.hops));
                let key = (tx.origin, tx.seq);
                if let Err(pos) = delivered_keys.binary_search(&key) {
                    delivered_keys.insert(pos, key);
                }
                "delivered"
            } else {
                channel_losses += 1;
                "channel_loss"
            }
        };
        if engine.events_enabled() {
            engine.record_for(
                tx.node as u32,
                tx.end.as_nanos(),
                EventKind::PacketFate { fate },
            );
        }
    }

    let elapsed = config.duration.as_seconds().value();
    let airtime: f64 = txs
        .iter()
        .map(|t| t.end.duration_since(t.start).as_seconds().value())
        .sum();
    let offered_load = if elapsed > 0.0 {
        airtime / elapsed
    } else {
        0.0
    };

    let unique_offered: usize = state.nodes.iter().map(|n| n.seq as usize).sum();
    let dropped: usize = state.nodes.iter().map(|n| n.pending.len()).sum();
    engine.metrics.inc(keys::MESH_OFFERED, txs.len() as u64);
    engine.metrics.inc(keys::MESH_COLLIDED, collided as u64);
    engine
        .metrics
        .inc(keys::MESH_CHANNEL_LOSSES, channel_losses as u64);
    engine.metrics.inc(keys::MESH_DELIVERED, delivered as u64);
    engine
        .metrics
        .inc(keys::MESH_UNIQUE_OFFERED, unique_offered as u64);
    engine
        .metrics
        .inc(keys::MESH_UNIQUE_DELIVERED, delivered_keys.len() as u64);
    engine
        .metrics
        .inc(keys::MESH_RELAY_ON_AIR, state.relays_on_air as u64);
    engine.metrics.inc(keys::MESH_RELAY_DROPPED, dropped as u64);
    engine.metrics.inc(keys::MESH_FAULTED_NODES, faulted as u64);
    engine.metrics.add(keys::MESH_OFFERED_LOAD, offered_load);

    MeshOutcome {
        sink: FleetOutcome {
            offered: txs.len(),
            collided,
            channel_losses,
            delivered,
            faulted,
            per_node_delivery: per_node.iter().map(NodeCounts::delivery_ratio).collect(),
            offered_load,
        },
        unique_offered,
        unique_delivered: delivered_keys.len(),
        delivered_by_hop,
        relays: state.relays_on_air,
        relays_injected: state.relays_injected,
        receptions: state.receptions,
        duplicates: state.duplicates,
        rx_collisions: state.rx_collisions,
        false_wakes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(nodes: usize) -> MeshConfig {
        MeshConfig {
            nodes,
            duration: SimDuration::from_secs(30),
            ..MeshConfig::default()
        }
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = tiny_config(3);
        assert_eq!(ok.validate(), Ok(()));
        let mut bad = ok.clone();
        bad.nodes = 0;
        assert_eq!(bad.validate(), Err(MeshConfigError::ZeroNodes));
        let mut bad = ok.clone();
        bad.duration = SimDuration::ZERO;
        assert_eq!(bad.validate(), Err(MeshConfigError::NonPositiveDuration));
        let mut bad = ok.clone();
        bad.parallelism = Parallelism::Threads(0);
        assert_eq!(bad.validate(), Err(MeshConfigError::ZeroThreads));
        let mut bad = ok.clone();
        bad.spacing_m = 0.0;
        assert_eq!(bad.validate(), Err(MeshConfigError::InvalidGeometry));
        let mut bad = ok.clone();
        bad.turnaround = SimDuration::from_micros(100); // < 300 µs latency
        assert_eq!(bad.validate(), Err(MeshConfigError::InvalidTurnaround));
        let mut bad = ok;
        bad.max_hops = 0;
        assert_eq!(bad.validate(), Err(MeshConfigError::ZeroMaxHops));
    }

    #[test]
    fn single_node_mesh_degenerates_to_direct_delivery() {
        let outcome = run_mesh(&tiny_config(1)).expect("mesh runs");
        // Nobody to relay: everything on the air is an original.
        assert_eq!(outcome.relays, 0);
        assert_eq!(outcome.receptions, 0);
        assert_eq!(outcome.sink.offered, outcome.unique_offered);
        assert!(outcome.sink.offered > 0, "node never transmitted");
        // 2 m from the sink: deliveries should dominate.
        assert!(outcome.sink.delivered > 0);
    }

    #[test]
    fn adjacent_nodes_relay_for_each_other() {
        let outcome = run_mesh(&tiny_config(4)).expect("mesh runs");
        assert!(
            outcome.receptions > 0,
            "adjacent nodes at 2 m should detect each other"
        );
        assert!(outcome.relays > 0, "detections should trigger rebroadcasts");
        assert!(
            outcome.sink.offered > outcome.unique_offered,
            "relayed copies should add to the offered count"
        );
        // Conservation: every rebroadcast on the air was first injected.
        assert!(outcome.relays <= outcome.relays_injected);
        // Dedup keeps flooding finite: each node relays a packet at most
        // once, so copies per unique packet are bounded by the fleet size.
        assert!(outcome.sink.offered <= outcome.unique_offered * (4 + 1));
    }

    #[test]
    fn hop_limit_caps_flooding_depth() {
        let mut config = tiny_config(5);
        config.max_hops = 1;
        let outcome = run_mesh(&config).expect("mesh runs");
        for (hops, &count) in outcome.delivered_by_hop.iter().enumerate() {
            if hops > 1 {
                assert_eq!(count, 0, "a copy travelled {hops} hops past the limit");
            }
        }
    }

    #[test]
    fn serial_and_threaded_runs_are_bit_identical() {
        let serial = run_mesh(&tiny_config(5)).expect("serial mesh runs");
        for workers in [2usize, 3, 5, 8] {
            let mut config = tiny_config(5);
            config.parallelism = Parallelism::Threads(workers);
            let threaded = run_mesh(&config).expect("threaded mesh runs");
            assert_eq!(serial, threaded, "{workers} workers diverged from serial");
        }
    }

    #[test]
    fn distant_fleet_needs_multiple_hops() {
        // Stretch the line so far nodes are out of the sink's direct
        // reach: their packets arrive only as relayed copies.
        let mut config = tiny_config(8);
        config.spacing_m = 2.5;
        config.duration = SimDuration::from_secs(60);
        let outcome = run_mesh(&config).expect("mesh runs");
        let multi_hop: usize = outcome.delivered_by_hop.iter().skip(1).sum();
        assert!(
            multi_hop > 0,
            "no multi-hop deliveries: {:?}",
            outcome.delivered_by_hop
        );
    }
}
