//! The power-switch board: the power train (COTS chain or §7.1 IC) plus
//! the load switches that gate every rail (§4.3).

use super::{Board, NodeFault};
use crate::node::PowerChainKind;
use picocube_power::converter_ic::PowerInterfaceIc;
use picocube_power::cots::CotsPowerChain;
use picocube_units::{Amps, Celsius, Volts, Watts};

enum Chain {
    Cots(Box<CotsPowerChain>),
    Ic(Box<PowerInterfaceIc>),
}

/// Battery-side currents solved for one load point: what each registered
/// ledger load should carry, plus the VDD the chain delivers there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RailSolve {
    /// Chain quiescent/standby current, including open-switch leakage.
    pub overhead: Amps,
    /// The always-on VDD rail demand reflected to the battery side.
    pub vdd_reflected: Amps,
    /// The radio digital rail demand reflected to the battery side.
    pub digital: Amps,
    /// The RF rail demand at the battery.
    pub rf: Amps,
    /// The VDD delivered at this operating point.
    pub vdd_out: Volts,
}

/// The switch board: routes battery power to the other boards through the
/// selected power train, and models the gating the board exists for.
pub struct SwitchBoard {
    chain: Chain,
    ungated_rf_ldo: bool,
}

impl core::fmt::Debug for SwitchBoard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SwitchBoard")
            .field(
                "chain",
                &match self.chain {
                    Chain::Cots(_) => "Cots",
                    Chain::Ic(_) => "Ic",
                },
            )
            .field("ungated_rf_ldo", &self.ungated_rf_ldo)
            .finish()
    }
}

impl SwitchBoard {
    pub(super) fn new(kind: PowerChainKind, ungated_rf_ldo: bool) -> Self {
        let chain = match kind {
            PowerChainKind::Cots => Chain::Cots(Box::new(CotsPowerChain::paper())),
            PowerChainKind::IntegratedIc => Chain::Ic(Box::new(PowerInterfaceIc::paper())),
        };
        Self {
            chain,
            ungated_rf_ldo,
        }
    }

    /// Routes harvested power through the chain's rectifier; an interval
    /// whose operating point does not solve delivers nothing.
    pub(super) fn harvest(&self, raw: Watts, vbat: Volts) -> Watts {
        match &self.chain {
            Chain::Cots(c) => c.harvest(raw, vbat).unwrap_or(Watts::ZERO),
            Chain::Ic(ic) => ic.harvest(raw, vbat).unwrap_or(Watts::ZERO),
        }
    }

    /// Solves the battery-side currents for the present load point: `i_vdd`
    /// on the always-on rail, `i_rf` demanded by the PA, with the SPI and
    /// PA switch states selecting which converters are live.
    ///
    /// # Errors
    ///
    /// Returns [`NodeFault::PowerChain`] when a converter's operating point
    /// fails to solve — the electrical model was driven outside its domain.
    pub(super) fn rails(
        &self,
        vbat: Volts,
        i_vdd: Amps,
        spi_on: bool,
        pa_on: bool,
        i_rf: Amps,
    ) -> Result<RailSolve, NodeFault> {
        match &self.chain {
            Chain::Cots(chain) => {
                let base = chain
                    .supply_mcu(vbat, i_vdd)
                    .map_err(|_| NodeFault::PowerChain {
                        rail: "pump operating point",
                    })?;
                let vdd_out = base.vout;
                let quiescent = base.iin - Amps::new(chain.pump().gain() * i_vdd.value());
                // Radio digital rail: GPIO at VDD through the shunt, which
                // reflects through the pump.
                let digital = if spi_on {
                    let shunt_op = chain
                        .supply_radio_digital(vdd_out, Amps::from_micro(300.0))
                        .map_err(|_| NodeFault::PowerChain {
                            rail: "shunt operating point",
                        })?;
                    Amps::new(chain.pump().gain() * shunt_op.iin.value())
                } else {
                    Amps::ZERO
                };
                let rf = if pa_on {
                    chain
                        .supply_radio_rf(vbat, i_rf)
                        .map_err(|_| NodeFault::PowerChain {
                            rail: "rf rail operating point",
                        })?
                        .iin
                } else if self.ungated_rf_ldo {
                    // Ablation: the LT3020's ground current burns even with
                    // the radio idle — the loss the switch board exists to
                    // eliminate.
                    Amps::from_micro(120.0)
                } else {
                    Amps::ZERO
                };
                let leakage = Amps::from_nano(30.0); // three open load switches
                Ok(RailSolve {
                    overhead: quiescent + leakage,
                    vdd_reflected: Amps::new(chain.pump().gain() * i_vdd.value()),
                    digital,
                    rf,
                    vdd_out,
                })
            }
            Chain::Ic(ic) => {
                let standby = ic.standby_current(Celsius::new(25.0), vbat);
                let op = ic
                    .supply_mcu(vbat, i_vdd)
                    .map_err(|_| NodeFault::PowerChain {
                        rail: "1:2 converter operating point",
                    })?;
                let vdd_out = op.vout;
                let digital = if spi_on {
                    // The shunt still hangs off a GPIO; its draw reflects
                    // through the 1:2 converter at roughly 2×.
                    let gpio = (vdd_out - Volts::new(1.0)) / picocube_units::Ohms::new(2_200.0);
                    Amps::new(2.0 * gpio.value())
                } else {
                    Amps::ZERO
                };
                let rf = if pa_on {
                    ic.supply_radio(vbat, i_rf)
                        .map_err(|_| NodeFault::PowerChain {
                            rail: "3:2 converter operating point",
                        })?
                        .battery_current()
                } else {
                    Amps::ZERO
                };
                Ok(RailSolve {
                    overhead: standby,
                    vdd_reflected: op.iin,
                    digital,
                    rf,
                    vdd_out,
                })
            }
        }
    }
}

impl Board for SwitchBoard {
    fn name(&self) -> &'static str {
        "switch"
    }
}
