//! The power-switch board: the power train (COTS chain or §7.1 IC) plus
//! the load switches that gate every rail (§4.3).

use super::{Board, NodeFault};
use crate::node::PowerChainKind;
use picocube_power::converter_ic::PowerInterfaceIc;
use picocube_power::cots::CotsPowerChain;
use picocube_telemetry::{keys, Metrics};
use picocube_units::{Amps, Celsius, Volts, Watts};

enum Chain {
    Cots(Box<CotsPowerChain>),
    Ic(Box<PowerInterfaceIc>),
}

/// Battery-side currents solved for one load point: what each registered
/// ledger load should carry, plus the VDD the chain delivers there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RailSolve {
    /// Chain quiescent/standby current, including open-switch leakage.
    pub overhead: Amps,
    /// The always-on VDD rail demand reflected to the battery side.
    pub vdd_reflected: Amps,
    /// The radio digital rail demand reflected to the battery side.
    pub digital: Amps,
    /// The RF rail demand at the battery.
    pub rf: Amps,
    /// The VDD delivered at this operating point.
    pub vdd_out: Volts,
}

/// Exact-bit key identifying one rail operating point: the raw IEEE bits
/// of the electrical inputs plus the switch states. Two calls with equal
/// keys present byte-identical inputs to the (pure) solvers, so replaying
/// a cached [`RailSolve`] is bit-invisible. The "vbat bucket" is the
/// identity bucket — no quantization, no tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OpKey {
    vbat: u64,
    i_vdd: u64,
    i_rf: u64,
    spi_on: bool,
    pa_on: bool,
}

/// Memo-cache capacity. A node cycles through a handful of operating
/// points per wake (sleep, active, SPI burst, PA window), all at one
/// settled VBAT; 32 covers several wakes of drift with room to spare.
const OP_CACHE_CAP: usize = 32;

/// The switch board: routes battery power to the other boards through the
/// selected power train, and models the gating the board exists for.
pub struct SwitchBoard {
    chain: Chain,
    ungated_rf_ldo: bool,
    /// Solved operating points, most-recently-used first. A plain `Vec`
    /// scanned linearly: the hit is almost always at the front, eviction
    /// order is fixed (truncate the tail), and lint L3 keeps `HashMap`
    /// out of the deterministic core anyway.
    op_cache: Vec<(OpKey, RailSolve)>,
    op_cache_hits: u64,
    op_cache_misses: u64,
}

impl core::fmt::Debug for SwitchBoard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SwitchBoard")
            .field(
                "chain",
                &match self.chain {
                    Chain::Cots(_) => "Cots",
                    Chain::Ic(_) => "Ic",
                },
            )
            .field("ungated_rf_ldo", &self.ungated_rf_ldo)
            .finish_non_exhaustive()
    }
}

impl SwitchBoard {
    pub(super) fn new(kind: PowerChainKind, ungated_rf_ldo: bool) -> Self {
        let chain = match kind {
            PowerChainKind::Cots => Chain::Cots(Box::new(CotsPowerChain::paper())),
            PowerChainKind::IntegratedIc => Chain::Ic(Box::new(PowerInterfaceIc::paper())),
        };
        Self {
            chain,
            ungated_rf_ldo,
            op_cache: Vec::with_capacity(OP_CACHE_CAP),
            op_cache_hits: 0,
            op_cache_misses: 0,
        }
    }

    /// Routes harvested power through the chain's rectifier; an interval
    /// whose operating point does not solve delivers nothing.
    pub(super) fn harvest(&self, raw: Watts, vbat: Volts) -> Watts {
        match &self.chain {
            Chain::Cots(c) => c.harvest(raw, vbat).unwrap_or(Watts::ZERO),
            Chain::Ic(ic) => ic.harvest(raw, vbat).unwrap_or(Watts::ZERO),
        }
    }

    /// Solves the battery-side currents for the present load point: `i_vdd`
    /// on the always-on rail, `i_rf` demanded by the PA, with the SPI and
    /// PA switch states selecting which converters are live.
    ///
    /// Memoized: a previously solved operating point (exact-bit [`OpKey`])
    /// replays its [`RailSolve`] without re-running the converter models —
    /// the IC chain's log-space bisection runs once per *distinct* point
    /// instead of once per transition. Failed solves are not cached, so a
    /// fault reproduces on every attempt.
    ///
    /// # Errors
    ///
    /// Returns [`NodeFault::PowerChain`] when a converter's operating point
    /// fails to solve — the electrical model was driven outside its domain.
    pub(super) fn rails(
        &mut self,
        vbat: Volts,
        i_vdd: Amps,
        spi_on: bool,
        pa_on: bool,
        i_rf: Amps,
    ) -> Result<RailSolve, NodeFault> {
        let key = OpKey {
            vbat: vbat.value().to_bits(),
            i_vdd: i_vdd.value().to_bits(),
            i_rf: i_rf.value().to_bits(),
            spi_on,
            pa_on,
        };
        if let Some(pos) = self.op_cache.iter().position(|(k, _)| *k == key) {
            self.op_cache_hits += 1;
            // Move-to-front keeps the scan short and the eviction order a
            // pure function of the node's own (deterministic) call history.
            let hit = self.op_cache.remove(pos);
            let solve = hit.1;
            self.op_cache.insert(0, hit);
            return Ok(solve);
        }
        let solve = self.solve_rails(vbat, i_vdd, spi_on, pa_on, i_rf)?;
        self.op_cache_misses += 1;
        self.op_cache.insert(0, (key, solve));
        self.op_cache.truncate(OP_CACHE_CAP);
        Ok(solve)
    }

    /// The uncached solver behind [`SwitchBoard::rails`].
    fn solve_rails(
        &self,
        vbat: Volts,
        i_vdd: Amps,
        spi_on: bool,
        pa_on: bool,
        i_rf: Amps,
    ) -> Result<RailSolve, NodeFault> {
        match &self.chain {
            Chain::Cots(chain) => {
                let base = chain
                    .supply_mcu(vbat, i_vdd)
                    .map_err(|_| NodeFault::PowerChain {
                        rail: "pump operating point",
                    })?;
                let vdd_out = base.vout;
                let quiescent = base.iin - Amps::new(chain.pump().gain() * i_vdd.value());
                // Radio digital rail: GPIO at VDD through the shunt, which
                // reflects through the pump.
                let digital = if spi_on {
                    let shunt_op = chain
                        .supply_radio_digital(vdd_out, Amps::from_micro(300.0))
                        .map_err(|_| NodeFault::PowerChain {
                            rail: "shunt operating point",
                        })?;
                    Amps::new(chain.pump().gain() * shunt_op.iin.value())
                } else {
                    Amps::ZERO
                };
                let rf = if pa_on {
                    chain
                        .supply_radio_rf(vbat, i_rf)
                        .map_err(|_| NodeFault::PowerChain {
                            rail: "rf rail operating point",
                        })?
                        .iin
                } else if self.ungated_rf_ldo {
                    // Ablation: the LT3020's ground current burns even with
                    // the radio idle — the loss the switch board exists to
                    // eliminate.
                    Amps::from_micro(120.0)
                } else {
                    Amps::ZERO
                };
                let leakage = Amps::from_nano(30.0); // three open load switches
                Ok(RailSolve {
                    overhead: quiescent + leakage,
                    vdd_reflected: Amps::new(chain.pump().gain() * i_vdd.value()),
                    digital,
                    rf,
                    vdd_out,
                })
            }
            Chain::Ic(ic) => {
                let standby = ic.standby_current(Celsius::new(25.0), vbat);
                let op = ic
                    .supply_mcu(vbat, i_vdd)
                    .map_err(|_| NodeFault::PowerChain {
                        rail: "1:2 converter operating point",
                    })?;
                let vdd_out = op.vout;
                let digital = if spi_on {
                    // The shunt still hangs off a GPIO; its draw reflects
                    // through the 1:2 converter at roughly 2×.
                    let gpio = (vdd_out - Volts::new(1.0)) / picocube_units::Ohms::new(2_200.0);
                    Amps::new(2.0 * gpio.value())
                } else {
                    Amps::ZERO
                };
                let rf = if pa_on {
                    ic.supply_radio(vbat, i_rf)
                        .map_err(|_| NodeFault::PowerChain {
                            rail: "3:2 converter operating point",
                        })?
                        .battery_current()
                } else {
                    Amps::ZERO
                };
                Ok(RailSolve {
                    overhead: standby,
                    vdd_reflected: op.iin,
                    digital,
                    rf,
                    vdd_out,
                })
            }
        }
    }
}

impl Board for SwitchBoard {
    fn name(&self) -> &'static str {
        "switch"
    }

    fn export_metrics(&self, metrics: &mut Metrics) {
        metrics.inc(keys::BOARD_SWITCH_OP_CACHE_HITS, self.op_cache_hits);
        metrics.inc(keys::BOARD_SWITCH_OP_CACHE_MISSES, self.op_cache_misses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The discrete load tuples a node cycles through: sleep, active, the
    /// SPI burst, the PA window, and a PA tail with the bus released.
    /// Drawing from a small pool guarantees the randomized sequences
    /// revisit keys, exercising cache hits (including the post-brownout
    /// `force` path, which re-solves an already-seen operating point).
    fn op_point(idx: usize) -> (Amps, bool, bool, Amps) {
        match idx % 5 {
            0 => (Amps::from_micro(0.6), false, false, Amps::ZERO),
            1 => (Amps::from_micro(300.0), false, false, Amps::ZERO),
            2 => (Amps::from_micro(350.0), true, false, Amps::ZERO),
            3 => (Amps::from_micro(350.0), true, true, Amps::from_micro(420.0)),
            _ => (
                Amps::from_micro(300.0),
                false,
                true,
                Amps::from_micro(420.0),
            ),
        }
    }

    fn assert_bit_identical(expected: &RailSolve, actual: &RailSolve) {
        for (e, a, rail) in [
            (
                expected.overhead.value(),
                actual.overhead.value(),
                "overhead",
            ),
            (
                expected.vdd_reflected.value(),
                actual.vdd_reflected.value(),
                "vdd_reflected",
            ),
            (expected.digital.value(), actual.digital.value(), "digital"),
            (expected.rf.value(), actual.rf.value(), "rf"),
            (expected.vdd_out.value(), actual.vdd_out.value(), "vdd_out"),
        ] {
            assert_eq!(
                e.to_bits(),
                a.to_bits(),
                "{rail}: cached {a} != uncached {e}"
            );
        }
    }

    proptest! {
        #[test]
        fn cached_and_uncached_rails_agree_bitwise(
            use_ic in prop::bool::ANY,
            ungated in prop::bool::ANY,
            seq in prop::collection::vec((0usize..5, 0usize..3), 1..120),
        ) {
            let kind = if use_ic {
                PowerChainKind::IntegratedIc
            } else {
                PowerChainKind::Cots
            };
            let mut board = SwitchBoard::new(kind, ungated);
            // Three settled VBAT levels: within one wake the battery does
            // not move, so real call streams repeat exact vbat bits too.
            let vbats = [Volts::new(1.18), Volts::new(1.25), Volts::new(1.32)];
            for &(op_idx, vbat_idx) in &seq {
                let (i_vdd, spi_on, pa_on, i_rf) = op_point(op_idx);
                let vbat = vbats[vbat_idx];
                let expected = board.solve_rails(vbat, i_vdd, spi_on, pa_on, i_rf);
                let actual = board.rails(vbat, i_vdd, spi_on, pa_on, i_rf);
                match (expected, actual) {
                    (Ok(e), Ok(a)) => assert_bit_identical(&e, &a),
                    (e, a) => prop_assert_eq!(
                        e.is_err(),
                        a.is_err(),
                        "cached and uncached paths disagree on solvability"
                    ),
                }
            }
            // Every call is accounted a hit or a miss, and the cache stays
            // within its fixed bound (deterministic eviction).
            prop_assert_eq!(
                board.op_cache_hits + board.op_cache_misses,
                seq.len() as u64
            );
            prop_assert!(board.op_cache.len() <= OP_CACHE_CAP);
            // Distinct keys are bounded by 5 load tuples x 3 vbats, so any
            // longer sequence must have produced hits.
            if seq.len() > 15 {
                prop_assert!(board.op_cache_hits > 0, "no cache hits in {} calls", seq.len());
            }
        }
    }
}
