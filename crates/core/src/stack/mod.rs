//! The board stack: the five-board PicoCube as composable components.
//!
//! The paper's central contribution is *modularity* — five vertically
//! stacked 1 cm² boards (storage, controller, sensor, switch, radio)
//! joined by elastomeric connectors so boards can be swapped per
//! application (§2, §4–6). This module mirrors that architecture in
//! code: each physical board is a [`Board`] implementation with a
//! uniform interface, and [`Stack`] is the chassis — the emulated MSP430
//! controller plus one shared event scheduler that polls the boards.
//!
//! | Paper board (§2)       | Component                                  |
//! |------------------------|--------------------------------------------|
//! | storage (NiMH + harvester) | [`StorageBoard`]                       |
//! | controller (MSP430)    | [`Stack`]'s MCU + scheduler loop           |
//! | sensor (SP12 / SCA3000)| [`SensorBoard`]                            |
//! | power switch           | [`SwitchBoard`]                            |
//! | radio (FBAR OOK TX)    | [`RadioBoard`]                             |
//!
//! A [`StackBuilder`] assembles a stack from a [`NodeConfig`] plus an
//! application-board selection, replacing the old `tpms`/`motion`/
//! `beacon` constructor triplication; those constructors survive as thin
//! compatibility wrappers and produce bit-identical results (pinned by
//! `tests/stack_compat.rs` against pre-refactor golden traces).
//!
//! Faults (an illegal firmware instruction, a stuck active loop, an
//! unsolvable power-chain operating point) no longer panic: the
//! scheduler latches a [`NodeFault`], [`Stack::run_for`] reports it in
//! its [`RunOutcome`], and the fault rides along in [`NodeReport`] and
//! the fleet outcome.

mod radio;
mod sensor;
mod storage;
mod switch;

pub use radio::RadioBoard;
pub use sensor::SensorBoard;
pub use storage::{StorageBoard, SupervisorVerdict};
pub use switch::{RailSolve, SwitchBoard};

use crate::bus::{pa_enabled, BusMux, BusSensor, RadioFrontend, TransmittedPacket};
use crate::node::{BuildError, NodeConfig, NodeReport};
use picocube_mcu::firmware::{self, PIN_RADIO_SPI};
use picocube_mcu::{Mcu, OperatingMode, SegmentStop};
use picocube_radio::OokTransmitter;
use picocube_sensors::{MotionScenario, Sca3000, Sp12};
use picocube_sim::{
    LoadId, PowerLedger, PowerTrace, RailId, ScalarTrace, SimDuration, SimTime, SleepBatch,
};
use picocube_telemetry::{keys, EventKind, Metrics, TelemetryBuffer};
use picocube_units::{Amps, Celsius, Seconds, Volts, Watts};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Why a running node stopped making progress.
///
/// These were `panic!`s in the pre-stack engine; the scheduler now
/// latches them so a single bad node degrades (and is reported) instead
/// of tearing down a whole fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NodeFault {
    /// The firmware executed an undecodable opcode.
    IllegalInstruction {
        /// The instruction word.
        word: u16,
        /// Program counter at the fault.
        at: u16,
    },
    /// The simulation made no scheduling progress for an implausible
    /// number of active steps (a firmware spin with interrupts off).
    Stuck {
        /// Active steps taken without reaching a sleep state.
        steps: u64,
    },
    /// A power-chain operating point failed to solve for the present
    /// load — the electrical model has been driven outside its domain.
    PowerChain {
        /// Which rail conversion failed to solve.
        rail: &'static str,
    },
    /// The power ledger rejected a rail or load handle — the node's
    /// internal wiring is inconsistent (a stack bug, never a model
    /// outcome). Latching it lets the offending node degrade instead of
    /// panicking a whole fleet run.
    Accounting,
}

impl NodeFault {
    /// Stable wire tag for telemetry and JSON.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::IllegalInstruction { .. } => "illegal_instruction",
            Self::Stuck { .. } => "stuck",
            Self::PowerChain { .. } => "power_chain",
            Self::Accounting => "accounting",
        }
    }
}

impl From<picocube_sim::LedgerError> for NodeFault {
    fn from(_: picocube_sim::LedgerError) -> Self {
        Self::Accounting
    }
}

impl core::fmt::Display for NodeFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::IllegalInstruction { word, at } => {
                write!(f, "firmware fault: opcode {word:#06x} at {at:#06x}")
            }
            Self::Stuck { steps } => {
                write!(
                    f,
                    "node simulation stuck in active state after {steps} steps"
                )
            }
            Self::PowerChain { rail } => {
                write!(f, "{rail} operating point failed to solve")
            }
            Self::Accounting => {
                write!(f, "power ledger rejected a rail or load handle")
            }
        }
    }
}

impl std::error::Error for NodeFault {}

/// What [`Stack::run_for`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The node simulated the full requested span.
    Completed,
    /// The node latched a fault and stopped early; further `run_for`
    /// calls return the same fault without advancing time.
    Faulted(NodeFault),
}

impl RunOutcome {
    /// The fault, if the run ended in one.
    pub fn fault(&self) -> Option<NodeFault> {
        match self {
            Self::Completed => None,
            Self::Faulted(fault) => Some(*fault),
        }
    }

    /// Whether the requested span completed fault-free.
    pub fn is_completed(&self) -> bool {
        matches!(self, Self::Completed)
    }
}

/// Where [`Stack::next_park`] left the node — the scheduler's resumable
/// phase boundary, used by both the single-node loop and the fleet's
/// batched sleep driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Park {
    /// Reached the end of the requested span (or a terminal zero-length
    /// supervisor-hold chunk).
    Done,
    /// Supervisor brown-out hold: wants to advance one supervisor-poll
    /// chunk to `wake` and settle. Divergent state — the fleet driver
    /// keeps held nodes on the exact path.
    Held { wake: SimTime },
    /// Parked in an LPM with nothing pending: wants to sleep toward
    /// `wake` (the event horizon clamped to the run end). The batchable
    /// case.
    Asleep { wake: SimTime },
}

/// A board's standing current demand, split by the rail it loads.
///
/// The scheduler sums these across boards and hands the totals to the
/// [`SwitchBoard`], which reflects them through the power train to
/// battery-side currents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoardDraw {
    /// Current drawn from the pumped always-on VDD rail.
    pub vdd: Amps,
    /// Current demanded from the gated radio RF rail.
    pub rf: Amps,
    /// Standing battery-direct power (e.g. the §7.3 wakeup receiver),
    /// `None` when the board has no battery-direct load fitted.
    pub battery: Option<Watts>,
}

impl BoardDraw {
    /// No demand on any rail.
    pub const ZERO: Self = Self {
        vdd: Amps::ZERO,
        rf: Amps::ZERO,
        battery: None,
    };
}

/// What a board can see and do while handling a scheduler callback.
///
/// Cross-board side effects (battery temperature from the tire
/// environment, the sensor interrupt line into the MCU) are staged here
/// and applied by the scheduler once the callback returns, so boards
/// never hold references into each other.
#[derive(Debug)]
pub struct StackCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The always-on supply voltage currently delivered by the switch
    /// board.
    pub vdd: Volts,
    /// The node's telemetry accumulator.
    pub telemetry: &'a mut TelemetryBuffer,
    /// Lifetime wake (sample-cycle) counter, shared across boards.
    pub wakes: &'a mut u64,
    battery_temperature: Option<Celsius>,
    irq_pulse: bool,
}

impl StackCtx<'_> {
    /// Stages a battery temperature update (the storage cell rides at
    /// tire temperature in the TPMS stack); applied after the callback.
    pub fn set_battery_temperature(&mut self, t: Celsius) {
        self.battery_temperature = Some(t);
    }

    /// Stages a pulse of the sensor interrupt line into the controller;
    /// applied after the callback.
    pub fn pulse_sensor_irq(&mut self) {
        self.irq_pulse = true;
    }
}

/// The uniform interface every stacked board presents to the scheduler.
///
/// All methods default to "nothing to do", so a board implements only
/// the slices of the contract its hardware has: the sensor board
/// schedules events, the radio board watches the bus, the switch board
/// solves rails, the storage board settles charge.
pub trait Board {
    /// Short stable name, used as the board's telemetry scope
    /// (`board.<name>.*`) and in diagnostics.
    fn name(&self) -> &'static str;

    /// When this board next needs the scheduler, if ever.
    fn next_event(&self) -> Option<SimTime> {
        None
    }

    /// Handles the event scheduled for `ctx.now` (the scheduler calls
    /// this once per due event).
    fn fire_event(&mut self, ctx: &mut StackCtx<'_>) {
        let _ = ctx;
    }

    /// The board's standing current demand at the present VDD.
    fn currents(&self, vdd: Volts) -> BoardDraw {
        let _ = vdd;
        BoardDraw::ZERO
    }

    /// Observes one controller step's worth of bus/pin activity (the
    /// radio board detects its PA window closing here).
    fn on_bus(&mut self, p1_before: u8, p1_now: u8, ctx: &mut StackCtx<'_>) {
        let _ = (p1_before, p1_now, ctx);
    }

    /// The supply supervisor restarted the node at `now`; boards
    /// reschedule themselves relative to the reboot.
    fn on_restart(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Publishes the board's lifetime telemetry under its
    /// `board.<name>.*` scope (called from
    /// [`Stack::drain_telemetry`]).
    fn export_metrics(&self, metrics: &mut Metrics) {
        let _ = metrics;
    }
}

/// Which application firmware/sensor-board pairing the builder stacks.
///
/// This is the typed surface the declarative scenario layer lowers onto:
/// one enum value selects the firmware image and the sensor board, and
/// [`StackBuilder::app`] slots it. The former
/// `tpms`/`motion`/`beacon` builder methods remain as deprecated shims.
#[derive(Clone)]
pub enum AppBoard {
    /// SP12 TPMS board with the tire-pressure firmware.
    Tpms,
    /// SCA3000 board with interrupt-driven motion firmware.
    Motion {
        /// The scripted handling pattern driving the accelerometer.
        scenario: MotionScenario,
    },
    /// SCA3000 board with timer-paced beacon firmware.
    Beacon {
        /// The scripted handling pattern driving the accelerometer.
        scenario: MotionScenario,
        /// Seconds between beacons (Timer A pacing, at least 1).
        period_s: u16,
    },
}

impl core::fmt::Debug for AppBoard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Tpms => f.write_str("Tpms"),
            Self::Motion { .. } => f.write_str("Motion"),
            Self::Beacon { period_s, .. } => write!(f, "Beacon({period_s} s)"),
        }
    }
}

/// Assembles a [`Stack`] from a [`NodeConfig`] plus a board selection.
///
/// This replaces the old constructor triplication: all three
/// applications share the same chassis assembly and differ only in the
/// firmware image and the sensor board slotted into the stack.
///
/// # Examples
///
/// ```
/// use picocube_node::{AppBoard, NodeConfig, StackBuilder};
///
/// let node = StackBuilder::new(NodeConfig::default())
///     .app(AppBoard::Tpms)
///     .build()?;
/// assert_eq!(node.brownout_count(), 0);
/// # Ok::<(), picocube_node::BuildError>(())
/// ```
#[derive(Debug)]
pub struct StackBuilder {
    config: NodeConfig,
    app: Option<AppBoard>,
}

impl StackBuilder {
    /// Starts a builder over `config` with no application board chosen.
    pub fn new(config: NodeConfig) -> Self {
        Self { config, app: None }
    }

    /// Slots the given application board (firmware + sensor pairing).
    ///
    /// This is the single entry point the three former per-application
    /// builder methods collapsed into; the `Scenario` spec layer lowers
    /// its `app` field here.
    pub fn app(mut self, app: AppBoard) -> Self {
        self.app = Some(app);
        self
    }

    /// Slots the SP12 TPMS sensor board and its firmware.
    #[deprecated(
        since = "0.2.0",
        note = "use `StackBuilder::app(AppBoard::Tpms)`; this shim will be removed \
                once the scenario layer is the only spec surface"
    )]
    pub fn tpms(self) -> Self {
        self.app(AppBoard::Tpms)
    }

    /// Slots the SCA3000 motion board with interrupt-driven firmware.
    #[deprecated(
        since = "0.2.0",
        note = "use `StackBuilder::app(AppBoard::Motion { scenario })`; this shim \
                will be removed once the scenario layer is the only spec surface"
    )]
    pub fn motion(self, scenario: MotionScenario) -> Self {
        self.app(AppBoard::Motion { scenario })
    }

    /// Slots the SCA3000 board with timer-paced beacon firmware
    /// (`period_s` seconds per beacon).
    #[deprecated(
        since = "0.2.0",
        note = "use `StackBuilder::app(AppBoard::Beacon { scenario, period_s })`; \
                this shim will be removed once the scenario layer is the only spec \
                surface"
    )]
    pub fn beacon(self, scenario: MotionScenario, period_s: u16) -> Self {
        self.app(AppBoard::Beacon { scenario, period_s })
    }

    /// The SCA3000 accelerometer board shared by the motion and beacon
    /// applications: one device model, slotted both as the stack's
    /// sensor board and as the SPI bus endpoint.
    fn sca3000_board(scenario: MotionScenario) -> (SensorBoard, BusSensor) {
        let device = Rc::new(RefCell::new(Sca3000::new()));
        (
            SensorBoard::sca3000(device.clone(), scenario),
            BusSensor::Sca3000(device),
        )
    }

    /// Builds the stack.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] when no application board was selected or
    /// the configuration is invalid.
    pub fn build(self) -> Result<Stack, BuildError> {
        let Self { config, app } = self;
        let Some(app) = app else {
            return Err(BuildError::InvalidConfig(
                "no application board selected (tpms/motion/beacon)",
            ));
        };
        let (image, sensor, bus_sensor) = match app {
            AppBoard::Tpms => {
                let image = match config.alarm_threshold_kpa {
                    Some(kpa) => {
                        if !(0.0..=450.0).contains(&kpa) {
                            return Err(BuildError::InvalidConfig(
                                "alarm threshold outside the SP12's 0-450 kPa range",
                            ));
                        }
                        let code = Sp12::new().encode(picocube_sensors::Sp12Channel::Pressure, kpa);
                        firmware::tpms_alarm_app(config.node_id, code)?
                    }
                    None => firmware::tpms_app(config.node_id)?,
                };
                let mut env =
                    picocube_sensors::TireEnvironment::passenger_car(config.drive_cycle.clone());
                if config.leak_kpa_per_hour > 0.0 {
                    env = env.with_leak(picocube_units::Kilopascals::new(config.leak_kpa_per_hour));
                }
                let mut sp12 = Sp12::new().with_noise(config.seed);
                if let Some(period) = config.sample_period_s {
                    if period <= 0.0 {
                        return Err(BuildError::InvalidConfig("sample period must be positive"));
                    }
                    sp12 = sp12.with_wake_interval(Seconds::new(period));
                }
                let device = Rc::new(RefCell::new(sp12));
                let wake = SimTime::from_seconds(device.borrow().wake_interval())
                    + SimDuration::from_millis(config.first_wake_offset_ms);
                let interval_scale = 1.0 + config.wake_interval_ppm * 1e-6;
                let sensor = SensorBoard::sp12(device.clone(), env, wake, interval_scale);
                (image, sensor, BusSensor::Sp12(device))
            }
            AppBoard::Motion { scenario } => {
                let image = firmware::motion_app(config.node_id)?;
                let (sensor, bus) = Self::sca3000_board(scenario);
                (image, sensor, bus)
            }
            AppBoard::Beacon { scenario, period_s } => {
                if period_s == 0 {
                    return Err(BuildError::InvalidConfig(
                        "beacon period must be at least 1 s",
                    ));
                }
                let image = firmware::beacon_app(config.node_id, period_s)?;
                let (sensor, bus) = Self::sca3000_board(scenario);
                (image, sensor, bus)
            }
        };
        Stack::assemble(config, image, sensor, bus_sensor)
    }
}

/// The assembled node: the controller board (emulated MSP430) plus the
/// four swappable boards, run by one shared event scheduler.
///
/// `PicoCube` is a compatibility alias for this type; the
/// `tpms`/`motion`/`beacon` constructors remain as thin wrappers over
/// [`StackBuilder`].
pub struct Stack {
    mcu: Mcu,
    p1: Rc<Cell<u8>>,
    p2: Rc<Cell<u8>>,
    sensor: SensorBoard,
    radio: RadioBoard,
    switch: SwitchBoard,
    storage: StorageBoard,
    ledger: PowerLedger,
    rail: RailId,
    load_overhead: LoadId,
    load_vdd: LoadId,
    load_digital: LoadId,
    load_rf: LoadId,
    load_wakeup: LoadId,
    trace: PowerTrace,
    soc_trace: ScalarTrace,
    telemetry: TelemetryBuffer,
    slept: SimDuration,
    wakes: u64,
    vdd: Volts,
    last_inputs: (Amps, Amps, bool, bool),
    /// Cached earliest pending board deadline (the event horizon).
    /// `horizon_valid == false` means it must be recomputed from the
    /// boards; boards only reschedule inside `fire_event`/`on_restart`,
    /// so those are the sole invalidation points.
    horizon: Option<SimTime>,
    horizon_valid: bool,
    /// Draw signature of the last active step: `(mode, P1, P2, SPI busy)`.
    /// Every input to the `last_inputs` guard in [`Stack::update_currents`]
    /// is a function of these (plus sensor device state, which only changes
    /// on an SPI completion — a `SPI busy` edge — or in `fire_event`, which
    /// poisons this to `None`). While the signature is unchanged the old
    /// per-step `update_currents` call would have early-returned, so
    /// skipping it is bit-invisible.
    draw_sig: Option<(OperatingMode, u8, u8, bool)>,
    /// Reusable per-instruction cycle-delta buffer for the segmented
    /// active path (scratch; contents never outlive one segment).
    seg_deltas: Vec<u32>,
    fault: Option<NodeFault>,
}

impl core::fmt::Debug for Stack {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PicoCube")
            .field("now", &self.now())
            .field("wakes", &self.wakes)
            .field("soc", &self.storage.soc())
            .field("browned_out", &self.storage.browned_out_at())
            .field("brownout_count", &self.storage.brownout_count())
            .field("fault", &self.fault)
            .finish_non_exhaustive()
    }
}

impl Stack {
    fn assemble(
        config: NodeConfig,
        image: picocube_mcu::Image,
        sensor: SensorBoard,
        bus_sensor: BusSensor,
    ) -> Result<Self, BuildError> {
        if !(0.0..=1.0).contains(&config.initial_soc) {
            return Err(BuildError::InvalidConfig("initial_soc must be in [0, 1]"));
        }
        if config.leak_kpa_per_hour < 0.0 {
            return Err(BuildError::InvalidConfig("leak rate must be non-negative"));
        }
        let mut mcu = Mcu::new();
        mcu.load(&image);
        mcu.reset();

        let p1 = Rc::new(Cell::new(0u8));
        let p2 = Rc::new(Cell::new(0u8));
        let frontend = Rc::new(RefCell::new(RadioFrontend::new(OokTransmitter::picocube())));
        mcu.attach_spi(Box::new(BusMux {
            p1: p1.clone(),
            p2: p2.clone(),
            sensor: bus_sensor,
            radio: frontend.clone(),
        }));

        let cell = storage::StorageCell::for_config(&config)?;

        let switch = SwitchBoard::new(config.power_chain, config.ungated_rf_ldo);
        let storage = StorageBoard::new(cell, storage::harvester_for(&config)?);
        let wakeup = config
            .wakeup_receiver
            .then(picocube_radio::WakeupReceiver::bwrc);
        let radio = RadioBoard::new(frontend, wakeup, p1.clone());

        let mut ledger = PowerLedger::new();
        let rail = ledger.add_rail("VBAT", storage.terminal_voltage());
        let load_overhead = ledger.register_load(rail, "power chain overhead")?;
        let load_vdd = ledger.register_load(rail, "mcu+sensor (via pump)")?;
        let load_digital = ledger.register_load(rail, "radio digital (via pump)")?;
        let load_rf = ledger.register_load(rail, "radio RF rail")?;
        let load_wakeup = ledger.register_load(rail, "wakeup receiver")?;

        let mut node = Self {
            mcu,
            p1,
            p2,
            sensor,
            radio,
            switch,
            storage,
            ledger,
            rail,
            load_overhead,
            load_vdd,
            load_digital,
            load_rf,
            load_wakeup,
            trace: PowerTrace::new("node_power_w"),
            soc_trace: ScalarTrace::new("battery_soc"),
            telemetry: TelemetryBuffer::new(),
            slept: SimDuration::ZERO,
            wakes: 0,
            vdd: Volts::new(2.4),
            last_inputs: (Amps::new(-1.0), Amps::new(-1.0), false, false),
            horizon: None,
            horizon_valid: false,
            draw_sig: None,
            seg_deltas: Vec::new(),
            fault: None,
        };
        node.soc_trace.record(SimTime::ZERO, node.storage.soc());
        node.update_currents(true).map_err(BuildError::PowerChain)?;
        Ok(node)
    }

    /// Current simulation time (derived from the MCU's cycle counter at
    /// 1 µs per MCLK cycle).
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.mcu.cycles())
    }

    /// The battery-side power trace (the Fig. 6 instrument).
    pub fn power_trace(&self) -> &PowerTrace {
        &self.trace
    }

    /// Turns structured event recording on or off (metrics counters are
    /// always maintained). Off by default: the hot path then pays one
    /// branch per potential event.
    pub fn set_event_recording(&mut self, enabled: bool) {
        self.telemetry.set_events_enabled(enabled);
    }

    /// Live view of the node's telemetry (counters accumulated so far and
    /// any buffered events).
    pub fn telemetry(&self) -> &TelemetryBuffer {
        &self.telemetry
    }

    /// Finalizes and takes the node's telemetry: the buffered events plus
    /// the metric registry, extended with the run's sleep/active residency
    /// (`mcu.lpm_ns` / `mcu.active_ns`), the ledger's per-rail, per-load
    /// energy export, and each board's `board.<name>.*` scope.
    ///
    /// Intended to be called once at the end of a run; the node keeps
    /// recording into a fresh buffer afterwards, but residency and energy
    /// totals restart from zero only for events — the power ledger and
    /// board counters keep integrating, so a second drain would re-export
    /// their lifetime totals.
    pub fn drain_telemetry(&mut self) -> TelemetryBuffer {
        let enabled = self.telemetry.events_enabled();
        let mut buf = std::mem::take(&mut self.telemetry);
        self.telemetry.set_events_enabled(enabled);
        let lpm_ns = self.slept.as_nanos();
        buf.metrics.inc(keys::MCU_LPM_NS, lpm_ns);
        buf.metrics.inc(
            keys::MCU_ACTIVE_NS,
            self.now().as_nanos().saturating_sub(lpm_ns),
        );
        self.ledger.export_metrics(&mut buf.metrics);
        for board in self.boards() {
            board.export_metrics(&mut buf.metrics);
        }
        buf
    }

    /// Battery state-of-charge trace over the run.
    pub fn soc_trace(&self) -> &ScalarTrace {
        &self.soc_trace
    }

    /// Packets transmitted so far.
    pub fn packets(&self) -> Vec<TransmittedPacket> {
        self.radio.packets()
    }

    /// How many packets have been transmitted so far — a cursor for
    /// [`packets_since`](Self::packets_since).
    pub fn packet_count(&self) -> usize {
        self.radio.packet_count()
    }

    /// Packets transmitted at or after cursor `from` (a prior
    /// [`packet_count`](Self::packet_count) observation), so windowed
    /// consumers like the mesh engine collect only the new tail.
    pub fn packets_since(&self, from: usize) -> Vec<TransmittedPacket> {
        self.radio.packets_since(from)
    }

    /// The fitted wakeup receiver, if any (the `wakeup_receiver` config
    /// option or a [`fit_mesh_rx`](Self::fit_mesh_rx) detector).
    pub fn wakeup_receiver(&self) -> Option<&picocube_radio::WakeupReceiver> {
        self.radio.wakeup()
    }

    /// Fits the mesh receive path: installs `detector` as the always-on
    /// wakeup receiver and arms the radio board's relay queue. Call
    /// before running — the detector's standing listen draw starts
    /// immediately, which is why this re-solves the rails.
    ///
    /// # Errors
    ///
    /// Returns the fault if the added listen draw drives the power chain
    /// outside its solvable domain.
    pub fn fit_mesh_rx(
        &mut self,
        detector: picocube_radio::WakeupReceiver,
    ) -> Result<(), NodeFault> {
        self.radio.fit_rx(detector);
        self.horizon_valid = false;
        self.draw_sig = None;
        self.last_inputs = (Amps::new(-1.0), Amps::new(-1.0), false, false);
        self.update_currents(true)
    }

    /// Schedules a rebroadcast of `bytes` at `at` (clamped to the present
    /// if already past) on the radio board's relay queue. The board wakes
    /// the scheduler at the deadline, keys the PA for the frame's airtime
    /// and accounts the RF energy like any firmware transmission.
    ///
    /// Returns `false` when the node cannot relay: no mesh receive path
    /// fitted ([`fit_mesh_rx`](Self::fit_mesh_rx)) or a latched fault.
    /// Pending relays are dropped if the supervisor cold-boots the node.
    pub fn inject_relay(&mut self, at: SimTime, bytes: Vec<u8>) -> bool {
        if self.fault.is_some() {
            return false;
        }
        let accepted = self.radio.schedule_relay(at.max(self.now()), bytes);
        if accepted {
            // External injection: the cached event horizon is stale.
            self.horizon_valid = false;
        }
        accepted
    }

    /// Present battery state of charge.
    pub fn battery_soc(&self) -> f64 {
        self.storage.soc()
    }

    /// When the node browned out (battery too depleted to hold the rails),
    /// if it has.
    ///
    /// A browned-out node stops waking and transmitting; harvested energy
    /// keeps trickling into the cell, and the node restarts once the cell
    /// recovers above the restart threshold (a 10 % hysteresis band, like
    /// a supply supervisor).
    pub fn browned_out_at(&self) -> Option<SimTime> {
        self.storage.browned_out_at()
    }

    /// How many brown-out events have occurred over the node's lifetime.
    pub fn brownout_count(&self) -> u32 {
        self.storage.brownout_count()
    }

    /// The latched fault, if a run ended in one.
    pub fn fault(&self) -> Option<NodeFault> {
        self.fault
    }

    /// The always-on supply voltage currently delivered to MCU and sensor.
    pub fn vdd(&self) -> Volts {
        self.vdd
    }

    /// The four swappable boards, in stack order (storage at the bottom,
    /// radio on top), behind the uniform [`Board`] interface.
    pub fn boards(&self) -> impl Iterator<Item = &dyn Board> {
        [
            &self.storage as &dyn Board,
            &self.sensor,
            &self.switch,
            &self.radio,
        ]
        .into_iter()
    }

    /// The earliest scheduled board event, if any board has one pending.
    fn next_board_event(&self) -> Option<SimTime> {
        self.boards().filter_map(Board::next_event).min()
    }

    /// [`Stack::next_board_event`] through the cached event horizon: the
    /// vtable-min scan runs only after an invalidation (a board fired or
    /// the supervisor restarted the stack), not on every scheduler pass.
    fn board_horizon(&mut self) -> Option<SimTime> {
        if !self.horizon_valid {
            self.horizon = self.next_board_event();
            self.horizon_valid = true;
        }
        debug_assert_eq!(
            self.horizon,
            self.next_board_event(),
            "event horizon went stale: a board rescheduled outside fire_event/on_restart"
        );
        self.horizon
    }

    /// Fires every board whose event is due, applies staged cross-board
    /// effects, and recomputes rail currents if anything fired.
    fn fire_due_events(&mut self) -> Result<(), NodeFault> {
        let now = self.now();
        let mut ctx = StackCtx {
            now,
            vdd: self.vdd,
            telemetry: &mut self.telemetry,
            wakes: &mut self.wakes,
            battery_temperature: None,
            irq_pulse: false,
        };
        let mut fired = false;
        let boards: [&mut dyn Board; 4] = [
            &mut self.storage,
            &mut self.sensor,
            &mut self.switch,
            &mut self.radio,
        ];
        for board in boards {
            if board.next_event().is_some_and(|at| at <= now) {
                board.fire_event(&mut ctx);
                fired = true;
            }
        }
        let StackCtx {
            battery_temperature,
            irq_pulse,
            ..
        } = ctx;
        if let Some(t) = battery_temperature {
            self.storage.set_temperature(t);
        }
        if irq_pulse {
            // The sensor's digital die raises its interrupt line.
            self.mcu.drive_p1(0, false);
            self.mcu.drive_p1(0, true);
        }
        if fired {
            // The fired boards rescheduled themselves, and their device
            // state (hence their draws) may have changed outside the draw
            // signature's view: invalidate both caches.
            self.horizon_valid = false;
            self.draw_sig = None;
            self.update_currents(false)?;
        }
        Ok(())
    }

    /// Recomputes rail currents from the boards' demands. `force` records
    /// even if nothing changed.
    fn update_currents(&mut self, force: bool) -> Result<(), NodeFault> {
        if self.storage.held() {
            return Ok(()); // supervisor holds everything unpowered
        }
        let i_mcu = self.mcu.current_draw();
        let sensor_draw = self.sensor.currents(self.vdd);
        let radio_draw = self.radio.currents(self.vdd);
        let p1 = self.p1.get();
        let spi_on = p1 & PIN_RADIO_SPI != 0;
        // The RF LDO is keyed by the firmware's PA pin or by an in-flight
        // mesh relay pulse (which transmits without waking the MCU).
        let pa_on = pa_enabled(p1) || self.radio.relay_active();
        let inputs = (i_mcu, sensor_draw.vdd, spi_on, pa_on);
        if !force && inputs == self.last_inputs {
            return Ok(());
        }
        self.last_inputs = inputs;
        // A solve changes VDD: make the next active step re-derive the draw
        // signature rather than trust one computed against the old rail.
        self.draw_sig = None;

        let vbat = self.ledger.rail_voltage(self.rail)?;
        // VDD rail demand in stack order: controller, then sensor, then
        // the radio board's level shifters (zero while SPI is off).
        let i_vdd = i_mcu + sensor_draw.vdd + radio_draw.vdd;
        let solve = self
            .switch
            .rails(vbat, i_vdd, spi_on, pa_on, radio_draw.rf)?;

        self.vdd = solve.vdd_out;
        if let Some(listen) = radio_draw.battery {
            self.ledger
                .set_load_current(self.load_wakeup, listen / vbat)?;
        }
        self.ledger
            .set_load_current(self.load_overhead, solve.overhead)?;
        self.ledger
            .set_load_current(self.load_vdd, solve.vdd_reflected)?;
        self.ledger
            .set_load_current(self.load_digital, solve.digital)?;
        self.ledger.set_load_current(self.load_rf, solve.rf)?;
        self.trace
            .record(self.ledger.now(), self.ledger.total_power());
        Ok(())
    }

    /// Settles harvest/consumption into the battery over the elapsed span
    /// and runs the supply supervisor.
    fn settle_battery(&mut self) -> Result<(), NodeFault> {
        let now = self.now();
        let vbat = self.ledger.rail_voltage(self.rail)?;
        let consumed = self.ledger.total_energy();
        if !self.storage.settle(now, vbat, consumed, &self.switch) {
            return Ok(());
        }
        self.soc_trace.record(now, self.storage.soc());
        // Battery sag/recovery feeds back into the rail voltage.
        self.ledger
            .set_rail_voltage(self.rail, self.storage.terminal_voltage())?;
        self.supervise(now)
    }

    /// Applies the storage board's supervisor verdict: holds the stack in
    /// reset on brown-out, cold-boots and reschedules every board on
    /// recovery.
    fn supervise(&mut self, now: SimTime) -> Result<(), NodeFault> {
        match self.storage.supervise(now) {
            SupervisorVerdict::Unchanged => Ok(()),
            SupervisorVerdict::BrownedOut => {
                self.draw_sig = None;
                self.telemetry.metrics.inc(keys::NODE_BROWNOUTS, 1);
                self.telemetry
                    .record(self.now().as_nanos(), EventKind::BrownOut);
                self.mcu.set_register(2, 0); // hold in reset: GIE off
                self.mcu.clear_pending_irqs();
                for load in [
                    self.load_overhead,
                    self.load_vdd,
                    self.load_digital,
                    self.load_rf,
                    self.load_wakeup,
                ] {
                    self.ledger.set_load_current(load, Amps::ZERO)?;
                }
                self.trace
                    .record(self.ledger.now(), self.ledger.total_power());
                Ok(())
            }
            SupervisorVerdict::Recovered => {
                self.telemetry
                    .record(self.now().as_nanos(), EventKind::Recovered);
                self.mcu.warm_reset();
                // Boards reschedule relative to the reboot.
                let now = self.now();
                let boards: [&mut dyn Board; 4] = [
                    &mut self.storage,
                    &mut self.sensor,
                    &mut self.switch,
                    &mut self.radio,
                ];
                for board in boards {
                    board.on_restart(now);
                }
                self.horizon_valid = false;
                self.draw_sig = None;
                self.last_inputs = (Amps::new(-1.0), Amps::new(-1.0), false, false);
                self.update_currents(true)
            }
        }
    }

    /// Runs the node for a span of simulated time.
    ///
    /// A fault (illegal instruction, stuck firmware, unsolvable power
    /// chain) latches: the outcome reports it, [`Stack::fault`] and the
    /// [`NodeReport`] carry it, and subsequent calls return it without
    /// advancing time.
    pub fn run_for(&mut self, duration: SimDuration) -> RunOutcome {
        if let Some(fault) = self.fault {
            return RunOutcome::Faulted(fault);
        }
        let end = self.now() + duration;
        match self.run_until(end) {
            Ok(()) => self.finish_run(end),
            Err(fault) => self.latch(fault),
        }
    }

    /// Latches a fault: records it in telemetry and freezes the node.
    fn latch(&mut self, fault: NodeFault) -> RunOutcome {
        self.fault = Some(fault);
        self.telemetry.metrics.inc(keys::NODE_FAULTS, 1);
        self.telemetry.record(
            self.now().as_nanos(),
            EventKind::Fault { what: fault.tag() },
        );
        RunOutcome::Faulted(fault)
    }

    /// The shared scheduler loop: one pass over sleep-skip, board events,
    /// controller steps and supervisor holds until `end`.
    ///
    /// Built from the same resumable phases the fleet's batched sleep
    /// driver uses ([`Stack::next_park`] / [`Stack::sleep_clock`] /
    /// [`Stack::finish_park`]), with the ledger advanced inline — the
    /// single-node exact path is the three phases run back to back.
    fn run_until(&mut self, end: SimTime) -> Result<(), NodeFault> {
        // Guard against a stuck simulation (firmware fault).
        let mut fault_guard: u64 = 0;
        loop {
            let park = self.next_park(end, &mut fault_guard)?;
            if matches!(park, Park::Done) {
                return Ok(());
            }
            self.sleep_clock(park);
            self.ledger.advance_to(self.now());
            self.finish_park(park, end)?;
        }
    }

    /// Phase boundary: runs held/zero-gap/active scheduling until the node
    /// either reaches `end` or wants to integrate a sleep span — the point
    /// where the fleet's batch driver can group it with its chunk-mates.
    ///
    /// Returning [`Park::Held`]/[`Park::Asleep`] leaves the node *before*
    /// its clock or ledger move: the caller must run [`Stack::sleep_clock`],
    /// integrate the ledger to [`Stack::now`] (directly or via a
    /// [`SleepBatch`] span), then [`Stack::finish_park`], in that order.
    pub(crate) fn next_park(
        &mut self,
        end: SimTime,
        fault_guard: &mut u64,
    ) -> Result<Park, NodeFault> {
        while self.now() < end {
            if self.storage.held() {
                // Held in reset: advance in supervisor-poll chunks, letting
                // the harvester recharge the cell toward the restart
                // threshold.
                let next = (self.now() + SimDuration::from_secs(60)).min(end);
                let gap = next
                    .checked_duration_since(self.now())
                    .unwrap_or(SimDuration::ZERO);
                if gap.is_zero() {
                    break;
                }
                return Ok(Park::Held { wake: next });
            }
            let asleep = self.mcu.mode() != OperatingMode::Active && !self.mcu.has_pending_irq();
            if asleep {
                let next = self.board_horizon().unwrap_or(end).min(end);
                let gap = next
                    .checked_duration_since(self.now())
                    .unwrap_or(SimDuration::ZERO);
                if !gap.is_zero() {
                    return Ok(Park::Asleep { wake: next });
                }
                // Zero gap: a board event is due right now. Settle and
                // fire in place — the exact path; there is no span to
                // batch.
                self.settle_battery()?;
                if self.now() >= end {
                    break;
                }
                if !self.storage.held() {
                    self.fire_due_events()?;
                }
            } else {
                // Active: run a whole observable-equivalent *segment* in one
                // call, then integrate power and re-sample the world once at
                // its boundary. `run_segment` stops after the first
                // instruction that changes anything a board can see (GPIO
                // outputs, SPI activity, operating mode), so deferring the
                // pin mirror / draw-signature epilogue to the boundary is
                // bit-identical to running it per instruction: for every
                // interior instruction it was a no-op by construction.
                let p1_before = self.p1.get();
                debug_assert_eq!(self.ledger.now(), self.now());
                // The old per-step loop gate `now() < end`, in cycles: a
                // step may start while `cycles * 1000 < end_ns`.
                let limit_cycles = end.as_nanos().div_ceil(1_000);
                // Cap instructions so the stuck guard trips on exactly the
                // same instruction as the old one-check-per-step loop.
                let max_insns = usize::try_from(200_000_001 - *fault_guard).unwrap_or(usize::MAX);
                self.seg_deltas.clear();
                let stop = self
                    .mcu
                    .run_segment(limit_cycles, max_insns, &mut self.seg_deltas);
                // Replay the segment's per-instruction advances through the
                // ledger in one pass (bit-identical to per-step advance_to).
                self.ledger.advance_deltas(&self.seg_deltas);
                *fault_guard += self.seg_deltas.len() as u64;
                match stop {
                    SegmentStop::Fault { word, at } => {
                        // As before: a faulting fetch is reported without
                        // running the epilogue (it consumed no cycles).
                        return Err(NodeFault::IllegalInstruction { word, at });
                    }
                    // The old loop counted a sleep-reporting `step` like any
                    // other poll of the core.
                    SegmentStop::Sleeping(_) => *fault_guard += 1,
                    SegmentStop::Budget | SegmentStop::Observable => {}
                }
                // Mirror pins for the bus mux; boards watch the edges.
                let p1_now = self.mcu.p1_output();
                let p2_now = self.mcu.p2_output();
                self.p1.set(p1_now);
                self.p2.set(p2_now);
                // `on_bus` is a pure P1 edge detector (the radio watches for
                // its PA window closing), so a step that left P1 unchanged
                // cannot have anything to deliver.
                if p1_now != p1_before {
                    let mut ctx = StackCtx {
                        now: self.now(),
                        vdd: self.vdd,
                        telemetry: &mut self.telemetry,
                        wakes: &mut self.wakes,
                        battery_temperature: None,
                        irq_pulse: false,
                    };
                    self.radio.on_bus(p1_before, p1_now, &mut ctx);
                }
                // Draw gate: every input to `update_currents`'s change guard
                // is a function of this signature (see the `draw_sig` field
                // docs), so an unchanged signature means the call would have
                // early-returned — skip it.
                let sig = (self.mcu.mode(), p1_now, p2_now, self.mcu.spi_busy());
                if self.draw_sig != Some(sig) {
                    self.draw_sig = Some(sig);
                    self.update_currents(false)?;
                }
                if *fault_guard > 200_000_000 {
                    return Err(NodeFault::Stuck {
                        steps: *fault_guard,
                    });
                }
            }
        }
        Ok(Park::Done)
    }

    /// Phase 1 of a park: advances the node's time base (the MCU cycle
    /// counter) toward the park's wake time and books the span as slept.
    /// The ledger still sits at the pre-sleep instant afterwards; the
    /// caller integrates it to [`Stack::now`] before [`Stack::finish_park`].
    ///
    /// The clock may stop short of `wake`: [`Mcu::sleep`] returns early the
    /// moment an interrupt latches (a timer tick during the span), which is
    /// why the ledger pass targets the *actual* post-sleep `now`.
    pub(crate) fn sleep_clock(&mut self, park: Park) {
        match park {
            Park::Done => {}
            Park::Held { wake } => {
                let gap = wake
                    .checked_duration_since(self.now())
                    .unwrap_or(SimDuration::ZERO);
                self.mcu.sleep(gap.as_nanos() / 1_000);
                self.slept += gap;
            }
            Park::Asleep { wake } => {
                let gap = wake
                    .checked_duration_since(self.now())
                    .unwrap_or(SimDuration::ZERO);
                let cycles = gap.as_nanos() / 1_000; // 1 µs per cycle
                self.mcu.sleep(cycles.max(1));
                self.slept += gap;
            }
        }
    }

    /// Phase 3 of a park: settles the battery over the integrated span and
    /// — for a regular sleep that woke before `end` with the supervisor
    /// happy — fires the board events the node slept toward.
    pub(crate) fn finish_park(&mut self, park: Park, end: SimTime) -> Result<(), NodeFault> {
        self.settle_battery()?;
        if matches!(park, Park::Asleep { .. }) && self.now() < end && !self.storage.held() {
            self.fire_due_events()?;
        }
        Ok(())
    }

    /// The inline (exact-path) sleep integration: advances the ledger to
    /// the post-[`Stack::sleep_clock`] clock. Equivalent to staging and
    /// committing a one-span batch.
    pub(crate) fn integrate_sleep_now(&mut self) {
        self.ledger.advance_to(self.now());
    }

    /// Stages this node's pending sleep integration (ledger time up to
    /// [`Stack::now`]) into a cross-node [`SleepBatch`], returning the span
    /// handle for [`Stack::commit_sleep_span`].
    pub(crate) fn stage_sleep_span(&mut self, batch: &mut SleepBatch) -> usize {
        self.ledger.stage_sleep(self.now(), batch)
    }

    /// Commits this node's span of an integrated [`SleepBatch`] — the
    /// batched equivalent of the inline `ledger.advance_to(now)`.
    pub(crate) fn commit_sleep_span(&mut self, batch: &SleepBatch, span: usize) {
        self.ledger.commit_sleep(batch, span);
    }

    /// Latches `fault` exactly as [`Stack::run_for`] would (telemetry event
    /// plus frozen state); the fleet's batch driver reports faults through
    /// this so a batched node's record matches the exact path's.
    pub(crate) fn latch_fault(&mut self, fault: NodeFault) -> RunOutcome {
        self.latch(fault)
    }

    /// The end-of-run epilogue shared by [`Stack::run_for`] and the batch
    /// driver: integrates the tail of the span, settles, and re-derives
    /// currents.
    pub(crate) fn finish_run(&mut self, end: SimTime) -> RunOutcome {
        let finished = (|| {
            self.ledger.advance_to(end.max(self.ledger.now()));
            self.settle_battery()?;
            self.update_currents(true)
        })();
        match finished {
            Ok(()) => RunOutcome::Completed,
            Err(fault) => self.latch(fault),
        }
    }

    /// Produces the run summary.
    pub fn report(&self) -> NodeReport {
        NodeReport {
            elapsed: self.now().as_seconds(),
            average_power: self.ledger.average_power(),
            peak_power: self.trace.peak(),
            consumed: self.ledger.total_energy(),
            harvested: self.storage.harvested(),
            power: self.ledger.report(),
            packets: self.packets(),
            wakes: self.wakes,
            final_soc: self.storage.soc(),
            brownout_count: self.storage.brownout_count(),
            browned_out: self.storage.browned_out_at().is_some(),
            fault: self.fault,
        }
    }
}
