//! The sensor board: SP12 TPMS (§5) or SCA3000 motion (§6), with its
//! free-running wake timer and interrupt line into the controller.

use super::{Board, BoardDraw, StackCtx};
use picocube_sensors::{MotionScenario, Sca3000, Sp12, TireEnvironment};
use picocube_sim::{SimDuration, SimTime};
use picocube_telemetry::{keys, EventKind, Metrics};
use picocube_units::{Amps, Volts};
use std::cell::RefCell;
use std::rc::Rc;

enum SensorState {
    Tpms {
        env: Box<TireEnvironment>,
        device: Rc<RefCell<Sp12>>,
        next_wake: SimTime,
        interval_scale: f64,
    },
    Motion {
        scenario: Box<MotionScenario>,
        device: Rc<RefCell<Sca3000>>,
        next_check: SimTime,
    },
}

/// The sensor board slotted into the stack: either the SP12 TPMS board or
/// the SCA3000 accelerometer board, driving its environment model and
/// raising the interrupt line toward the controller when it has data.
pub struct SensorBoard {
    state: SensorState,
    fires: u64,
}

impl core::fmt::Debug for SensorBoard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (kind, next) = match &self.state {
            SensorState::Tpms { next_wake, .. } => ("Sp12", next_wake),
            SensorState::Motion { next_check, .. } => ("Sca3000", next_check),
        };
        f.debug_struct("SensorBoard")
            .field("kind", &kind)
            .field("next_event", next)
            .field("fires", &self.fires)
            .finish()
    }
}

impl SensorBoard {
    /// The SP12 TPMS board with its tire environment and wake schedule.
    pub(super) fn sp12(
        device: Rc<RefCell<Sp12>>,
        env: TireEnvironment,
        next_wake: SimTime,
        interval_scale: f64,
    ) -> Self {
        Self {
            state: SensorState::Tpms {
                env: Box::new(env),
                device,
                next_wake,
                interval_scale,
            },
            fires: 0,
        }
    }

    /// The SCA3000 accelerometer board replaying a motion scenario.
    pub(super) fn sca3000(device: Rc<RefCell<Sca3000>>, scenario: MotionScenario) -> Self {
        Self {
            state: SensorState::Motion {
                scenario: Box::new(scenario),
                device,
                next_check: SimTime::from_millis(100),
            },
            fires: 0,
        }
    }
}

impl Board for SensorBoard {
    fn name(&self) -> &'static str {
        "sensor"
    }

    fn next_event(&self) -> Option<SimTime> {
        Some(match &self.state {
            SensorState::Tpms { next_wake, .. } => *next_wake,
            SensorState::Motion { next_check, .. } => *next_check,
        })
    }

    fn fire_event(&mut self, ctx: &mut StackCtx<'_>) {
        let t_ns = ctx.now.as_nanos();
        match &mut self.state {
            SensorState::Tpms {
                env,
                device,
                next_wake,
                interval_scale,
            } => {
                let interval = device.borrow().wake_interval();
                let mut sample = env.step(interval);
                sample.supply = ctx.vdd;
                device.borrow_mut().set_sample(sample);
                // The cell rides on the rim at tire temperature (applied by
                // the scheduler once this callback returns).
                ctx.set_battery_temperature(sample.temperature);
                *next_wake += SimDuration::from_seconds(interval * *interval_scale);
                *ctx.wakes += 1;
                self.fires += 1;
                ctx.telemetry.metrics.inc(keys::NODE_WAKES, 1);
                ctx.telemetry
                    .record(t_ns, EventKind::Wake { index: *ctx.wakes });
                // The SP12 digital die raises its interrupt line.
                ctx.pulse_sensor_irq();
            }
            SensorState::Motion {
                scenario,
                device,
                next_check,
            } => {
                let t = next_check.as_seconds();
                let sample = scenario.sample_at(t);
                let triggered = device.borrow_mut().update(sample);
                *next_check += SimDuration::from_millis(100);
                if triggered {
                    *ctx.wakes += 1;
                    self.fires += 1;
                    ctx.telemetry.metrics.inc(keys::NODE_WAKES, 1);
                    ctx.telemetry
                        .record(t_ns, EventKind::Wake { index: *ctx.wakes });
                    ctx.pulse_sensor_irq();
                }
            }
        }
    }

    fn currents(&self, _vdd: Volts) -> BoardDraw {
        let vdd = match &self.state {
            SensorState::Tpms { device, .. } => device.borrow().current_draw(),
            SensorState::Motion { device, .. } => device.borrow().current_draw(),
        };
        BoardDraw {
            vdd,
            rf: Amps::ZERO,
            battery: None,
        }
    }

    fn on_restart(&mut self, now: SimTime) {
        // Reschedule relative to the reboot.
        match &mut self.state {
            SensorState::Tpms {
                device, next_wake, ..
            } => {
                *next_wake = now + SimDuration::from_seconds(device.borrow().wake_interval());
            }
            SensorState::Motion { next_check, .. } => {
                *next_check = now + SimDuration::from_millis(100);
            }
        }
    }

    fn export_metrics(&self, metrics: &mut Metrics) {
        metrics.inc(keys::BOARD_SENSOR_FIRES, self.fires);
    }
}
