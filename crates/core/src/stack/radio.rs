//! The radio board: FBAR-based OOK transmitter (§4.2), its level
//! shifters, the optional §7.3 wakeup receiver — and, when the mesh
//! receive path is fitted, a relay queue that rebroadcasts frames the
//! wakeup detector heard.

use super::{Board, BoardDraw, StackCtx};
use crate::bus::{pa_enabled, RadioFrontend, TransmittedPacket};
use picocube_mcu::firmware::PIN_RADIO_SPI;
use picocube_power::switches::LevelShifter;
use picocube_radio::WakeupReceiver;
use picocube_sim::{SimDuration, SimTime};
use picocube_telemetry::{keys, EventKind, Metrics};
use picocube_units::{Amps, Hertz, Volts};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Receive-path state fitted by [`crate::Stack::fit_mesh_rx`]: the relay
/// queue the wakeup detector feeds and its lifetime accounting.
///
/// Detection itself (sensitivity gate, dedup, hop limiting) happens in the
/// mesh engine's match phase, which knows every node's receive level; the
/// board's job is to *execute* accepted relays on the scheduler — wake at
/// the deadline, key the PA, account the energy.
#[derive(Debug, Default)]
struct MeshRx {
    /// Pending rebroadcasts, ascending by deadline.
    queue: Vec<(SimTime, Vec<u8>)>,
    /// End of the in-flight relay's PA pulse, while one is on the air.
    active_until: Option<SimTime>,
    /// Lifetime rebroadcast count.
    relays: u64,
    /// Lifetime rebroadcast RF energy in microjoules.
    relay_energy_uj: f64,
}

/// The radio board: watches the firmware's SPI/PA lines for transmit
/// windows, accounts its rail draws, and carries the optional always-on
/// wakeup receiver (plus, in mesh deployments, the relay queue it feeds).
pub struct RadioBoard {
    frontend: Rc<RefCell<RadioFrontend>>,
    wakeup: Option<WakeupReceiver>,
    p1: Rc<Cell<u8>>,
    rx: Option<MeshRx>,
}

impl core::fmt::Debug for RadioBoard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RadioBoard")
            .field("packets", &self.frontend.borrow().packets().len())
            .field("wakeup", &self.wakeup.is_some())
            .field("mesh_rx", &self.rx.is_some())
            .finish_non_exhaustive()
    }
}

impl RadioBoard {
    pub(super) fn new(
        frontend: Rc<RefCell<RadioFrontend>>,
        wakeup: Option<WakeupReceiver>,
        p1: Rc<Cell<u8>>,
    ) -> Self {
        Self {
            frontend,
            wakeup,
            p1,
            rx: None,
        }
    }

    /// Packets transmitted so far.
    pub fn packets(&self) -> Vec<TransmittedPacket> {
        self.frontend.borrow().packets().to_vec()
    }

    /// How many packets have been transmitted so far.
    pub(super) fn packet_count(&self) -> usize {
        self.frontend.borrow().packets().len()
    }

    /// Packets transmitted at or after cursor `from`.
    pub(super) fn packets_since(&self, from: usize) -> Vec<TransmittedPacket> {
        self.frontend
            .borrow()
            .packets()
            .get(from..)
            .unwrap_or_default()
            .to_vec()
    }

    /// Installs `detector` as the always-on wakeup receiver and arms the
    /// relay queue.
    pub(super) fn fit_rx(&mut self, detector: WakeupReceiver) {
        self.wakeup = Some(detector);
        self.rx = Some(MeshRx::default());
    }

    /// The fitted wakeup receiver, if any.
    pub(super) fn wakeup(&self) -> Option<&WakeupReceiver> {
        self.wakeup.as_ref()
    }

    /// Whether a relay transmission is currently keying the PA.
    pub(super) fn relay_active(&self) -> bool {
        self.rx.as_ref().is_some_and(|rx| rx.active_until.is_some())
    }

    /// Queues a rebroadcast of `bytes` at `at`. Returns `false` when no
    /// mesh receive path is fitted.
    pub(super) fn schedule_relay(&mut self, at: SimTime, bytes: Vec<u8>) -> bool {
        let Some(rx) = self.rx.as_mut() else {
            return false;
        };
        let pos = rx.queue.partition_point(|&(t, _)| t <= at);
        rx.queue.insert(pos, (at, bytes));
        true
    }
}

impl Board for RadioBoard {
    fn name(&self) -> &'static str {
        "radio"
    }

    fn next_event(&self) -> Option<SimTime> {
        let rx = self.rx.as_ref()?;
        match (rx.queue.first(), rx.active_until) {
            (Some(&(at, _)), Some(done)) => Some(at.min(done)),
            (Some(&(at, _)), None) => Some(at),
            (None, done) => done,
        }
    }

    fn fire_event(&mut self, ctx: &mut StackCtx<'_>) {
        let Some(rx) = self.rx.as_mut() else {
            return;
        };
        let now = ctx.now;
        if rx.active_until.is_some_and(|done| done <= now) {
            // The in-flight relay's PA pulse ended; the scheduler's
            // post-event current recompute drops the RF draw.
            rx.active_until = None;
        }
        if let Some(done) = rx.active_until {
            // Half-duplex: a rebroadcast due while another is on the air
            // defers until the PA frees up.
            if let Some(head) = rx.queue.first_mut() {
                if head.0 <= now {
                    head.0 = done;
                }
            }
            return;
        }
        if rx.queue.first().is_some_and(|&(at, _)| at <= now) {
            let (_, bytes) = rx.queue.remove(0);
            let frame_len = bytes.len() as u32;
            let transmission = self.frontend.borrow_mut().transmit_relay(now, bytes);
            rx.relays += 1;
            rx.relay_energy_uj += transmission.energy.micro();
            rx.active_until = Some(now + SimDuration::from_seconds(transmission.duration));
            transmission.export_metrics(&mut ctx.telemetry.metrics);
            if ctx.telemetry.events_enabled() {
                ctx.telemetry.record(
                    (now + SimDuration::from_seconds(transmission.duration)).as_nanos(),
                    EventKind::Tx {
                        bytes: frame_len,
                        airtime_us: transmission.duration.value() * 1e6,
                        energy_uj: transmission.energy.micro(),
                    },
                );
            }
        }
    }

    fn currents(&self, vdd: Volts) -> BoardDraw {
        let p1 = self.p1.get();
        let spi_on = p1 & PIN_RADIO_SPI != 0;
        let pa_on = pa_enabled(p1) || self.relay_active();
        let vdd_draw = if spi_on {
            // CSP level shifters between the VDD and radio logic domains.
            let shifters = LevelShifter::radio_board();
            let p = shifters.power(vdd, Hertz::from_kilo(100.0));
            p / vdd
        } else {
            Amps::ZERO
        };
        // Radio RF rail draw: 50 % OOK average while the PA window is open
        // (a firmware window or an in-flight relay pulse).
        let rf = if pa_on {
            self.frontend.borrow().transmitter().supply_current_on() * 0.5
        } else {
            Amps::ZERO
        };
        BoardDraw {
            vdd: vdd_draw,
            rf,
            battery: self.wakeup.as_ref().map(WakeupReceiver::listen_power),
        }
    }

    fn on_bus(&mut self, p1_before: u8, p1_now: u8, ctx: &mut StackCtx<'_>) {
        // A falling PA line closes the transmit window: flush the frames
        // the firmware shifted out and account airtime/energy for each.
        if pa_enabled(p1_before) && !pa_enabled(p1_now) {
            let now = ctx.now;
            let mut radio = self.frontend.borrow_mut();
            let before = radio.packets().len();
            radio.close_window(now);
            for packet in radio.packets().get(before..).unwrap_or_default() {
                packet
                    .transmission
                    .export_metrics(&mut ctx.telemetry.metrics);
                if ctx.telemetry.events_enabled() {
                    ctx.telemetry.record(
                        packet.time.as_nanos(),
                        EventKind::Tx {
                            bytes: packet.bytes.len() as u32,
                            airtime_us: packet.transmission.duration.value() * 1e6,
                            energy_uj: packet.transmission.energy.micro(),
                        },
                    );
                }
            }
        }
    }

    fn on_restart(&mut self, _now: SimTime) {
        // A cold boot drops pending rebroadcasts and any in-flight pulse.
        if let Some(rx) = self.rx.as_mut() {
            rx.queue.clear();
            rx.active_until = None;
        }
    }

    fn export_metrics(&self, metrics: &mut Metrics) {
        let frontend = self.frontend.borrow();
        let packets = frontend.packets();
        metrics.inc(keys::BOARD_RADIO_PACKETS, packets.len() as u64);
        metrics.inc(
            keys::BOARD_RADIO_BYTES,
            packets.iter().map(|p| p.bytes.len() as u64).sum(),
        );
        if let Some(rx) = &self.rx {
            metrics.inc(keys::BOARD_RADIO_RELAYS, rx.relays);
            metrics.add(keys::BOARD_RADIO_RELAY_ENERGY_UJ, rx.relay_energy_uj);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_mcu::firmware::PIN_RADIO_PA;
    use picocube_radio::packet::{encode, Checksum};
    use picocube_radio::OokTransmitter;
    use picocube_telemetry::TelemetryBuffer;

    fn board() -> (RadioBoard, Rc<Cell<u8>>, Rc<RefCell<RadioFrontend>>) {
        let p1 = Rc::new(Cell::new(0u8));
        let frontend = Rc::new(RefCell::new(RadioFrontend::new(OokTransmitter::picocube())));
        let board = RadioBoard::new(frontend.clone(), None, p1.clone());
        (board, p1, frontend)
    }

    fn ctx<'a>(
        now: SimTime,
        telemetry: &'a mut TelemetryBuffer,
        wakes: &'a mut u64,
    ) -> StackCtx<'a> {
        StackCtx {
            now,
            vdd: Volts::new(2.4),
            telemetry,
            wakes,
            battery_temperature: None,
            irq_pulse: false,
        }
    }

    #[test]
    fn on_bus_accounts_every_frame_of_a_window() {
        // Regression: a PA window flushing two frames used to record a Tx
        // event and metrics only for the first.
        let (mut board, p1, frontend) = board();
        let frame = encode(0x42, &[1, 2, 3, 4, 5, 6], Checksum::Xor);
        for b in frame.iter().chain(&frame) {
            frontend.borrow_mut().feed(*b);
        }
        let mut telemetry = TelemetryBuffer::with_events(true);
        let mut wakes = 0u64;
        p1.set(0);
        board.on_bus(
            PIN_RADIO_PA,
            0,
            &mut ctx(SimTime::from_millis(40), &mut telemetry, &mut wakes),
        );
        assert_eq!(telemetry.metrics.counter("radio.tx.packets"), 2);
        let tx_events = telemetry
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Tx { .. }))
            .count();
        assert_eq!(tx_events, 2, "one Tx event per flushed frame");
        assert_eq!(board.packets().len(), 2);
    }

    #[test]
    fn relay_fires_from_the_queue_and_accounts_energy() {
        let (mut board, _p1, _frontend) = board();
        board.fit_rx(WakeupReceiver::mesh_correlator());
        let frame = encode(0x07, &[9, 9, 9, 9, 9, 9], Checksum::Xor);
        let deadline = SimTime::from_millis(20);
        assert!(board.schedule_relay(deadline, frame.clone()));
        assert_eq!(board.next_event(), Some(deadline));

        let mut telemetry = TelemetryBuffer::with_events(true);
        let mut wakes = 0u64;
        board.fire_event(&mut ctx(deadline, &mut telemetry, &mut wakes));
        assert!(board.relay_active(), "PA keyed for the relay pulse");
        let packets = board.packets();
        assert_eq!(packets.len(), 1);
        assert!(packets[0].relayed);
        assert_eq!(packets[0].bytes, frame);
        assert_eq!(telemetry.metrics.counter("radio.tx.packets"), 1);

        // The pulse-end event clears the PA.
        let done = board.next_event().expect("pulse end scheduled");
        assert!(done > deadline);
        board.fire_event(&mut ctx(done, &mut telemetry, &mut wakes));
        assert!(!board.relay_active());
        assert_eq!(board.next_event(), None);

        let mut metrics = Metrics::new();
        board.export_metrics(&mut metrics);
        assert_eq!(metrics.counter("board.radio.relays"), 1);
        assert!(metrics.gauge("board.radio.relay_energy_uj") > 0.0);
    }

    #[test]
    fn half_duplex_defers_an_overlapping_relay() {
        let (mut board, _p1, _frontend) = board();
        board.fit_rx(WakeupReceiver::mesh_correlator());
        let frame = encode(0x07, &[1, 1, 1, 1, 1, 1], Checksum::Xor);
        let first = SimTime::from_millis(20);
        board.schedule_relay(first, frame.clone());
        // Second deadline lands inside the first pulse's airtime (~1.3 ms).
        board.schedule_relay(first + SimDuration::from_micros(200), frame);

        let mut telemetry = TelemetryBuffer::new();
        let mut wakes = 0u64;
        board.fire_event(&mut ctx(first, &mut telemetry, &mut wakes));
        // Firing at the second deadline mid-pulse defers it, not transmits.
        board.fire_event(&mut ctx(
            first + SimDuration::from_micros(200),
            &mut telemetry,
            &mut wakes,
        ));
        assert_eq!(board.packets().len(), 1, "second relay deferred");
        // The deferred head now shares the pulse-end deadline; firing there
        // clears the PA and transmits the deferred relay in one step.
        let pulse_end = match board.next_event() {
            Some(t) => t,
            None => unreachable!("a pulse is in flight"),
        };
        assert!(pulse_end > first + SimDuration::from_micros(200));
        board.fire_event(&mut ctx(pulse_end, &mut telemetry, &mut wakes));
        assert_eq!(board.packets().len(), 2);
    }
}
