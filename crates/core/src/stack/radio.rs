//! The radio board: FBAR-based OOK transmitter (§4.2), its level
//! shifters, and the optional §7.3 wakeup receiver.

use super::{Board, BoardDraw, StackCtx};
use crate::bus::{pa_enabled, RadioFrontend, TransmittedPacket};
use picocube_mcu::firmware::PIN_RADIO_SPI;
use picocube_power::switches::LevelShifter;
use picocube_radio::WakeupReceiver;
use picocube_telemetry::{EventKind, Metrics};
use picocube_units::{Amps, Hertz, Volts};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// The radio board: watches the firmware's SPI/PA lines for transmit
/// windows, accounts its rail draws, and carries the optional always-on
/// wakeup receiver.
pub struct RadioBoard {
    frontend: Rc<RefCell<RadioFrontend>>,
    wakeup: Option<WakeupReceiver>,
    p1: Rc<Cell<u8>>,
}

impl core::fmt::Debug for RadioBoard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RadioBoard")
            .field("packets", &self.frontend.borrow().packets().len())
            .field("wakeup", &self.wakeup.is_some())
            .finish_non_exhaustive()
    }
}

impl RadioBoard {
    pub(super) fn new(
        frontend: Rc<RefCell<RadioFrontend>>,
        wakeup: Option<WakeupReceiver>,
        p1: Rc<Cell<u8>>,
    ) -> Self {
        Self {
            frontend,
            wakeup,
            p1,
        }
    }

    /// Packets transmitted so far.
    pub fn packets(&self) -> Vec<TransmittedPacket> {
        self.frontend.borrow().packets().to_vec()
    }
}

impl Board for RadioBoard {
    fn name(&self) -> &'static str {
        "radio"
    }

    fn currents(&self, vdd: Volts) -> BoardDraw {
        let p1 = self.p1.get();
        let spi_on = p1 & PIN_RADIO_SPI != 0;
        let pa_on = pa_enabled(p1);
        let vdd_draw = if spi_on {
            // CSP level shifters between the VDD and radio logic domains.
            let shifters = LevelShifter::radio_board();
            let p = shifters.power(vdd, Hertz::from_kilo(100.0));
            p / vdd
        } else {
            Amps::ZERO
        };
        // Radio RF rail draw: 50 % OOK average while the PA window is open.
        let rf = if pa_on {
            self.frontend.borrow().transmitter().supply_current_on() * 0.5
        } else {
            Amps::ZERO
        };
        BoardDraw {
            vdd: vdd_draw,
            rf,
            battery: self.wakeup.as_ref().map(WakeupReceiver::listen_power),
        }
    }

    fn on_bus(&mut self, p1_before: u8, p1_now: u8, ctx: &mut StackCtx<'_>) {
        // A falling PA line closes the transmit window: flush the frame the
        // firmware shifted out and account its airtime/energy.
        if pa_enabled(p1_before) && !pa_enabled(p1_now) {
            let now = ctx.now;
            let mut radio = self.frontend.borrow_mut();
            let before = radio.packets().len();
            radio.close_window(now);
            if let Some(packet) = radio.packets().get(before..).and_then(<[_]>::first) {
                packet
                    .transmission
                    .export_metrics(&mut ctx.telemetry.metrics);
                if ctx.telemetry.events_enabled() {
                    ctx.telemetry.record(
                        now.as_nanos(),
                        EventKind::Tx {
                            bytes: packet.bytes.len() as u32,
                            airtime_us: packet.transmission.duration.value() * 1e6,
                            energy_uj: packet.transmission.energy.micro(),
                        },
                    );
                }
            }
        }
    }

    fn export_metrics(&self, metrics: &mut Metrics) {
        let frontend = self.frontend.borrow();
        let packets = frontend.packets();
        metrics.inc("board.radio.packets", packets.len() as u64);
        metrics.inc(
            "board.radio.bytes",
            packets.iter().map(|p| p.bytes.len() as u64).sum(),
        );
    }
}
