//! The storage board: NiMH button cell (or Pible-style supercapacitor),
//! harvester, and the supply supervisor (§3, §5).

use super::switch::SwitchBoard;
use super::Board;
use crate::node::{BuildError, HarvestDropout, HarvesterKind, NodeConfig, StorageKind};
use picocube_harvest::{
    ElectromagneticShaker, Harvester, IndoorLightPanel, IndoorLightTrace, PiezoHarvester,
    PowerError, SolarCladding, WheelHarvester,
};
use picocube_sim::{SimDuration, SimTime};
use picocube_storage::{CapacitorBank, NimhCell, StorageElement};
use picocube_telemetry::{keys, Metrics};
use picocube_units::{Amps, Celsius, Coulombs, Joules, Seconds, Volts, Watts};

/// Maps a harvester-model parameter rejection onto the node build error.
fn invalid_harvester(e: PowerError) -> BuildError {
    match e {
        PowerError::InvalidParameter { what } => BuildError::InvalidConfig(what),
        _ => BuildError::InvalidConfig("harvester parameters out of range"),
    }
}

/// Chaos wrapper: gates an inner harvester off for `off_s` out of every
/// `period_s` seconds. The phase within the period is a deterministic
/// hash of the node seed — staggering a fleet's dropouts without drawing
/// from any simulation RNG stream (which would shift the seed-stream
/// discipline and break bit-identity for unrelated configs).
struct GatedHarvester {
    inner: Box<dyn Harvester>,
    period_s: f64,
    on_s: f64,
    phase_s: f64,
}

impl GatedHarvester {
    fn new(inner: Box<dyn Harvester>, dropout: HarvestDropout, seed: u64) -> Self {
        // splitmix64 finalizer: seed → uniform phase fraction in [0, 1).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
        Self {
            inner,
            period_s: dropout.period_s,
            on_s: dropout.period_s - dropout.off_s,
            phase_s: frac * dropout.period_s,
        }
    }
}

impl Harvester for GatedHarvester {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn power_at(&self, t: Seconds) -> Watts {
        if (t.value() + self.phase_s).rem_euclid(self.period_s) < self.on_s {
            self.inner.power_at(t)
        } else {
            Watts::ZERO
        }
    }
}

/// Builds the configured harvester, if any, wrapped in the harvest-dropout
/// chaos gate when one is configured.
///
/// # Errors
///
/// Returns [`BuildError::InvalidConfig`] for unphysical harvester or
/// dropout parameters (specs arrive from JSON, not just from presets).
pub(super) fn harvester_for(config: &NodeConfig) -> Result<Option<Box<dyn Harvester>>, BuildError> {
    if let Some(d) = config.harvest_dropout {
        if !(d.period_s.is_finite() && d.period_s > 0.0) {
            return Err(BuildError::InvalidConfig(
                "harvest dropout period must be positive",
            ));
        }
        if !(d.off_s.is_finite() && (0.0..=d.period_s).contains(&d.off_s)) {
            return Err(BuildError::InvalidConfig(
                "harvest dropout off-span must be in [0, period]",
            ));
        }
    }
    let base: Option<Box<dyn Harvester>> = match &config.harvester {
        HarvesterKind::Automotive => Some(Box::new(WheelHarvester::automotive(
            config.drive_cycle.clone(),
        ))),
        HarvesterKind::Bicycle => Some(Box::new(WheelHarvester::bicycle(
            config.drive_cycle.clone(),
        ))),
        HarvesterKind::Solar(light) => Some(Box::new(SolarCladding::five_faces(*light))),
        HarvesterKind::Shaker => Some(Box::new(ElectromagneticShaker::bench_450uw())),
        HarvesterKind::IndoorLight(trace) => {
            // Re-validate: the trace may arrive from a JSON spec, and the
            // plain-data struct carries no invariants of its own.
            let trace =
                IndoorLightTrace::new(trace.lit_wm2, trace.dark_wm2, trace.on_hour, trace.off_hour)
                    .map_err(invalid_harvester)?;
            Some(Box::new(IndoorLightPanel::pible(trace)))
        }
        HarvesterKind::Piezo(drive) => Some(Box::new(
            PiezoHarvester::machine(*drive).map_err(invalid_harvester)?,
        )),
        HarvesterKind::None => None,
    };
    Ok(match (base, config.harvest_dropout) {
        (Some(inner), Some(dropout)) => {
            Some(Box::new(GatedHarvester::new(inner, dropout, config.seed)))
        }
        (base, _) => base,
    })
}

/// The storage element behind the board: the as-built NiMH cell or the
/// Pible-style supercapacitor bank in its footprint.
pub(super) enum StorageCell {
    Nimh(NimhCell),
    Supercap(CapacitorBank),
}

impl StorageCell {
    /// Builds and charges the configured element, applying the
    /// battery-aging and ambient-temperature chaos knobs.
    pub(super) fn for_config(config: &NodeConfig) -> Result<Self, BuildError> {
        let fraction = config.battery_capacity_fraction;
        if !(fraction.is_finite() && fraction > 0.0 && fraction <= 1.0) {
            return Err(BuildError::InvalidConfig(
                "battery capacity fraction must be in (0, 1]",
            ));
        }
        if let Some(t) = config.ambient_celsius {
            if !(t.is_finite() && (-40.0..=85.0).contains(&t)) {
                return Err(BuildError::InvalidConfig(
                    "ambient temperature must be in [-40, 85] degrees C",
                ));
            }
        }
        let mut cell = match config.storage {
            StorageKind::Nimh => {
                // Aging scales the nameplate 15 mAh; fraction 1.0 is exact
                // (15.0 * 1.0 == 15.0 bitwise), so un-aged configs stay
                // bit-identical to the pre-scenario engine.
                let mut battery = NimhCell::new(Coulombs::from_milliamp_hours(15.0 * fraction));
                battery.set_state_of_charge(config.initial_soc);
                Self::Nimh(battery)
            }
            StorageKind::Supercap => {
                if fraction != 1.0 {
                    return Err(BuildError::InvalidConfig(
                        "battery capacity fraction models NiMH aging; \
                         not supported with supercap storage",
                    ));
                }
                let mut bank = CapacitorBank::picocube_stack();
                // E = C·V²/2, so SOC maps to voltage as sqrt(soc)·V_rated.
                let v = bank.rated_voltage().value() * config.initial_soc.sqrt();
                bank.set_voltage(Volts::new(v));
                Self::Supercap(bank)
            }
        };
        if let Some(t) = config.ambient_celsius {
            cell.set_temperature(Celsius::new(t));
        }
        Ok(cell)
    }

    fn open_circuit_voltage(&self) -> Volts {
        match self {
            Self::Nimh(c) => c.open_circuit_voltage(),
            Self::Supercap(c) => c.open_circuit_voltage(),
        }
    }

    fn terminal_voltage(&self, current: Amps) -> Volts {
        match self {
            Self::Nimh(c) => c.terminal_voltage(current),
            Self::Supercap(c) => c.terminal_voltage(current),
        }
    }

    fn state_of_charge(&self) -> f64 {
        match self {
            Self::Nimh(c) => c.state_of_charge(),
            Self::Supercap(c) => c.state_of_charge(),
        }
    }

    fn step(&mut self, current: Amps, dt: Seconds) {
        match self {
            Self::Nimh(c) => {
                c.step(current, dt);
            }
            Self::Supercap(c) => {
                c.step(current, dt);
            }
        }
    }

    /// Temperature coupling: the NiMH cell's resistance and self-discharge
    /// track it; the capacitor model's leak is temperature-flat.
    fn set_temperature(&mut self, t: Celsius) {
        match self {
            Self::Nimh(c) => c.set_temperature(t),
            Self::Supercap(_) => {}
        }
    }
}

/// What the supply supervisor decided after a battery settle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorVerdict {
    /// No threshold was crossed; the stack carries on.
    Unchanged,
    /// The cell fell below the hold threshold: the stack must be held in
    /// reset with every rail unloaded.
    BrownedOut,
    /// The cell recovered past the restart threshold: the stack must
    /// cold-boot and reschedule its boards.
    Recovered,
}

/// The storage board: the storage cell, the harvester charging it, and the
/// supply supervisor that holds the stack in reset on deep discharge.
pub struct StorageBoard {
    cell: StorageCell,
    harvester: Option<Box<dyn Harvester>>,
    harvested: Joules,
    last_update: SimTime,
    last_consumed: Joules,
    browned_out: Option<SimTime>,
    brownout_count: u32,
}

impl core::fmt::Debug for StorageBoard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StorageBoard")
            .field("soc", &self.soc())
            .field("harvester", &self.harvester.is_some())
            .field("harvested", &self.harvested)
            .field("browned_out", &self.browned_out)
            .field("brownout_count", &self.brownout_count)
            .finish_non_exhaustive()
    }
}

impl StorageBoard {
    pub(super) fn new(cell: StorageCell, harvester: Option<Box<dyn Harvester>>) -> Self {
        Self {
            cell,
            harvester,
            harvested: Joules::ZERO,
            last_update: SimTime::ZERO,
            last_consumed: Joules::ZERO,
            browned_out: None,
            brownout_count: 0,
        }
    }

    /// Present battery state of charge.
    pub fn soc(&self) -> f64 {
        self.cell.state_of_charge()
    }

    /// Total energy delivered into the cell by the harvester (after the
    /// rectifier).
    pub fn harvested(&self) -> Joules {
        self.harvested
    }

    /// When the node browned out, if it is currently held in reset.
    pub fn browned_out_at(&self) -> Option<SimTime> {
        self.browned_out
    }

    /// Brown-out events over the node's lifetime.
    pub fn brownout_count(&self) -> u32 {
        self.brownout_count
    }

    /// Whether the supervisor is currently holding the stack in reset.
    pub fn held(&self) -> bool {
        self.browned_out.is_some()
    }

    /// The cell's unloaded terminal voltage (the VBAT rail level).
    pub(super) fn terminal_voltage(&self) -> Volts {
        self.cell.terminal_voltage(Amps::ZERO)
    }

    /// The cell rides on the rim at tire temperature: cold stiffens it,
    /// heat leaks it (automotive reality).
    pub(super) fn set_temperature(&mut self, t: Celsius) {
        self.cell.set_temperature(t);
    }

    /// Settles harvest and consumption into the cell over the span since
    /// the last settle. Returns `false` (and does nothing) when no time
    /// has elapsed; the harvest path routes through the switch board's
    /// rectifier.
    pub(super) fn settle(
        &mut self,
        now: SimTime,
        vbat: Volts,
        consumed_total: Joules,
        switch: &SwitchBoard,
    ) -> bool {
        let dt = now
            .checked_duration_since(self.last_update)
            .unwrap_or(SimDuration::ZERO)
            .as_seconds();
        if dt.value() <= 0.0 {
            return false;
        }
        // Harvest: average source power over the interval, through the
        // chain's rectifier.
        let mut charge_current = Amps::ZERO;
        if let Some(h) = &self.harvester {
            let raw = h.average_power(self.last_update.as_seconds(), now.as_seconds(), 16);
            let delivered = switch.harvest(raw, vbat);
            self.harvested += delivered * dt;
            charge_current = delivered / vbat;
        }
        let drawn = consumed_total - self.last_consumed;
        self.last_consumed = consumed_total;
        let discharge_current = drawn / dt / vbat;
        self.cell.step(charge_current - discharge_current, dt);
        self.last_update = now;
        true
    }

    /// Supply supervision: below 1.05 V the pump can no longer hold the
    /// rails; the node is held in reset until the cell recovers to 1.15 V
    /// (hysteresis), at which point the firmware cold-boots.
    pub(super) fn supervise(&mut self, now: SimTime) -> SupervisorVerdict {
        let ocv = self.cell.open_circuit_voltage();
        match self.browned_out {
            None => {
                if ocv < Volts::new(1.05) {
                    self.browned_out = Some(now);
                    self.brownout_count += 1;
                    SupervisorVerdict::BrownedOut
                } else {
                    SupervisorVerdict::Unchanged
                }
            }
            Some(_) => {
                if ocv >= Volts::new(1.15) {
                    self.browned_out = None;
                    SupervisorVerdict::Recovered
                } else {
                    SupervisorVerdict::Unchanged
                }
            }
        }
    }
}

impl Board for StorageBoard {
    fn name(&self) -> &'static str {
        "storage"
    }

    fn export_metrics(&self, metrics: &mut Metrics) {
        metrics.inc(
            keys::BOARD_STORAGE_BROWNOUTS,
            u64::from(self.brownout_count),
        );
        metrics.add(keys::BOARD_STORAGE_SOC, self.soc());
        metrics.add(keys::BOARD_STORAGE_HARVESTED_UJ, self.harvested.micro());
    }
}
