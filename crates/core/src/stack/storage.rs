//! The storage board: NiMH button cell, harvester, and the supply
//! supervisor (§3, §5).

use super::switch::SwitchBoard;
use super::Board;
use crate::node::{HarvesterKind, NodeConfig};
use picocube_harvest::{ElectromagneticShaker, Harvester, SolarCladding, WheelHarvester};
use picocube_sim::{SimDuration, SimTime};
use picocube_storage::{NimhCell, StorageElement};
use picocube_telemetry::Metrics;
use picocube_units::{Amps, Celsius, Joules, Volts};

/// Builds the configured harvester, if any.
pub(super) fn harvester_for(config: &NodeConfig) -> Option<Box<dyn Harvester>> {
    match &config.harvester {
        HarvesterKind::Automotive => Some(Box::new(WheelHarvester::automotive(
            config.drive_cycle.clone(),
        ))),
        HarvesterKind::Bicycle => Some(Box::new(WheelHarvester::bicycle(
            config.drive_cycle.clone(),
        ))),
        HarvesterKind::Solar(light) => Some(Box::new(SolarCladding::five_faces(*light))),
        HarvesterKind::Shaker => Some(Box::new(ElectromagneticShaker::bench_450uw())),
        HarvesterKind::None => None,
    }
}

/// What the supply supervisor decided after a battery settle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorVerdict {
    /// No threshold was crossed; the stack carries on.
    Unchanged,
    /// The cell fell below the hold threshold: the stack must be held in
    /// reset with every rail unloaded.
    BrownedOut,
    /// The cell recovered past the restart threshold: the stack must
    /// cold-boot and reschedule its boards.
    Recovered,
}

/// The storage board: the NiMH cell, the harvester charging it, and the
/// supply supervisor that holds the stack in reset on deep discharge.
pub struct StorageBoard {
    battery: NimhCell,
    harvester: Option<Box<dyn Harvester>>,
    harvested: Joules,
    last_update: SimTime,
    last_consumed: Joules,
    browned_out: Option<SimTime>,
    brownout_count: u32,
}

impl core::fmt::Debug for StorageBoard {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StorageBoard")
            .field("soc", &self.soc())
            .field("harvester", &self.harvester.is_some())
            .field("harvested", &self.harvested)
            .field("browned_out", &self.browned_out)
            .field("brownout_count", &self.brownout_count)
            .finish_non_exhaustive()
    }
}

impl StorageBoard {
    pub(super) fn new(battery: NimhCell, harvester: Option<Box<dyn Harvester>>) -> Self {
        Self {
            battery,
            harvester,
            harvested: Joules::ZERO,
            last_update: SimTime::ZERO,
            last_consumed: Joules::ZERO,
            browned_out: None,
            brownout_count: 0,
        }
    }

    /// Present battery state of charge.
    pub fn soc(&self) -> f64 {
        self.battery.state_of_charge()
    }

    /// Total energy delivered into the cell by the harvester (after the
    /// rectifier).
    pub fn harvested(&self) -> Joules {
        self.harvested
    }

    /// When the node browned out, if it is currently held in reset.
    pub fn browned_out_at(&self) -> Option<SimTime> {
        self.browned_out
    }

    /// Brown-out events over the node's lifetime.
    pub fn brownout_count(&self) -> u32 {
        self.brownout_count
    }

    /// Whether the supervisor is currently holding the stack in reset.
    pub fn held(&self) -> bool {
        self.browned_out.is_some()
    }

    /// The cell's unloaded terminal voltage (the VBAT rail level).
    pub(super) fn terminal_voltage(&self) -> Volts {
        self.battery.terminal_voltage(Amps::ZERO)
    }

    /// The cell rides on the rim at tire temperature: cold stiffens it,
    /// heat leaks it (automotive reality).
    pub(super) fn set_temperature(&mut self, t: Celsius) {
        self.battery.set_temperature(t);
    }

    /// Settles harvest and consumption into the cell over the span since
    /// the last settle. Returns `false` (and does nothing) when no time
    /// has elapsed; the harvest path routes through the switch board's
    /// rectifier.
    pub(super) fn settle(
        &mut self,
        now: SimTime,
        vbat: Volts,
        consumed_total: Joules,
        switch: &SwitchBoard,
    ) -> bool {
        let dt = now
            .checked_duration_since(self.last_update)
            .unwrap_or(SimDuration::ZERO)
            .as_seconds();
        if dt.value() <= 0.0 {
            return false;
        }
        // Harvest: average source power over the interval, through the
        // chain's rectifier.
        let mut charge_current = Amps::ZERO;
        if let Some(h) = &self.harvester {
            let raw = h.average_power(self.last_update.as_seconds(), now.as_seconds(), 16);
            let delivered = switch.harvest(raw, vbat);
            self.harvested += delivered * dt;
            charge_current = delivered / vbat;
        }
        let drawn = consumed_total - self.last_consumed;
        self.last_consumed = consumed_total;
        let discharge_current = drawn / dt / vbat;
        self.battery.step(charge_current - discharge_current, dt);
        self.last_update = now;
        true
    }

    /// Supply supervision: below 1.05 V the pump can no longer hold the
    /// rails; the node is held in reset until the cell recovers to 1.15 V
    /// (hysteresis), at which point the firmware cold-boots.
    pub(super) fn supervise(&mut self, now: SimTime) -> SupervisorVerdict {
        let ocv = self.battery.open_circuit_voltage();
        match self.browned_out {
            None => {
                if ocv < Volts::new(1.05) {
                    self.browned_out = Some(now);
                    self.brownout_count += 1;
                    SupervisorVerdict::BrownedOut
                } else {
                    SupervisorVerdict::Unchanged
                }
            }
            Some(_) => {
                if ocv >= Volts::new(1.15) {
                    self.browned_out = None;
                    SupervisorVerdict::Recovered
                } else {
                    SupervisorVerdict::Unchanged
                }
            }
        }
    }
}

impl Board for StorageBoard {
    fn name(&self) -> &'static str {
        "storage"
    }

    fn export_metrics(&self, metrics: &mut Metrics) {
        metrics.inc("board.storage.brownouts", u64::from(self.brownout_count));
        metrics.add("board.storage.soc", self.soc());
        metrics.add("board.storage.harvested_uj", self.harvested.micro());
    }
}
