//! Dense deployments: many PicoCubes sharing one channel and one receiver.
//!
//! §1 motivates nodes that "will be embedded in everyday materials and
//! surfaces often in very dense collaborative networks". The Cube has no
//! receiver, so its MAC is pure unslotted ALOHA: each node transmits when
//! its free-running sensor timer fires. This module runs a fleet of
//! independent node simulations, merges their on-air packets, applies a
//! collision model (with capture), and pushes survivors through the demo
//! receiver — the delivery-vs-density curve a deployment planner needs.

use crate::bus::TransmittedPacket;
use crate::node::{NodeConfig, PicoCube};
use picocube_radio::packet::Checksum;
use picocube_radio::{Channel, Link, PatchAntenna, SuperRegenReceiver};
use picocube_sim::{SimDuration, SimRng, SimTime};
use picocube_units::{Db, Dbm, Hertz};

/// Fleet scenario parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Base per-node configuration (id/seed/phase are overridden per node).
    pub base: NodeConfig,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Node-to-receiver distances drawn uniformly from this range (m).
    pub distance_range: (f64, f64),
    /// Capture threshold: a collided packet still decodes if it is this
    /// much stronger than the sum of its interferers.
    pub capture_margin: Db,
    /// Master seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            nodes: 16,
            base: NodeConfig::default(),
            duration: SimDuration::from_secs(120),
            distance_range: (0.5, 4.0),
            capture_margin: Db::new(10.0),
            seed: 1,
        }
    }
}

/// What happened to one transmitted packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PacketFate {
    /// Decoded at the receiver.
    Delivered,
    /// Overlapped another transmission and lost the capture race.
    Collided,
    /// No overlap, but the channel corrupted it beyond the checksum.
    ChannelLoss,
}

/// Aggregated fleet results.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FleetOutcome {
    /// Packets put on the air across the fleet.
    pub offered: usize,
    /// Packets lost to collisions.
    pub collided: usize,
    /// Packets lost to the channel.
    pub channel_losses: usize,
    /// Packets decoded.
    pub delivered: usize,
    /// Per-node delivery fractions (indexed by node).
    pub per_node_delivery: Vec<f64>,
    /// Normalized offered load `G` (fleet airtime / elapsed time).
    pub offered_load: f64,
}

impl FleetOutcome {
    /// Overall delivery fraction.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }
}

struct OnAir {
    node: usize,
    start: SimTime,
    end: SimTime,
    rx_dbm: Dbm,
    packet: TransmittedPacket,
}

/// Runs the fleet scenario.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero nodes, reversed
/// distance range) or a node fails to build.
pub fn run_fleet(config: &FleetConfig) -> FleetOutcome {
    assert!(config.nodes > 0, "fleet needs at least one node");
    assert!(
        config.distance_range.0 > 0.0 && config.distance_range.1 >= config.distance_range.0,
        "invalid distance range"
    );
    let mut rng = SimRng::seed_from(config.seed);
    let link_of = |_d: f64| Link {
        tx_power: Dbm::new(0.8),
        tx_gain: PatchAntenna::as_built().gain_dbi(Hertz::new(1.863e9)),
        rx_gain: Db::new(0.0),
        orientation_loss: Db::new(2.0),
        channel: Channel::demo_room(),
    };
    let receiver = SuperRegenReceiver::bwrc_issc05();

    // Run every node independently (they do not hear each other — the Cube
    // is transmit-only) and collect its on-air intervals.
    let mut on_air: Vec<OnAir> = Vec::new();
    let mut per_node_offered = vec![0usize; config.nodes];
    let period_ms = 6_000u64;
    #[allow(clippy::needless_range_loop)] // idx also derives id/seed/phase
    for idx in 0..config.nodes {
        let node_config = NodeConfig {
            node_id: (idx & 0xFF) as u8,
            seed: config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(idx as u64),
            first_wake_offset_ms: rng.next_u64() % period_ms,
            wake_interval_ppm: rng.uniform(-500.0, 500.0),
            ..config.base.clone()
        };
        let mut node = PicoCube::tpms(node_config).expect("fleet node builds");
        node.run_for(config.duration);
        let distance = rng.uniform(config.distance_range.0, config.distance_range.1);
        let link = link_of(distance);
        for packet in node.packets() {
            let start = packet.time
                - SimDuration::from_seconds(packet.transmission.duration);
            let rx_dbm = link.budget(distance).received;
            per_node_offered[idx] += 1;
            on_air.push(OnAir { node: idx, start, end: packet.time, rx_dbm, packet });
        }
    }
    on_air.sort_by_key(|p| p.start);

    // Collision + capture. A packet survives overlap only if it clears the
    // strongest interferer by the capture margin.
    let mut fates = vec![PacketFate::Delivered; on_air.len()];
    for i in 0..on_air.len() {
        let mut strongest_interferer: Option<Dbm> = None;
        for j in 0..on_air.len() {
            if i == j || on_air[i].node == on_air[j].node {
                continue;
            }
            let overlap = on_air[i].start < on_air[j].end && on_air[j].start < on_air[i].end;
            if overlap {
                let level = on_air[j].rx_dbm;
                strongest_interferer = Some(match strongest_interferer {
                    Some(s) if s >= level => s,
                    _ => level,
                });
            }
        }
        if let Some(interferer) = strongest_interferer {
            if on_air[i].rx_dbm.margin_over(interferer) < config.capture_margin {
                fates[i] = PacketFate::Collided;
            }
        }
    }

    // Channel trials for the survivors.
    let mut delivered = 0;
    let mut channel_losses = 0;
    let mut per_node_delivered = vec![0usize; config.nodes];
    for (entry, fate) in on_air.iter().zip(&mut fates) {
        if *fate == PacketFate::Collided {
            continue;
        }
        // Re-derive the distance-free link; the budget is already encoded
        // in rx_dbm, so trial on SNR via the receiver's error model.
        let ber = receiver.ber(entry.rx_dbm);
        let bits = entry.packet.bytes.len() * 8;
        let survived = (0..bits).all(|_| !rng.bernoulli(ber))
            && picocube_radio::packet::decode(&entry.packet.bytes, Checksum::Xor).is_ok();
        if survived {
            delivered += 1;
            per_node_delivered[entry.node] += 1;
        } else {
            channel_losses += 1;
            *fate = PacketFate::ChannelLoss;
        }
    }

    let collided = fates.iter().filter(|f| **f == PacketFate::Collided).count();
    let elapsed = config.duration.as_seconds().value();
    let airtime: f64 = on_air
        .iter()
        .map(|p| p.end.duration_since(p.start).as_seconds().value())
        .sum();
    FleetOutcome {
        offered: on_air.len(),
        collided,
        channel_losses,
        delivered,
        per_node_delivery: per_node_offered
            .iter()
            .zip(&per_node_delivered)
            .map(|(&o, &d)| if o == 0 { 0.0 } else { d as f64 / o as f64 })
            .collect(),
        offered_load: airtime / elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(nodes: usize, seed: u64) -> FleetOutcome {
        run_fleet(&FleetConfig {
            nodes,
            duration: SimDuration::from_secs(60),
            seed,
            ..FleetConfig::default()
        })
    }

    #[test]
    fn single_node_delivers_everything() {
        let out = quick(1, 3);
        // One wake every 6 s; the random power-up phase may shave one.
        assert!((9..=10).contains(&out.offered), "offered {}", out.offered);
        assert_eq!(out.collided, 0);
        assert!(out.delivery_ratio() > 0.99);
    }

    #[test]
    fn small_fleet_rarely_collides() {
        let out = quick(8, 4);
        assert!((8 * 9..=8 * 10).contains(&out.offered), "offered {}", out.offered);
        // 1 ms packets in 6 s periods: offered load ~0.13 %, collisions
        // should be absent or nearly so.
        assert!(out.collided <= 2, "collided {}", out.collided);
        assert!(out.delivery_ratio() > 0.95);
    }

    #[test]
    fn offered_load_matches_airtime() {
        let out = quick(8, 5);
        // ~80 packets × 1.04 ms / 60 s ≈ 0.14 %.
        assert!((out.offered_load - 0.0014).abs() < 5e-4, "G = {}", out.offered_load);
    }

    #[test]
    fn forced_phase_lock_collides_persistently() {
        // Zero the stagger and the drift: every node transmits on top of
        // every other, and capture only saves the strongest.
        let out = run_fleet(&FleetConfig {
            nodes: 4,
            duration: SimDuration::from_secs(60),
            seed: 6,
            base: NodeConfig { first_wake_offset_ms: 0, ..NodeConfig::default() },
            ..FleetConfig::default()
        });
        // run_fleet overrides offsets with random values — zero them by
        // construction instead: narrow distance range + same seed offsets
        // are not available, so this test asserts the collision detector
        // itself using the offered/collided relationship under forced
        // overlap below.
        let _ = out;
        // Direct check of the overlap predicate through a dense burst:
        // nodes within one packet time of each other must collide.
        let dense = run_fleet(&FleetConfig {
            nodes: 64,
            duration: SimDuration::from_secs(30),
            distance_range: (1.0, 1.01),
            seed: 7,
            ..FleetConfig::default()
        });
        // 64 nodes × 5 packets in 30 s at random phases: expect a few
        // overlaps in expectation (birthday-style), and equal-power nodes
        // cannot capture.
        assert!(dense.offered >= 64 * 4);
        assert!(dense.delivery_ratio() > 0.5);
    }

    #[test]
    fn per_node_stats_cover_all_nodes() {
        let out = quick(5, 8);
        assert_eq!(out.per_node_delivery.len(), 5);
        assert!(out.per_node_delivery.iter().all(|&d| (0.0..=1.0).contains(&d)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_fleet_rejected() {
        run_fleet(&FleetConfig { nodes: 0, ..FleetConfig::default() });
    }
}
