//! Dense deployments: many PicoCubes sharing one channel and one receiver.
//!
//! §1 motivates nodes that "will be embedded in everyday materials and
//! surfaces often in very dense collaborative networks". The Cube has no
//! receiver, so its MAC is pure unslotted ALOHA: each node transmits when
//! its free-running sensor timer fires. This module runs a fleet of
//! independent node simulations, merges their on-air packets, applies a
//! collision model (with capture), and pushes survivors through the demo
//! receiver — the delivery-vs-density curve a deployment planner needs.
//!
//! # Streaming two-phase engine
//!
//! The fleet runs in two phases so node simulations can execute on worker
//! threads without changing any result:
//!
//! 1. **Per-node simulation** ([`simulate_node`]): each node is built and
//!    run in isolation (the Cube is transmit-only, so nodes never interact
//!    mid-simulation) and reduced to a plain-data [`NodeOnAir`] — its
//!    on-air packet intervals and receive levels. Every random draw a node
//!    makes comes from streams derived *only* from `(master seed, node
//!    index)` via [`SimRng::stream`], never from a shared generator, so
//!    the draws are identical no matter which thread runs the node or in
//!    what order nodes finish.
//! 2. **Merge** ([`merge_fleet`]): the per-node packet lists are combined,
//!    sorted by `(start, node)`, and swept once for collisions/capture;
//!    survivors then face the receiver's bit-error channel using a
//!    dedicated merge RNG stream. This phase is single-threaded and
//!    operates on data whose order is already canonical, so it is
//!    deterministic by construction.
//!
//! Phase 1 *streams*: a node's stack is built on claim, simulated, reduced
//! to a compact per-packet record list plus its telemetry, folded into the
//! run's [accumulator](accumulator) in node order, and torn down before
//! the worker claims its next chunk. Live state is O(workers) node stacks
//! plus the O(offered packets) record list the merge irreducibly consumes
//! — never O(nodes) stacks or telemetry registries — which is what lets
//! one machine sweep million-node fleets. A bounded reorder window keeps
//! fast workers from buffering unboundedly ahead of the in-order fold.
//!
//! [`FleetConfig::parallelism`] selects serial or threaded execution of
//! phase 1; both paths produce bit-identical [`FleetOutcome`]s. The fold
//! can also be cut and serialized mid-run: see [`FleetCheckpoint`] and
//! [`run_fleet_resumable`], which are bit-identical to uninterrupted runs.

mod accumulator;
mod batch;
mod checkpoint;

pub(crate) use accumulator::NodeCounts;

pub use checkpoint::{
    run_fleet_partial, run_fleet_resumable, CheckpointError, FleetCheckpoint, StackCheckpoint,
};

use crate::bus::TransmittedPacket;
use crate::node::{BuildError, NodeConfig, PicoCube};
use crate::stack::{AppBoard, NodeFault, RunOutcome, StackBuilder};
use accumulator::{FleetAccumulator, NodeYield, PacketRecord};
use picocube_radio::{Channel, Link, PatchAntenna, SuperRegenReceiver};
use picocube_sensors::MotionScenario;
use picocube_sim::{SimDuration, SimRng, SimTime};
use picocube_telemetry::{keys, EventKind, Metrics, NullRecorder, Recorder, TelemetryBuffer};
use picocube_units::{Db, Dbm, Gs, Hertz, Meters, Seconds};
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};

/// How fleet phase 1 (per-node simulation) is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Simulate nodes one after another on the calling thread.
    Serial,
    /// Shard nodes across this many worker threads.
    Threads(usize),
}

impl Parallelism {
    /// Threaded execution sized to the machine (`available_parallelism`,
    /// falling back to serial when it cannot be determined).
    pub fn available() -> Self {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => Self::Threads(n.get()),
            _ => Self::Serial,
        }
    }

    /// The number of worker threads this mode uses. `Threads(0)` is
    /// rejected by [`FleetConfig::validate`] before the engine ever asks.
    pub(crate) fn workers(self) -> usize {
        match self {
            Self::Serial => 1,
            Self::Threads(n) => {
                debug_assert!(n > 0, "Threads(0) escaped FleetConfig::validate");
                n
            }
        }
    }
}

/// Which application board every node in a fleet (or mesh) carries.
///
/// Plain data — `Copy`, `Send`, JSON-able — unlike the stack-level
/// [`AppBoard`], which holds a built [`MotionScenario`]. The engine lowers
/// this onto [`AppBoard`] per node, seeding each node's motion scenario
/// from that node's own seed stream so fleets of motion nodes decorrelate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FleetApp {
    /// Tire-pressure stack (SP12 board, TPMS firmware) — the default.
    #[default]
    Tpms,
    /// §6 motion-demo stack (SCA3000 board, motion firmware).
    Motion {
        /// Mean rest span between handling bouts, seconds.
        rest_s: f64,
        /// Mean handled (shaken) span, seconds.
        handled_s: f64,
        /// Peak handling acceleration, g.
        vigor_g: f64,
    },
    /// Timer-paced beacon stack (SCA3000 board, beacon firmware).
    Beacon {
        /// Mean rest span between handling bouts, seconds.
        rest_s: f64,
        /// Mean handled (shaken) span, seconds.
        handled_s: f64,
        /// Peak handling acceleration, g.
        vigor_g: f64,
        /// Beacon period programmed into Timer A, seconds.
        period_s: u16,
    },
}

impl FleetApp {
    /// Checks the parameters [`MotionScenario::new`] would otherwise
    /// assert on, so spec-driven configs fail typed instead of panicking.
    pub(crate) fn validate(&self) -> Result<(), FleetConfigError> {
        match *self {
            Self::Tpms => Ok(()),
            Self::Motion {
                rest_s,
                handled_s,
                vigor_g,
            }
            | Self::Beacon {
                rest_s,
                handled_s,
                vigor_g,
                ..
            } => {
                if !(rest_s.is_finite() && rest_s > 0.0 && handled_s.is_finite() && handled_s > 0.0)
                {
                    return Err(FleetConfigError::InvalidApp(
                        "motion rest/handled spans must be positive",
                    ));
                }
                if !(vigor_g.is_finite() && vigor_g >= 0.0) {
                    return Err(FleetConfigError::InvalidApp(
                        "motion vigor must be non-negative",
                    ));
                }
                if let Self::Beacon { period_s: 0, .. } = self {
                    return Err(FleetConfigError::InvalidApp(
                        "beacon period must be non-zero",
                    ));
                }
                Ok(())
            }
        }
    }

    /// Lowers onto the stack-level board, seeding the motion scenario from
    /// the node's own seed. Parameters must have passed [`Self::validate`].
    pub(crate) fn board(&self, node_seed: u64) -> AppBoard {
        match *self {
            Self::Tpms => AppBoard::Tpms,
            Self::Motion {
                rest_s,
                handled_s,
                vigor_g,
            } => AppBoard::Motion {
                scenario: MotionScenario::new(
                    Seconds::new(rest_s),
                    Seconds::new(handled_s),
                    Gs::new(vigor_g),
                    node_seed,
                ),
            },
            Self::Beacon {
                rest_s,
                handled_s,
                vigor_g,
                period_s,
            } => AppBoard::Beacon {
                scenario: MotionScenario::new(
                    Seconds::new(rest_s),
                    Seconds::new(handled_s),
                    Gs::new(vigor_g),
                    node_seed,
                ),
                period_s,
            },
        }
    }
}

/// Builds one fleet/mesh node's stack: the per-node config (already
/// specialized with its identity and seed stream) under the configured
/// application board.
pub(crate) fn build_fleet_node(config: NodeConfig, app: FleetApp) -> Result<PicoCube, BuildError> {
    let seed = config.seed;
    StackBuilder::new(config).app(app.board(seed)).build()
}

/// Fleet scenario parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Base per-node configuration (id/seed/phase are overridden per node).
    pub base: NodeConfig,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Node-to-receiver distances drawn uniformly from this range (m).
    pub distance_range: (f64, f64),
    /// Capture threshold: a collided packet still decodes if it is this
    /// much stronger than the sum of its interferers.
    pub capture_margin: Db,
    /// Master seed.
    pub seed: u64,
    /// Phase-1 execution mode. Serial and threaded runs of the same
    /// configuration produce bit-identical outcomes.
    pub parallelism: Parallelism,
    /// Application board every node carries (motion scenarios are seeded
    /// per node).
    pub app: FleetApp,
    /// Half-width of the per-node wake-timer tolerance draw, ppm. The
    /// default 500 reproduces the historical `uniform(-500, 500)` draw
    /// bit-identically; widening it models worse clock drift (chaos).
    pub wake_ppm_range: f64,
    /// Whether to keep O(nodes) per-node tallies and populate
    /// [`FleetOutcome::per_node_delivery`]. Off by default: a streaming
    /// million-node run should not allocate a million-entry vector for a
    /// curve most callers never read. Per-packet, per-node fates still
    /// stream to the run's [`Recorder`] as [`EventKind::PacketFate`]
    /// events regardless, so an O(1)-memory sink can rebuild any per-node
    /// statistic offline.
    pub per_node_stats: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            nodes: 16,
            base: NodeConfig::default(),
            duration: SimDuration::from_secs(120),
            distance_range: (0.5, 4.0),
            capture_margin: Db::new(10.0),
            seed: 1,
            parallelism: Parallelism::Serial,
            app: FleetApp::Tpms,
            wake_ppm_range: 500.0,
            per_node_stats: false,
        }
    }
}

/// Why a fleet configuration was rejected by [`FleetConfig::validate`] (and
/// therefore by [`FleetConfigBuilder::build`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetConfigError {
    /// The fleet had zero nodes.
    ZeroNodes,
    /// The simulated duration was zero.
    NonPositiveDuration,
    /// `Parallelism::Threads(0)` was requested.
    ZeroThreads,
    /// The distance range was non-positive or reversed.
    InvalidDistanceRange,
    /// The application-board parameters were unphysical (the inner string
    /// names the violated invariant).
    InvalidApp(&'static str),
    /// The wake-timer tolerance half-width was negative or non-finite.
    InvalidWakePpmRange,
}

impl core::fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Self::ZeroNodes => "fleet needs at least one node",
            Self::NonPositiveDuration => "fleet duration must be positive",
            Self::ZeroThreads => "Parallelism::Threads needs at least one thread",
            Self::InvalidDistanceRange => {
                "invalid distance range: distances must be positive and ascending"
            }
            Self::InvalidApp(what) => what,
            Self::InvalidWakePpmRange => {
                "wake timer tolerance half-width must be finite and non-negative"
            }
        })
    }
}

impl std::error::Error for FleetConfigError {}

impl FleetConfig {
    /// Starts a validating builder seeded with [`FleetConfig::default`].
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder {
            config: Self::default(),
        }
    }

    /// Checks the invariants the fleet engine relies on, returning the
    /// first violation. [`run_fleet`] still asserts (for back-compat with
    /// struct-literal construction); the builder routes through this.
    pub fn validate(&self) -> Result<(), FleetConfigError> {
        if self.nodes == 0 {
            return Err(FleetConfigError::ZeroNodes);
        }
        if self.duration.is_zero() {
            return Err(FleetConfigError::NonPositiveDuration);
        }
        if self.parallelism == Parallelism::Threads(0) {
            return Err(FleetConfigError::ZeroThreads);
        }
        if !(self.distance_range.0 > 0.0 && self.distance_range.1 >= self.distance_range.0) {
            return Err(FleetConfigError::InvalidDistanceRange);
        }
        self.app.validate()?;
        if !(self.wake_ppm_range.is_finite() && self.wake_ppm_range >= 0.0) {
            return Err(FleetConfigError::InvalidWakePpmRange);
        }
        Ok(())
    }
}

/// Builder for [`FleetConfig`] that validates on
/// [`build`](FleetConfigBuilder::build): degenerate scenarios (zero nodes, zero
/// duration, zero worker threads, bad distance ranges) come back as a
/// [`FleetConfigError`] instead of a panic deep inside the engine.
///
/// # Examples
///
/// ```
/// use picocube_node::{FleetConfig, Parallelism};
/// use picocube_sim::SimDuration;
///
/// let config = FleetConfig::builder()
///     .nodes(64)
///     .duration(SimDuration::from_secs(60))
///     .seed(7)
///     .parallelism(Parallelism::Threads(4))
///     .build()
///     .expect("valid fleet scenario");
/// assert_eq!(config.nodes, 64);
/// assert!(FleetConfig::builder().nodes(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    config: FleetConfig,
}

impl FleetConfigBuilder {
    /// Sets the number of nodes.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.config.nodes = nodes;
        self
    }

    /// Sets the base per-node configuration (id/seed/phase are overridden
    /// per node).
    pub fn base(mut self, base: NodeConfig) -> Self {
        self.config.base = base;
        self
    }

    /// Sets the simulated duration.
    pub fn duration(mut self, duration: SimDuration) -> Self {
        self.config.duration = duration;
        self
    }

    /// Sets the node-to-receiver distance range in meters.
    pub fn distance_range(mut self, min_m: f64, max_m: f64) -> Self {
        self.config.distance_range = (min_m, max_m);
        self
    }

    /// Sets the capture threshold.
    pub fn capture_margin(mut self, margin: Db) -> Self {
        self.config.capture_margin = margin;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the phase-1 execution mode.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.config.parallelism = parallelism;
        self
    }

    /// Sets the application board every node carries.
    pub fn app(mut self, app: FleetApp) -> Self {
        self.config.app = app;
        self
    }

    /// Sets the half-width of the per-node wake-timer tolerance draw, ppm.
    pub fn wake_ppm_range(mut self, half_width_ppm: f64) -> Self {
        self.config.wake_ppm_range = half_width_ppm;
        self
    }

    /// Opts into the O(nodes) [`FleetOutcome::per_node_delivery`] vector.
    pub fn per_node_stats(mut self, enabled: bool) -> Self {
        self.config.per_node_stats = enabled;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<FleetConfig, FleetConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// What happened to one transmitted packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Decoded at the receiver.
    Delivered,
    /// Overlapped another transmission and lost the capture race.
    Collided,
    /// No overlap, but the channel corrupted it beyond the checksum.
    ChannelLoss,
}

/// Aggregated fleet results.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Packets put on the air across the fleet.
    pub offered: usize,
    /// Packets lost to collisions.
    pub collided: usize,
    /// Packets lost to the channel.
    pub channel_losses: usize,
    /// Packets decoded.
    pub delivered: usize,
    /// Nodes whose simulation latched a [`NodeFault`] before the run ended
    /// (their packets up to the fault still count toward `offered`).
    pub faulted: usize,
    /// Per-node delivery fractions (indexed by node). Empty unless the run
    /// opted in via [`FleetConfig::per_node_stats`] — the only O(nodes)
    /// output the engine can produce, kept off the streaming path by
    /// default.
    pub per_node_delivery: Vec<f64>,
    /// Normalized offered load `G` (fleet airtime / elapsed time).
    pub offered_load: f64,
}

impl FleetOutcome {
    /// Overall delivery fraction.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }
}

/// One packet interval on the shared channel.
#[derive(Debug, Clone)]
pub(crate) struct OnAir {
    node: usize,
    start: SimTime,
    end: SimTime,
    rx_dbm: Dbm,
    packet: TransmittedPacket,
}

/// Plain-data result of one node's isolated simulation (phase 1). `Send`,
/// unlike the node itself, so worker threads can hand it back.
#[derive(Debug, Clone)]
pub struct NodeOnAir {
    /// Fleet index of the node.
    pub node: usize,
    /// `(start, end, receive level)` per packet, in transmission order,
    /// with the frame bytes and RF accounting.
    packets: Vec<OnAir>,
    /// The node's drained telemetry: metric totals plus (when the fleet
    /// run's recorder wants them) its attributed event stream.
    telemetry: TelemetryBuffer,
    /// The fault that ended the node's simulation early, if any.
    fault: Option<NodeFault>,
}

impl NodeOnAir {
    /// The fault that ended this node's simulation early, if any. A faulted
    /// node's packets up to the fault instant are still on the air.
    pub fn fault(&self) -> Option<NodeFault> {
        self.fault
    }
}

// The parallel engine moves these across thread boundaries; keep the
// guarantee explicit so a non-Send field shows up here, not in a distant
// spawn call.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<NodeOnAir>();
    assert_send::<FleetConfig>();
    assert_send::<FleetOutcome>();
};

/// Seed-derivation domains (see `DESIGN.md`): node `i` draws its firmware
/// noise from stream `2 * i`, its deployment parameters (power-up phase,
/// timer tolerance, distance) from stream `2 * i + 1`, and the merge phase
/// uses the reserved stream [`MERGE_STREAM`]. Each stream depends only on
/// `(master, index)`, so no node's draws shift when another node's
/// consumption changes — the invariant the parallel engine relies on.
pub(crate) fn node_sim_seed(master: u64, node: usize) -> u64 {
    SimRng::stream_seed(master, 2 * node as u64)
}

pub(crate) fn node_setup_rng(master: u64, node: usize) -> SimRng {
    SimRng::stream(master, 2 * node as u64 + 1)
}

/// The concrete [`NodeConfig`] for fleet node `index`: the shared base plus
/// per-node identity, seed stream and deployment jitter drawn from `setup`.
pub(crate) fn fleet_node_config(
    config: &FleetConfig,
    index: usize,
    setup: &mut SimRng,
) -> NodeConfig {
    let period_ms = 6_000u64;
    NodeConfig {
        node_id: (index & 0xFF) as u8,
        seed: node_sim_seed(config.seed, index),
        first_wake_offset_ms: setup.next_u64() % period_ms,
        // Scaled after the draw so the draw count/order is fixed; at the
        // default 500 ppm the factor is exactly 1.0 and the product is
        // bit-identical to the unscaled historical draw.
        wake_interval_ppm: setup.uniform(-500.0, 500.0) * (config.wake_ppm_range / 500.0),
        ..config.base.clone()
    }
}

/// Reserved stream index for the merge phase's channel trials. Odd, and
/// unreachable from `2 * i + 1` for any realistic fleet size.
const MERGE_STREAM: u64 = u64::MAX;

pub(crate) fn link_for_fleet() -> Link {
    Link {
        tx_power: Dbm::new(0.8),
        tx_gain: PatchAntenna::as_built().gain_dbi(Hertz::new(1.863e9)),
        rx_gain: Db::new(0.0),
        orientation_loss: Db::new(2.0),
        channel: Channel::demo_room(),
    }
}

/// Phase 1: builds and runs node `index` in isolation and reduces it to
/// its on-air packet list.
///
/// # Panics
///
/// Panics if the node fails to build.
pub fn simulate_node(config: &FleetConfig, index: usize) -> NodeOnAir {
    simulate_node_instrumented(config, index, false)
}

/// [`simulate_node`], with structured event recording switched on when
/// `record_events` is set. The node's telemetry is drained, attributed to
/// its fleet index and carried in the returned [`NodeOnAir`]; metrics are
/// collected either way.
///
/// # Panics
///
/// Panics if the node fails to build.
pub fn simulate_node_instrumented(
    config: &FleetConfig,
    index: usize,
    record_events: bool,
) -> NodeOnAir {
    let (mut node, setup) = build_node(config, index, record_events);
    let outcome = node.run_for(config.duration);
    package_node(config, index, node, setup, outcome)
}

/// Builds fleet node `index` ready to run, alongside its setup RNG (still
/// needed after the run for the deployment-distance draw).
///
/// # Panics
///
/// Panics if the node fails to build.
pub(crate) fn build_node(
    config: &FleetConfig,
    index: usize,
    record_events: bool,
) -> (PicoCube, SimRng) {
    let mut setup = node_setup_rng(config.seed, index);
    // Per-node fields (id, seed, offsets) cannot invalidate a base config
    // that builds, and `run_fleet_with` probe-builds the base up front.
    let mut node = build_fleet_node(fleet_node_config(config, index, &mut setup), config.app)
        // picocube-lint: allow(L2) documented `# Panics`; base pre-validated by the fleet probe
        .expect("fleet node builds");
    node.set_event_recording(record_events);
    (node, setup)
}

/// Reduces a finished node to its plain-data [`NodeOnAir`]: drains and
/// attributes telemetry, draws the deployment distance (the setup stream's
/// post-run draw — order is part of the RNG contract), and converts the
/// packet log to on-air intervals. Consumes the stack: phase 1 streams,
/// node state never outlives its chunk.
pub(crate) fn package_node(
    config: &FleetConfig,
    index: usize,
    mut node: PicoCube,
    mut setup: SimRng,
    outcome: RunOutcome,
) -> NodeOnAir {
    let mut telemetry = node.drain_telemetry();
    telemetry.attribute_to(index as u32);
    let distance = setup.uniform(config.distance_range.0, config.distance_range.1);
    let link = link_for_fleet();
    let rx_dbm = link.budget(Meters::new(distance)).received;
    let packets = node
        .packets()
        .into_iter()
        .map(|packet| {
            // `time` is the transmission's end; a packet whose modeled
            // duration exceeds its completion timestamp (a transmission
            // already in flight at t=0, or a corrupted report replayed
            // into the merge) clamps to the simulation origin instead of
            // panicking the whole fleet on u64 underflow.
            let start = packet
                .time
                .checked_sub(SimDuration::from_seconds(packet.transmission.duration))
                .unwrap_or(SimTime::ZERO);
            OnAir {
                node: index,
                start,
                end: packet.time,
                rx_dbm,
                packet,
            }
        })
        .collect();
    NodeOnAir {
        node: index,
        packets,
        telemetry,
        fault: outcome.fault(),
    }
}

/// Nodes per work-stealing chunk claim. Small enough that a worker stuck
/// on an expensive node (a long brown-out hold, a fault spiral) leaves the
/// rest of the range claimable by its idle peers; large enough that the
/// atomic claim is noise against a node simulation.
const STEAL_CHUNK: usize = 4;

/// How phase 1's work was divided across workers — the scheduler's shape,
/// as observed on the wall clock.
///
/// Which worker claimed which chunk depends on OS scheduling, so these
/// numbers (unlike everything in [`FleetOutcome`] and the merged
/// [`Metrics`]) are **not** deterministic across runs. They ride back on
/// this side channel precisely so the merged telemetry registry can stay
/// bit-identical between serial and threaded runs; benches and diagnostics
/// fold them into their own registries via
/// [`FleetSchedStats::export_metrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSchedStats {
    /// Worker threads phase 1 ran on (1 = serial on the caller).
    pub workers: usize,
    /// Nodes per claimed chunk (`STEAL_CHUNK`, or the whole range when
    /// serial).
    pub chunk_size: usize,
    /// Chunks the node range was divided into.
    pub chunks: usize,
    /// Chunks claimed by each worker, indexed by spawn order.
    pub claims: Vec<u64>,
}

impl FleetSchedStats {
    fn serial(nodes: usize) -> Self {
        Self {
            workers: 1,
            chunk_size: nodes,
            chunks: usize::from(nodes > 0),
            claims: vec![u64::from(nodes > 0)],
        }
    }

    /// Chunks claimed beyond each worker's even share — work that a static
    /// contiguous sharding would have left stranded on a slow worker.
    pub fn steals(&self) -> u64 {
        let fair = (self.chunks as u64).div_ceil(self.workers.max(1) as u64);
        self.claims.iter().map(|&c| c.saturating_sub(fair)).sum()
    }

    /// Publishes the scheduler shape under `fleet.sched.*`. Callers fold
    /// this into their *own* registry (a bench report, a diagnostics dump)
    /// — never into the merged fleet registry, whose serial/threaded
    /// bit-identity these wall-clock-dependent numbers would break.
    pub fn export_metrics(&self, metrics: &mut Metrics) {
        metrics.inc(keys::FLEET_SCHED_WORKERS, self.workers as u64);
        metrics.inc(keys::FLEET_SCHED_CHUNKS, self.chunks as u64);
        metrics.inc(keys::FLEET_SCHED_CHUNK_SIZE, self.chunk_size as u64);
        metrics.inc(keys::FLEET_SCHED_STEALS, self.steals());
    }
}

/// Shared scheduler state for the streaming threaded path, behind one
/// mutex: the chunk-claim cursor, the fold frontier, and the bounded
/// reorder buffer of finished-but-not-yet-foldable chunks.
struct StreamState<'acc> {
    /// Next chunk index to hand to a claiming worker.
    next_chunk: usize,
    /// Lowest chunk index not yet folded into the accumulator.
    floor_chunk: usize,
    /// Finished chunks waiting for the fold frontier to reach them.
    pending: BTreeMap<usize, Vec<NodeYield>>,
    /// The run's in-order fold.
    acc: &'acc mut FleetAccumulator,
}

/// Runs phase 1 for nodes `[acc.nodes_done(), upto)`, honoring
/// `config.parallelism`, folding every node's yield into `acc` in node
/// order the moment it can. Live state is O(workers): each worker holds at
/// most one in-flight chunk of stacks-then-yields, and the bounded reorder
/// window below keeps fast workers from buffering unboundedly ahead of the
/// in-order fold.
fn stream_nodes(config: &FleetConfig, acc: &mut FleetAccumulator, upto: usize) -> FleetSchedStats {
    let record_events = acc.record_events();
    let first = acc.nodes_done();
    let remaining = upto.saturating_sub(first);
    let workers = config.parallelism.workers().min(remaining).max(1);
    if workers == 1 {
        // Serial runs chunk through the batched sleep driver: a few stacks
        // live at once, their inter-wake sleep spans integrated in one
        // struct-of-arrays ledger pass per round. Behaviorally identical
        // to the per-node loop (see `fleet::batch`); live state grows from
        // one stack to `SLEEP_CHUNK`.
        let mut lo = first;
        while lo < upto {
            let hi = (lo + batch::SLEEP_CHUNK).min(upto);
            for on_air in batch::simulate_chunk(config, lo..hi, record_events) {
                acc.absorb(on_air.into_yield());
            }
            lo = hi;
        }
        return FleetSchedStats::serial(remaining);
    }
    // Work stealing over a chunk-claim cursor: the node range is cut into
    // fixed chunks and every worker loops claiming the next unclaimed
    // chunk. Which worker simulates which node is scheduling-dependent,
    // but each node's draws derive only from `(master seed, node index)`
    // and yields are folded strictly in node order via the reorder buffer,
    // so the accumulator sees exactly the serial engine's fold — even when
    // faulted or browned-out nodes make per-node cost wildly uneven.
    //
    // A worker may claim chunk `c` only while `c < floor + WINDOW`
    // (`floor` = the fold frontier), so at most WINDOW chunks of yields
    // exist at once: the claim rule is what bounds memory. Deadlock-free:
    // after every deposit the floor chunk is never left sitting in
    // `pending` (the depositing worker drains it), so the floor chunk is
    // always in flight on some worker, and that worker's deposit path
    // never waits.
    let chunks = remaining.div_ceil(STEAL_CHUNK);
    let window = 2 * workers;
    let mut state = StreamState {
        next_chunk: 0,
        floor_chunk: 0,
        pending: BTreeMap::new(),
        acc,
    };
    let claims: Vec<u64> = {
        let state = Mutex::new(&mut state);
        let frontier_moved = Condvar::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let state = &state;
                    let frontier_moved = &frontier_moved;
                    scope.spawn(move || {
                        let mut claimed = 0u64;
                        loop {
                            let mut guard = match state.lock() {
                                Ok(guard) => guard,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            let chunk = loop {
                                if guard.next_chunk >= chunks {
                                    break None;
                                }
                                if guard.next_chunk < guard.floor_chunk + window {
                                    let chunk = guard.next_chunk;
                                    guard.next_chunk += 1;
                                    break Some(chunk);
                                }
                                guard = match frontier_moved.wait(guard) {
                                    Ok(guard) => guard,
                                    Err(poisoned) => poisoned.into_inner(),
                                };
                            };
                            drop(guard);
                            let Some(chunk) = chunk else {
                                break;
                            };
                            claimed += 1;
                            let lo = first + chunk * STEAL_CHUNK;
                            let hi = (lo + STEAL_CHUNK).min(upto);
                            // Simulate outside the lock; this is where the
                            // wall-clock time goes. The claimed chunk runs
                            // through the batched sleep driver, same as
                            // serial.
                            let yields: Vec<NodeYield> =
                                batch::simulate_chunk(config, lo..hi, record_events)
                                    .into_iter()
                                    .map(NodeOnAir::into_yield)
                                    .collect();
                            let mut guard = match state.lock() {
                                Ok(guard) => guard,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            guard.pending.insert(chunk, yields);
                            // Drain every consecutive chunk at the
                            // frontier so the floor never idles in
                            // `pending`.
                            loop {
                                let floor = guard.floor_chunk;
                                let Some(folds) = guard.pending.remove(&floor) else {
                                    break;
                                };
                                for fold in folds {
                                    guard.acc.absorb(fold);
                                }
                                guard.floor_chunk += 1;
                            }
                            drop(guard);
                            frontier_moved.notify_all();
                        }
                        claimed
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(claimed) => claimed,
                    // Re-raise the worker's own panic payload instead of
                    // replacing it with a second, less informative one.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    };
    assert!(
        state.pending.is_empty() && state.floor_chunk == chunks,
        "streaming fold must drain every claimed chunk"
    );
    FleetSchedStats {
        workers,
        chunk_size: STEAL_CHUNK,
        chunks,
        claims,
    }
}

/// The pre-work-stealing phase-1 scheduler: contiguous static shards,
/// thread `t` simulating nodes `[bounds[t], bounds[t+1])`. Kept as the
/// differential reference for the scheduler bit-identity tests.
#[cfg(test)]
fn simulate_static_shards(
    config: &FleetConfig,
    workers: usize,
    record_events: bool,
) -> Vec<NodeOnAir> {
    let workers = workers.min(config.nodes).max(1);
    let per = config.nodes / workers;
    let extra = config.nodes % workers;
    let mut shards = Vec::with_capacity(workers);
    let mut lo = 0usize;
    for t in 0..workers {
        let hi = lo + per + usize::from(t < extra);
        shards.push((lo, hi));
        lo = hi;
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|(lo, hi)| {
                scope.spawn(move || {
                    (lo..hi)
                        .map(|i| simulate_node_instrumented(config, i, record_events))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = Vec::with_capacity(config.nodes);
        for handle in handles {
            match handle.join() {
                Ok(shard) => all.extend(shard),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    })
}

/// Phase 2: merges per-node packet lists, applies collision/capture and the
/// receiver's channel, and aggregates the outcome. Single-threaded and
/// deterministic: inputs are canonically ordered by `(start, node)` and all
/// randomness comes from the reserved merge stream.
pub fn merge_fleet(config: &FleetConfig, nodes: Vec<NodeOnAir>) -> FleetOutcome {
    merge_fleet_impl(config, nodes, &mut TelemetryBuffer::new())
}

/// One transmission interval as heard at a common receiver — the input
/// row of [`capture_sweep`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirSlot {
    /// Transmitting node's fleet index.
    pub node: usize,
    /// Transmission start.
    pub start: SimTime,
    /// Transmission end.
    pub end: SimTime,
    /// Receive level at the receiver under consideration.
    pub rx_dbm: Dbm,
}

/// Collision + capture over `(start, node)`-sorted transmission intervals
/// at one receiver, as a single forward sweep: slot `j > i` overlaps `i`
/// iff it starts before `i` ends, so each pair is visited exactly once
/// and the strongest interferer is marked in both directions.
///
/// Returns one flag per slot, `true` when the slot overlapped another
/// node's transmission and failed to clear the strongest such interferer
/// by `capture_margin` (an exact tie at the margin still captures).
/// Overlaps between slots of the *same* node never collide — a
/// transmitter does not jam itself, and a node's own back-to-back frames
/// are adjacent by construction.
pub fn capture_sweep(slots: &[AirSlot], capture_margin: Db) -> Vec<bool> {
    debug_assert!(
        slots.windows(2).all(|pair| match pair {
            [a, b] => (a.start, a.node) <= (b.start, b.node),
            _ => true,
        }),
        "capture_sweep input must be (start, node)-sorted"
    );
    let raise = |slot: &mut Option<Dbm>, level: Dbm| {
        *slot = Some(match *slot {
            Some(s) if s >= level => s,
            _ => level,
        });
    };
    let mut strongest: Vec<Option<Dbm>> = vec![None; slots.len()];
    // Walk the sorted list by successively splitting off the head: each
    // pass pairs slot i against the tail until the first non-overlap.
    // Suffix splitting instead of index arithmetic keeps the sweep free of
    // slice-index panic sites.
    let mut air_rest = slots;
    let mut strong_rest = strongest.as_mut_slice();
    while let Some((entry_i, air_tail)) = air_rest.split_first() {
        let Some((slot_i, strong_tail)) = std::mem::take(&mut strong_rest).split_first_mut() else {
            break;
        };
        for (entry_j, slot_j) in air_tail.iter().zip(strong_tail.iter_mut()) {
            if entry_j.start >= entry_i.end {
                break;
            }
            if entry_i.node == entry_j.node {
                continue;
            }
            raise(slot_i, entry_j.rx_dbm);
            raise(slot_j, entry_i.rx_dbm);
        }
        air_rest = air_tail;
        strong_rest = strong_tail;
    }
    slots
        .iter()
        .zip(&strongest)
        .map(|(entry, interferer)| {
            interferer.is_some_and(|level| entry.rx_dbm.margin_over(level) < capture_margin)
        })
        .collect()
}

/// Receive-level histogram bounds for `fleet.rx_dbm`: 10 dB decades across
/// the plausible indoor range. The default decade bounds are built for
/// positive magnitudes and cannot bucket dBm.
pub(crate) const RX_DBM_BOUNDS: [f64; 8] =
    [-100.0, -90.0, -80.0, -70.0, -60.0, -50.0, -40.0, -30.0];

/// [`merge_fleet`], instrumenting `telemetry` with the fleet-level metrics
/// (`fleet.offered` / `fleet.collided` / `fleet.channel_losses` /
/// `fleet.delivered` / `fleet.faulted_nodes` counters, the `fleet.offered_load` gauge, the
/// `fleet.rx_dbm` histogram) and one [`EventKind::PacketFate`] event per
/// packet, attributed and in canonical `(start, node)` order.
fn merge_fleet_impl(
    config: &FleetConfig,
    nodes: Vec<NodeOnAir>,
    telemetry: &mut TelemetryBuffer,
) -> FleetOutcome {
    // Lower the materialized per-node results onto the streaming merge
    // input. Nodes may arrive in any order through this pre-streaming API
    // (results used to be scattered into per-node slots); the canonical
    // sort inside `merge_records` erases arrival order either way, and the
    // per-node tallies index by the yield's own node field.
    let faulted = nodes.iter().filter(|n| n.fault.is_some()).count();
    let mut per_node = config
        .per_node_stats
        .then(|| vec![NodeCounts::default(); config.nodes]);
    let mut records: Vec<PacketRecord> = Vec::new();
    for node in &nodes {
        if let Some(counts) = per_node.as_mut().and_then(|p| p.get_mut(node.node)) {
            counts.offered = node.packets.len() as u32;
        }
        records.extend(node.packets.iter().map(PacketRecord::from_on_air));
    }
    merge_records(config, records, faulted, per_node, telemetry)
}

/// The merge proper, over the accumulator's compact packet records:
/// canonical `(start, node)` sort, collision/capture sweep, channel trials
/// on the reserved merge stream, instrumentation, aggregation.
///
/// Bit-compatibility with the materializing engine is carried by two
/// properties: the Bernoulli-per-bit channel trial short-circuits on the
/// first corrupted bit exactly as before (records store the bit count, so
/// the draw sequence is unchanged), and the checksum verdict — evaluated
/// only when every bit survives — was precomputed at reduction time
/// (`decode` draws no randomness, so hoisting it cannot shift the stream).
fn merge_records(
    config: &FleetConfig,
    mut records: Vec<PacketRecord>,
    faulted_nodes: usize,
    mut per_node: Option<Vec<NodeCounts>>,
    telemetry: &mut TelemetryBuffer,
) -> FleetOutcome {
    // Canonical order. Two packets from the same node cannot share a start
    // time, so (start, node) is a total order independent of arrival order.
    records.sort_by_key(|p| (p.start, p.node));

    let slots: Vec<AirSlot> = records
        .iter()
        .map(|p| AirSlot {
            node: p.node as usize,
            start: p.start,
            end: p.end,
            rx_dbm: p.rx_dbm,
        })
        .collect();
    let mut fates = vec![PacketFate::Delivered; records.len()];
    for (fate, collided) in fates
        .iter_mut()
        .zip(capture_sweep(&slots, config.capture_margin))
    {
        if collided {
            *fate = PacketFate::Collided;
        }
    }

    // Channel trials for the survivors, from the dedicated merge stream.
    let receiver = SuperRegenReceiver::bwrc_issc05();
    let mut rng = SimRng::stream(config.seed, MERGE_STREAM);
    let mut delivered = 0;
    let mut channel_losses = 0;
    for (entry, fate) in records.iter().zip(&mut fates) {
        if *fate == PacketFate::Collided {
            continue;
        }
        // The link budget is already folded into rx_dbm; trial on SNR via
        // the receiver's error model.
        let ber = receiver.ber(entry.rx_dbm);
        let survived = (0..entry.bits).all(|_| !rng.bernoulli(ber)) && entry.decode_ok;
        if survived {
            delivered += 1;
            if let Some(counts) = per_node
                .as_mut()
                .and_then(|p| p.get_mut(entry.node as usize))
            {
                counts.delivered += 1;
            }
        } else {
            channel_losses += 1;
            *fate = PacketFate::ChannelLoss;
        }
    }

    let collided = fates.iter().filter(|f| **f == PacketFate::Collided).count();
    let elapsed = config.duration.as_seconds().value();
    let airtime: f64 = records
        .iter()
        .map(|p| p.end.duration_since(p.start).as_seconds().value())
        .sum();

    // Fleet-level instrumentation. The sweep above already visits packets
    // in canonical (start, node) order, so the fate stream and histogram
    // fills are deterministic regardless of how phase 1 was scheduled.
    telemetry
        .metrics
        .register_histogram(keys::FLEET_RX_DBM, &RX_DBM_BOUNDS);
    for (entry, fate) in records.iter().zip(&fates) {
        telemetry
            .metrics
            .observe(keys::FLEET_RX_DBM, entry.rx_dbm.value());
        let fate = match fate {
            PacketFate::Delivered => "delivered",
            PacketFate::Collided => "collided",
            PacketFate::ChannelLoss => "channel_loss",
        };
        telemetry.record_for(
            entry.node,
            entry.end.as_nanos(),
            EventKind::PacketFate { fate },
        );
    }
    telemetry
        .metrics
        .inc(keys::FLEET_OFFERED, records.len() as u64);
    telemetry.metrics.inc(keys::FLEET_COLLIDED, collided as u64);
    telemetry
        .metrics
        .inc(keys::FLEET_CHANNEL_LOSSES, channel_losses as u64);
    telemetry
        .metrics
        .inc(keys::FLEET_DELIVERED, delivered as u64);
    telemetry
        .metrics
        .inc(keys::FLEET_FAULTED_NODES, faulted_nodes as u64);
    let offered_load = if elapsed > 0.0 {
        airtime / elapsed
    } else {
        0.0
    };
    telemetry
        .metrics
        .add(keys::FLEET_OFFERED_LOAD, offered_load);

    FleetOutcome {
        offered: records.len(),
        collided,
        channel_losses,
        delivered,
        faulted: faulted_nodes,
        per_node_delivery: per_node
            .map(|counts| counts.iter().map(NodeCounts::delivery_ratio).collect())
            .unwrap_or_default(),
        // Zero-duration (or packet-free) runs report 0, never NaN.
        offered_load,
    }
}

/// Runs the fleet scenario.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero nodes, reversed
/// distance range, zero worker threads) or a node fails to build.
pub fn run_fleet(config: &FleetConfig) -> FleetOutcome {
    run_fleet_with(config, &mut NullRecorder).0
}

/// Runs the fleet scenario, streaming telemetry into `recorder` and
/// returning the merged metric registry alongside the outcome.
///
/// Events are recorded only when `recorder.wants_events()` (so
/// [`NullRecorder`] costs one branch per potential event); metric counters
/// are always collected. The emitted stream is framed by phase markers —
/// `phase_start`/`phase_end` for `"simulate"`, then for `"merge"` — with
/// per-node events canonically interleaved by `(t_ns, node)` inside the
/// simulate frame and per-packet [`EventKind::PacketFate`] events in
/// `(start, node)` order inside the merge frame. Both the stream and the
/// metric totals are bit-identical between [`Parallelism::Serial`] and
/// [`Parallelism::Threads`] runs of the same configuration: shards record
/// into their own [`TelemetryBuffer`]s and merge in node order.
///
/// # Panics
///
/// Panics as [`run_fleet`] does on degenerate configurations.
pub fn run_fleet_with(
    config: &FleetConfig,
    recorder: &mut dyn Recorder,
) -> (FleetOutcome, Metrics) {
    let (outcome, metrics, _stats) = run_fleet_with_stats(config, recorder);
    (outcome, metrics)
}

/// [`run_fleet_with`], additionally returning the phase-1 scheduler shape.
///
/// The [`FleetSchedStats`] are wall-clock-dependent (which worker claimed
/// which chunk) and deliberately *not* part of the returned [`Metrics`],
/// which stay bit-identical across [`Parallelism`] modes; see
/// [`FleetSchedStats::export_metrics`] for folding them into a separate
/// registry.
///
/// # Panics
///
/// Panics as [`run_fleet`] does on degenerate configurations.
pub fn run_fleet_with_stats(
    config: &FleetConfig,
    recorder: &mut dyn Recorder,
) -> (FleetOutcome, Metrics, FleetSchedStats) {
    if let Err(error) = config.validate() {
        // picocube-lint: allow(L2) documented `# Panics`; struct-literal configs bypass the builder's typed rejection
        panic!("degenerate fleet config: {error}");
    }
    probe_build(config);
    let mut acc = FleetAccumulator::new(recorder.wants_events(), config.per_node_stats);
    let sched_stats = stream_nodes(config, &mut acc, config.nodes);
    let (outcome, metrics) = finalize_fleet(config, acc, recorder);
    (outcome, metrics, sched_stats)
}

/// Probe-builds node 0 before any worker threads exist, so an invalid base
/// config fails here with its typed build error rather than as a panic
/// inside a worker thread.
pub(crate) fn probe_build(config: &FleetConfig) {
    let probe = build_fleet_node(
        fleet_node_config(config, 0, &mut node_setup_rng(config.seed, 0)),
        config.app,
    );
    assert!(
        probe.is_ok(),
        "fleet base config does not build: {:?}",
        probe.as_ref().err()
    );
}

/// The run's tail: canonicalizes the fully-fed accumulator's event
/// interleaving, frames the stream with phase markers, merges, and drains
/// events into `recorder`.
///
/// The telemetry fold here reproduces the materializing engine's order of
/// operations exactly — empty engine registry, node-order shard fold
/// (already inside the accumulator), `(t_ns, node)` event sort, then the
/// merge's instrumentation — so metric registries and event streams stay
/// bit-identical to pre-streaming goldens.
pub(crate) fn finalize_fleet(
    config: &FleetConfig,
    acc: FleetAccumulator,
    recorder: &mut dyn Recorder,
) -> (FleetOutcome, Metrics) {
    assert_eq!(
        acc.nodes_done(),
        config.nodes,
        "fleet fold finalized before every node was absorbed"
    );
    let record_events = acc.record_events();
    let duration_ns = config.duration.as_nanos();
    let (records, mut shards, faulted, per_node) = acc.into_parts();

    let mut engine = TelemetryBuffer::with_events(record_events);
    engine.record(
        0,
        EventKind::PhaseStart {
            phase: "simulate".into(),
        },
    );
    // Deterministic shard merge: the accumulator absorbed per-node buffers
    // in node order; canonicalize the interleaving.
    shards.sort_events();
    engine.absorb(shards);
    engine.record(
        duration_ns,
        EventKind::PhaseEnd {
            phase: "simulate".into(),
        },
    );

    engine.record(
        duration_ns,
        EventKind::PhaseStart {
            phase: "merge".into(),
        },
    );
    let outcome = merge_records(config, records, faulted, per_node, &mut engine);
    engine.record(
        duration_ns,
        EventKind::PhaseEnd {
            phase: "merge".into(),
        },
    );

    engine.drain_events_into(recorder);
    (outcome, engine.metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_telemetry::Event;
    use picocube_units::json::ToJson;

    fn quick(nodes: usize, seed: u64) -> FleetOutcome {
        run_fleet(
            &FleetConfig::builder()
                .nodes(nodes)
                .duration(SimDuration::from_secs(60))
                .seed(seed)
                .build()
                .expect("valid test scenario"),
        )
    }

    #[test]
    fn builder_accepts_a_full_scenario() {
        let config = FleetConfig::builder()
            .nodes(5)
            .duration(SimDuration::from_secs(45))
            .distance_range(1.0, 2.0)
            .capture_margin(Db::new(6.0))
            .seed(99)
            .parallelism(Parallelism::Threads(2))
            .build()
            .expect("valid scenario");
        assert_eq!(config.nodes, 5);
        assert_eq!(config.duration, SimDuration::from_secs(45));
        assert_eq!(config.distance_range, (1.0, 2.0));
        assert_eq!(config.capture_margin, Db::new(6.0));
        assert_eq!(config.seed, 99);
        assert_eq!(config.parallelism, Parallelism::Threads(2));
    }

    #[test]
    fn builder_rejects_degenerate_scenarios() {
        let err = |b: FleetConfigBuilder| b.build().unwrap_err();
        assert_eq!(
            err(FleetConfig::builder().nodes(0)),
            FleetConfigError::ZeroNodes
        );
        assert_eq!(
            err(FleetConfig::builder().duration(SimDuration::ZERO)),
            FleetConfigError::NonPositiveDuration
        );
        assert_eq!(
            err(FleetConfig::builder().parallelism(Parallelism::Threads(0))),
            FleetConfigError::ZeroThreads
        );
        assert_eq!(
            err(FleetConfig::builder().distance_range(2.0, 1.0)),
            FleetConfigError::InvalidDistanceRange
        );
        assert_eq!(
            err(FleetConfig::builder().distance_range(0.0, 1.0)),
            FleetConfigError::InvalidDistanceRange
        );
        // The messages are what `run_fleet`'s asserts say, so builder users
        // and struct-literal users read the same diagnostics.
        assert!(FleetConfigError::ZeroNodes
            .to_string()
            .contains("at least one node"));
        assert!(FleetConfigError::ZeroThreads
            .to_string()
            .contains("at least one thread"));
    }

    #[test]
    fn instrumented_run_streams_framed_events_and_totals() {
        let config = FleetConfig::builder()
            .nodes(3)
            .duration(SimDuration::from_secs(30))
            .seed(9)
            .build()
            .expect("valid scenario");
        let mut events: Vec<Event> = Vec::new();
        let (out, metrics) = run_fleet_with(&config, &mut events);

        assert_eq!(metrics.counter("fleet.offered"), out.offered as u64);
        assert_eq!(metrics.counter("fleet.collided"), out.collided as u64);
        assert_eq!(
            metrics.counter("fleet.channel_losses"),
            out.channel_losses as u64
        );
        assert_eq!(metrics.counter("fleet.delivered"), out.delivered as u64);
        // Healthy firmware on healthy rails: nobody faults.
        assert_eq!(metrics.counter("fleet.faulted_nodes"), 0);
        assert_eq!(out.faulted, 0);
        assert_eq!(
            metrics.gauge("fleet.offered_load").to_bits(),
            out.offered_load.to_bits()
        );
        assert!(metrics.counter("node.wakes") >= out.offered as u64);
        assert!(metrics.gauge("power.total.uj") > 0.0);
        let rx = metrics.histogram("fleet.rx_dbm").expect("registered");
        assert_eq!(rx.count(), out.offered as u64);

        // Framing: phase markers open and close the stream, one fate event
        // per offered packet, at least one wake per node.
        assert!(
            matches!(events.first().unwrap().kind, EventKind::PhaseStart { ref phase } if phase == "simulate")
        );
        assert!(
            matches!(events.last().unwrap().kind, EventKind::PhaseEnd { ref phase } if phase == "merge")
        );
        let fates = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PacketFate { .. }))
            .count();
        assert_eq!(fates, out.offered);
        for node in 0..config.nodes as u32 {
            assert!(
                events
                    .iter()
                    .any(|e| e.node == node && matches!(e.kind, EventKind::Wake { .. })),
                "node {node} recorded no wake"
            );
        }
    }

    #[test]
    fn null_recorder_keeps_metrics_without_events() {
        let config = FleetConfig::builder()
            .nodes(2)
            .duration(SimDuration::from_secs(30))
            .seed(9)
            .build()
            .expect("valid scenario");
        let (out, metrics) = run_fleet_with(&config, &mut NullRecorder);
        assert_eq!(metrics.counter("fleet.offered"), out.offered as u64);
        assert!(metrics.counter("mcu.lpm_ns") > 0);
    }

    #[test]
    fn single_node_delivers_everything() {
        let out = quick(1, 3);
        // One wake every 6 s; the random power-up phase may shave one.
        assert!((9..=10).contains(&out.offered), "offered {}", out.offered);
        assert_eq!(out.collided, 0);
        assert!(out.delivery_ratio() > 0.99);
    }

    #[test]
    fn small_fleet_rarely_collides() {
        let out = quick(8, 4);
        assert!(
            (8 * 9..=8 * 10).contains(&out.offered),
            "offered {}",
            out.offered
        );
        // 1 ms packets in 6 s periods: offered load ~0.13 %, collisions
        // should be absent or nearly so.
        assert!(out.collided <= 2, "collided {}", out.collided);
        assert!(out.delivery_ratio() > 0.95);
    }

    #[test]
    fn offered_load_matches_airtime() {
        let out = quick(8, 5);
        // ~80 packets × 1.04 ms / 60 s ≈ 0.14 %.
        assert!(
            (out.offered_load - 0.0014).abs() < 5e-4,
            "G = {}",
            out.offered_load
        );
    }

    #[test]
    fn dense_bursts_still_mostly_deliver() {
        // Direct check of the overlap predicate through a dense burst:
        // nodes within one packet time of each other must collide, and
        // equal-power nodes cannot capture.
        let dense = run_fleet(
            &FleetConfig::builder()
                .nodes(64)
                .duration(SimDuration::from_secs(30))
                .distance_range(1.0, 1.01)
                .seed(7)
                .build()
                .expect("valid test scenario"),
        );
        // 64 nodes × 5 packets in 30 s at random phases: expect a few
        // overlaps in expectation (birthday-style).
        assert!(dense.offered >= 64 * 4);
        assert!(dense.delivery_ratio() > 0.5);
    }

    #[test]
    fn per_node_stats_cover_all_nodes_when_opted_in() {
        let out = run_fleet(
            &FleetConfig::builder()
                .nodes(5)
                .duration(SimDuration::from_secs(60))
                .seed(8)
                .per_node_stats(true)
                .build()
                .expect("valid test scenario"),
        );
        assert_eq!(out.per_node_delivery.len(), 5);
        assert!(out
            .per_node_delivery
            .iter()
            .all(|&d| (0.0..=1.0).contains(&d)));
    }

    #[test]
    fn per_node_stats_default_off_keeps_output_o1() {
        // The streaming default: no O(nodes) output vector. Aggregates are
        // unchanged by the opt-in.
        let opted = run_fleet(
            &FleetConfig::builder()
                .nodes(5)
                .duration(SimDuration::from_secs(60))
                .seed(8)
                .per_node_stats(true)
                .build()
                .expect("valid test scenario"),
        );
        let off = quick(5, 8);
        assert!(off.per_node_delivery.is_empty());
        assert_eq!(off.offered, opted.offered);
        assert_eq!(off.delivered, opted.delivered);
        assert_eq!(off.collided, opted.collided);
        assert_eq!(off.offered_load.to_bits(), opted.offered_load.to_bits());
    }

    #[test]
    fn short_duration_emits_zeroes_not_nan() {
        // 1 s is shorter than any node's first wake can be guaranteed to
        // land: nodes that never transmit must report 0.0, not 0/0.
        let out = run_fleet(&FleetConfig {
            nodes: 4,
            duration: SimDuration::from_secs(1),
            seed: 11,
            per_node_stats: true,
            ..FleetConfig::default()
        });
        assert!(out.offered_load.is_finite());
        assert!(out.per_node_delivery.iter().all(|d| d.is_finite()));
        assert!(out.delivery_ratio().is_finite());
        for (idx, d) in out.per_node_delivery.iter().enumerate() {
            assert!((0.0..=1.0).contains(d), "node {idx}: {d}");
        }
    }

    #[test]
    fn serial_and_threaded_runs_are_bit_identical() {
        for seed in [3u64, 17, 292] {
            let serial = run_fleet(&FleetConfig {
                nodes: 12,
                duration: SimDuration::from_secs(30),
                seed,
                parallelism: Parallelism::Serial,
                per_node_stats: true,
                ..FleetConfig::default()
            });
            let threaded = run_fleet(&FleetConfig {
                nodes: 12,
                duration: SimDuration::from_secs(30),
                seed,
                parallelism: Parallelism::Threads(4),
                per_node_stats: true,
                ..FleetConfig::default()
            });
            assert_eq!(serial.offered, threaded.offered, "seed {seed}");
            assert_eq!(serial.collided, threaded.collided, "seed {seed}");
            assert_eq!(
                serial.channel_losses, threaded.channel_losses,
                "seed {seed}"
            );
            assert_eq!(serial.delivered, threaded.delivered, "seed {seed}");
            assert_eq!(
                serial.per_node_delivery.len(),
                threaded.per_node_delivery.len(),
                "seed {seed}"
            );
            for (idx, (s, t)) in serial
                .per_node_delivery
                .iter()
                .zip(&threaded.per_node_delivery)
                .enumerate()
            {
                assert!(
                    s.to_bits() == t.to_bits(),
                    "seed {seed} node {idx}: serial {s} != threaded {t}"
                );
            }
            assert_eq!(
                serial.offered_load.to_bits(),
                threaded.offered_load.to_bits(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let run = |parallelism| {
            run_fleet(&FleetConfig {
                nodes: 7, // deliberately not a multiple of the worker count
                duration: SimDuration::from_secs(30),
                seed: 5,
                parallelism,
                ..FleetConfig::default()
            })
        };
        let serial = run(Parallelism::Serial);
        for workers in [2usize, 3, 8, 16] {
            assert_eq!(
                serial,
                run(Parallelism::Threads(workers)),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn reorder_window_stall_path_is_bit_identical() {
        // 48 nodes on 2 workers: 12 chunks against a window of 4, so fast
        // workers must stall on the reorder window and resume when the
        // fold frontier advances — the streaming engine's backpressure
        // path, which the wider tests above never enter.
        let run = |parallelism| {
            run_fleet_with(
                &FleetConfig {
                    nodes: 48,
                    duration: SimDuration::from_secs(10),
                    seed: 31,
                    parallelism,
                    ..FleetConfig::default()
                },
                &mut NullRecorder,
            )
        };
        let (serial_out, serial_metrics) = run(Parallelism::Serial);
        let (threaded_out, threaded_metrics) = run(Parallelism::Threads(2));
        assert_eq!(serial_out, threaded_out);
        assert_eq!(
            serial_metrics.to_json().to_string(),
            threaded_metrics.to_json().to_string()
        );
    }

    #[test]
    fn brownout_imbalanced_fleet_identical_across_schedulers() {
        use crate::node::HarvesterKind;

        // Every node starts below the supervisor threshold with a shaker
        // harvester attached: it browns out at the first check, sits held
        // in reset (simulated in cheap 60 s strides) until the cell
        // recharges past the restart threshold (~2 h), then runs actively
        // for the remainder. Brown-out holds make per-node cost wildly
        // uneven in time — the load shape the work-stealing scheduler
        // exists for — and the three phase-1 schedulers must still be
        // bit-identical in outcome AND telemetry.
        let config = |parallelism| FleetConfig {
            nodes: 6,
            base: NodeConfig {
                harvester: HarvesterKind::Shaker,
                initial_soc: 0.009,
                ..NodeConfig::default()
            },
            duration: SimDuration::from_secs(3 * 3_600),
            seed: 23,
            parallelism,
            ..FleetConfig::default()
        };

        let (serial_out, serial_metrics) =
            run_fleet_with(&config(Parallelism::Serial), &mut NullRecorder);
        let serial_json = serial_metrics.to_json().to_string();
        assert!(
            serial_metrics.counter("node.brownouts") >= 6,
            "every node must brown out early (got {})",
            serial_metrics.counter("node.brownouts")
        );

        // Work stealing at two widths, including more workers than chunks.
        for workers in [2usize, 7] {
            let (out, metrics) =
                run_fleet_with(&config(Parallelism::Threads(workers)), &mut NullRecorder);
            assert_eq!(out, serial_out, "{workers} workers: outcome diverged");
            assert_eq!(
                metrics.to_json().to_string(),
                serial_json,
                "{workers} workers: metric registries diverged"
            );
        }

        // The pre-work-stealing static-shard scheduler, replayed through
        // the same merge path, is the third reference.
        let cfg = config(Parallelism::Serial);
        let mut nodes = simulate_static_shards(&cfg, 3, false);
        let mut telemetry = TelemetryBuffer::new();
        for node in &mut nodes {
            telemetry.absorb(std::mem::take(&mut node.telemetry));
        }
        let static_out = merge_fleet_impl(&cfg, nodes, &mut telemetry);
        assert_eq!(static_out, serial_out, "static shards: outcome diverged");
        assert_eq!(
            telemetry.metrics.to_json().to_string(),
            serial_json,
            "static shards: metric registries diverged"
        );
    }

    #[test]
    fn batched_chunks_match_per_node_exact_path() {
        // The serial engine now runs chunks through the batched sleep
        // driver (`fleet::batch`); the per-node `simulate_node_instrumented`
        // loop is the exact reference it must reproduce bit-for-bit —
        // outcome and full metric registry. 11 nodes: one full SLEEP_CHUNK
        // plus a ragged tail.
        for (app, duration) in [
            (FleetApp::Tpms, SimDuration::from_secs(30)),
            (
                FleetApp::Beacon {
                    rest_s: 5.0,
                    handled_s: 1.0,
                    vigor_g: 1.5,
                    period_s: 4,
                },
                SimDuration::from_secs(20),
            ),
        ] {
            let cfg = FleetConfig {
                nodes: 11,
                duration,
                seed: 77,
                app,
                ..FleetConfig::default()
            };
            let (batched_out, batched_metrics) = run_fleet_with(&cfg, &mut NullRecorder);

            let mut nodes: Vec<NodeOnAir> = (0..cfg.nodes)
                .map(|i| simulate_node_instrumented(&cfg, i, false))
                .collect();
            let mut telemetry = TelemetryBuffer::new();
            for node in &mut nodes {
                telemetry.absorb(std::mem::take(&mut node.telemetry));
            }
            let exact_out = merge_fleet_impl(&cfg, nodes, &mut telemetry);

            assert_eq!(batched_out, exact_out, "{app:?}: outcome diverged");
            assert_eq!(
                batched_metrics.to_json().to_string(),
                telemetry.metrics.to_json().to_string(),
                "{app:?}: metric registries diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_fleet_rejected() {
        run_fleet(&FleetConfig {
            nodes: 0,
            ..FleetConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        run_fleet(&FleetConfig {
            parallelism: Parallelism::Threads(0),
            ..FleetConfig::default()
        });
    }
}
