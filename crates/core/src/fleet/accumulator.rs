//! The streaming fleet accumulator: per-node results folded online, in
//! node order, into O(1)-per-node state.
//!
//! The materializing engine kept every node's [`NodeOnAir`] — full frame
//! bytes, RF accounting and telemetry registry — alive until the merge
//! phase, so a million-node run held a million telemetry buffers and
//! packet payloads at once. The streaming engine reduces each node to a
//! [`PacketRecord`] list (the packet's interval, receive level, bit count
//! and checksum verdict — everything the collision sweep and channel
//! trials consume, ~40 bytes per packet) plus its telemetry buffer, and
//! folds that yield into this accumulator the moment the node finishes.
//! Live state is then O(workers) node yields plus the compact record list
//! the merge phase irreducibly needs.
//!
//! # Merge law
//!
//! [`FleetAccumulator::absorb`] must be called in ascending node order
//! with no gaps — the same left-fold the materializing engine performed
//! after phase 1. Metric gauges merge by floating-point addition, which
//! is order-sensitive; folding in node order is what makes serial,
//! threaded and checkpoint/resumed runs bit-identical. The accumulator
//! asserts the discipline instead of trusting its callers.

use super::{NodeOnAir, OnAir};
use crate::stack::NodeFault;
use picocube_radio::packet::{decode, Checksum};
use picocube_sim::SimTime;
use picocube_telemetry::TelemetryBuffer;
use picocube_units::Dbm;

/// One on-air packet, reduced to the fields the merge phase consumes.
///
/// The frame bytes are gone: the channel trial needs only their bit count
/// (one Bernoulli draw per bit) and the checksum verdict, both computed at
/// reduction time. The verdict commutes with the trial — `decode` draws no
/// randomness, so evaluating it early cannot shift the merge stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct PacketRecord {
    /// Transmitting node's fleet index.
    pub node: u32,
    /// Transmission start.
    pub start: SimTime,
    /// Transmission end.
    pub end: SimTime,
    /// Receive level at the fleet receiver.
    pub rx_dbm: Dbm,
    /// Frame length in bits (one channel trial per bit).
    pub bits: u32,
    /// Whether the uncorrupted frame passes the XOR checksum.
    pub decode_ok: bool,
}

impl PacketRecord {
    pub(crate) fn from_on_air(packet: &OnAir) -> Self {
        Self {
            node: packet.node as u32,
            start: packet.start,
            end: packet.end,
            rx_dbm: packet.rx_dbm,
            bits: (packet.packet.bytes.len() * 8) as u32,
            decode_ok: decode(&packet.packet.bytes, Checksum::Xor).is_ok(),
        }
    }
}

/// Offered/delivered tallies for one node — the single-allocation
/// replacement for the merge phase's former pair of `vec![0; nodes]`
/// passes, kept only when [`FleetConfig::per_node_stats`] opts in.
///
/// [`FleetConfig::per_node_stats`]: super::FleetConfig::per_node_stats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct NodeCounts {
    /// Packets the node put on the air.
    pub offered: u32,
    /// Packets from the node the receiver decoded.
    pub delivered: u32,
}

impl NodeCounts {
    /// Delivered fraction, `0.0` for a node that never transmitted.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            f64::from(self.delivered) / f64::from(self.offered)
        }
    }
}

/// One node's contribution to the fold: its compact packet records, its
/// drained telemetry and its fault latch. Built by
/// [`NodeOnAir::into_yield`] on whatever worker simulated the node and
/// handed to [`FleetAccumulator::absorb`] in node order.
#[derive(Debug)]
pub(crate) struct NodeYield {
    pub node: usize,
    pub records: Vec<PacketRecord>,
    pub telemetry: TelemetryBuffer,
    pub fault: Option<NodeFault>,
}

impl NodeOnAir {
    /// Reduces the phase-1 result to its streaming yield, dropping the
    /// frame payloads after distilling the bit count and checksum verdict.
    pub(crate) fn into_yield(self) -> NodeYield {
        NodeYield {
            node: self.node,
            records: self.packets.iter().map(PacketRecord::from_on_air).collect(),
            telemetry: self.telemetry,
            fault: self.fault,
        }
    }
}

/// The online fold over node yields. See the module docs for the merge
/// law; [`finalize`](super::run_fleet_with_stats) turns a fully-fed
/// accumulator into the [`FleetOutcome`](super::FleetOutcome).
#[derive(Debug)]
pub(crate) struct FleetAccumulator {
    /// Next node index the fold expects (= nodes absorbed so far, plus the
    /// resume offset when restored from a checkpoint).
    next_node: usize,
    /// Nodes whose simulation latched a fault.
    faulted: usize,
    /// Compact on-air records across all folded nodes, in fold order.
    records: Vec<PacketRecord>,
    /// Metric totals (and, when events are on, the attributed event
    /// buffer) folded in node order.
    telemetry: TelemetryBuffer,
    /// Per-node tallies, when the config opted in.
    per_node: Option<Vec<NodeCounts>>,
}

impl FleetAccumulator {
    /// An empty accumulator expecting node 0 first.
    pub(crate) fn new(record_events: bool, per_node_stats: bool) -> Self {
        Self {
            next_node: 0,
            faulted: 0,
            records: Vec::new(),
            telemetry: TelemetryBuffer::with_events(record_events),
            per_node: per_node_stats.then(Vec::new),
        }
    }

    /// Restores a mid-run accumulator from checkpoint parts. `telemetry`
    /// carries the folded metrics and the (unsorted, fold-order) events.
    pub(crate) fn from_parts(
        next_node: usize,
        faulted: usize,
        records: Vec<PacketRecord>,
        telemetry: TelemetryBuffer,
        per_node: Option<Vec<NodeCounts>>,
    ) -> Self {
        Self {
            next_node,
            faulted,
            records,
            telemetry,
            per_node,
        }
    }

    /// Whether the telemetry fold keeps events.
    pub(crate) fn record_events(&self) -> bool {
        self.telemetry.events_enabled()
    }

    /// Nodes folded so far (including any checkpoint prefix).
    pub(crate) fn nodes_done(&self) -> usize {
        self.next_node
    }

    /// Folds one node's yield. The merge law: yields arrive in ascending
    /// node order with no gaps.
    pub(crate) fn absorb(&mut self, fold: NodeYield) {
        assert_eq!(
            fold.node, self.next_node,
            "fleet accumulator fed out of node order"
        );
        self.next_node += 1;
        self.faulted += usize::from(fold.fault.is_some());
        if let Some(per_node) = self.per_node.as_mut() {
            per_node.push(NodeCounts {
                offered: fold.records.len() as u32,
                delivered: 0,
            });
        }
        self.records.extend(fold.records);
        self.telemetry.absorb(fold.telemetry);
    }

    /// Read access for checkpoint capture.
    pub(crate) fn parts(
        &self,
    ) -> (
        usize,
        &[PacketRecord],
        &TelemetryBuffer,
        Option<&[NodeCounts]>,
    ) {
        (
            self.faulted,
            &self.records,
            &self.telemetry,
            self.per_node.as_deref(),
        )
    }

    /// Decomposes the fold for the merge phase.
    pub(crate) fn into_parts(
        self,
    ) -> (
        Vec<PacketRecord>,
        TelemetryBuffer,
        usize,
        Option<Vec<NodeCounts>>,
    ) {
        (self.records, self.telemetry, self.faulted, self.per_node)
    }
}
