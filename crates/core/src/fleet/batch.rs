//! Batched sleep integration: co-simulating a chunk of fleet nodes so
//! their inter-wake sleep spans integrate in one struct-of-arrays ledger
//! pass.
//!
//! A homogeneous fleet spends most of its wall-clock in the sleep path:
//! every node parks in an LPM between sensor wakes and the engine
//! integrates each span load-by-load through that node's own
//! heap-scattered ledger. This driver instead holds a small chunk of
//! stacks live at once and advances them in *rounds*:
//!
//! 1. **Park** — each node runs [`Stack::next_park`]: active segments,
//!    zero-gap board events and supervisor holds execute on the exact
//!    per-node path; the round's sleepers come back with a pending span.
//! 2. **Integrate** — every sleeper's span is staged into one
//!    [`SleepBatch`] and the whole group's energy accumulation runs as a
//!    single linear sweep ([`SleepBatch::integrate`]).
//! 3. **Settle** — each sleeper commits its span and runs its battery
//!    settle / event fire ([`Stack::finish_park`]).
//!
//! **Gating.** Only plain LPM sleeps ([`Park::Asleep`]) batch. A node
//! with a due board event (zero gap), in an active burst, supervisor-held
//! after a brown-out ([`Park::Held`]), or faulted stays on the exact
//! path — divergent state never takes the grouped route.
//!
//! **Bit-identity.** Nodes are independent (transmit-only, seed streams
//! keyed by `(master, index)`), so interleaving their execution changes
//! nothing; and a batched span performs the identical f64 operations in
//! the identical order as the inline `advance_to` (see
//! [`PowerLedger::stage_sleep`](picocube_sim::PowerLedger::stage_sleep)).
//! Per node, the call sequence here is exactly [`Stack::run_for`]'s
//! decomposition — `fleet::tests` pins chunk-vs-exact equality.
//!
//! [`Stack::next_park`]: crate::stack::Stack
//! [`Stack::finish_park`]: crate::stack::Stack
//! [`Stack::run_for`]: crate::stack::Stack

use super::{build_node, package_node, FleetConfig, NodeOnAir};
use crate::node::PicoCube;
use crate::stack::Park;
use picocube_sim::{SimRng, SimTime, SleepBatch};

/// Nodes co-simulated per serial batch. Sized so a chunk's stacks stay
/// cache-resident while the grouped ledger pass amortizes across all of
/// them; phase-1 live state grows from one stack to this many.
pub(crate) const SLEEP_CHUNK: usize = 4;

/// One not-yet-finished node of the chunk.
struct LiveNode {
    index: usize,
    node: PicoCube,
    setup: SimRng,
    /// This node's run horizon (`now + duration` at build).
    end: SimTime,
    /// The stuck-firmware guard, persistent across parks like the
    /// single-node loop's local.
    fault_guard: u64,
}

/// Simulates fleet nodes `indices` to completion through the batched
/// rounds described in the module docs, returning their [`NodeOnAir`]s in
/// index order. Behaviorally identical to mapping
/// [`simulate_node_instrumented`](super::simulate_node_instrumented) over
/// the range.
pub(crate) fn simulate_chunk(
    config: &FleetConfig,
    indices: core::ops::Range<usize>,
    record_events: bool,
) -> Vec<NodeOnAir> {
    let first = indices.start;
    let mut out: Vec<Option<NodeOnAir>> = indices.clone().map(|_| None).collect();
    let mut live: Vec<Option<LiveNode>> = indices
        .map(|index| {
            let (node, setup) = build_node(config, index, record_events);
            let end = node.now() + config.duration;
            Some(LiveNode {
                index,
                node,
                setup,
                end,
                fault_guard: 0,
            })
        })
        .collect();
    let mut batch = SleepBatch::new();
    // `(live slot, park, span handle)` of this round's sleepers.
    let mut staged: Vec<(usize, Park, usize)> = Vec::new();
    let mut remaining = live.len();
    while remaining > 0 {
        batch.clear();
        staged.clear();
        // Round phase 1: drive every live node to its next park.
        for slot in 0..live.len() {
            let Some(ln) = live.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            match ln.node.next_park(ln.end, &mut ln.fault_guard) {
                Ok(park @ Park::Asleep { .. }) => {
                    ln.node.sleep_clock(park);
                    let span = ln.node.stage_sleep_span(&mut batch);
                    staged.push((slot, park, span));
                }
                Ok(park @ Park::Held { .. }) => {
                    // Supervisor-held: divergent state, exact path.
                    ln.node.sleep_clock(park);
                    ln.node.integrate_sleep_now();
                    if let Err(fault) = ln.node.finish_park(park, ln.end) {
                        let outcome = ln.node.latch_fault(fault);
                        retire(config, &mut live, &mut out, first, slot, outcome);
                        remaining -= 1;
                    }
                }
                Ok(Park::Done) => {
                    let end = ln.end;
                    let outcome = ln.node.finish_run(end);
                    retire(config, &mut live, &mut out, first, slot, outcome);
                    remaining -= 1;
                }
                Err(fault) => {
                    let outcome = ln.node.latch_fault(fault);
                    retire(config, &mut live, &mut out, first, slot, outcome);
                    remaining -= 1;
                }
            }
        }
        // Round phase 2: the grouped struct-of-arrays energy pass.
        batch.integrate();
        // Round phase 3: write spans back and settle, in the same order.
        for &(slot, park, span) in &staged {
            let Some(ln) = live.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            ln.node.commit_sleep_span(&batch, span);
            if let Err(fault) = ln.node.finish_park(park, ln.end) {
                let outcome = ln.node.latch_fault(fault);
                retire(config, &mut live, &mut out, first, slot, outcome);
                remaining -= 1;
            }
        }
    }
    out.into_iter().flatten().collect()
}

/// Packages a finished node out of its chunk slot.
fn retire(
    config: &FleetConfig,
    live: &mut [Option<LiveNode>],
    out: &mut [Option<NodeOnAir>],
    first: usize,
    slot: usize,
    outcome: crate::stack::RunOutcome,
) {
    let Some(ln) = live.get_mut(slot).and_then(Option::take) else {
        return;
    };
    debug_assert_eq!(ln.index, first + slot);
    if let Some(dst) = out.get_mut(slot) {
        *dst = Some(package_node(config, ln.index, ln.node, ln.setup, outcome));
    }
}
