//! Checkpoint/resume for streaming fleet runs.
//!
//! A [`FleetCheckpoint`] is the streaming engine's fold state cut between
//! two nodes: the accumulator's compact packet records, its node-order
//! telemetry fold (metrics plus the unsorted event prefix), the fault
//! tally and the fold cursor, stamped with a fingerprint of every
//! result-relevant configuration field. Because the fold is a strict
//! left-fold in node order and every node's randomness derives only from
//! `(master seed, node index)`, resuming from a serialized checkpoint
//! replays the *identical* fold the uninterrupted run would have produced
//! — [`run_fleet_resumable`] is bit-identical to `run_fleet_with`, not
//! merely statistically equivalent.
//!
//! A [`StackCheckpoint`] cuts one node's simulation mid-run instead. The
//! stack's full machine state (MCU registers, event queue, cell charge)
//! has no serial form, so the checkpoint stores the *recipe* — the node
//! config, application board and elapsed simulated time — and
//! [`StackCheckpoint::resume`] rebuilds the stack and replays it to the
//! cut. Replay costs simulated time but no memory, and determinism makes
//! it exact: the rebuilt stack's subsequent run is bit-identical to one
//! that never stopped, provided the cut lands on an idle boundary (between
//! wake cycles — see `tests/checkpoint.rs` for the pinned boundaries).
//!
//! Both checkpoints serialize through the in-repo `units::json`, whose
//! `f64` round-trip is bit-exact, so a checkpoint that travels through a
//! file changes nothing.

use super::accumulator::{FleetAccumulator, NodeCounts, PacketRecord};
use super::{
    build_fleet_node, finalize_fleet, fleet_node_config, node_setup_rng, probe_build, stream_nodes,
    FleetApp, FleetConfig, FleetConfigError, FleetOutcome,
};
use crate::node::{BuildError, NodeConfig, PicoCube};
use picocube_sim::{SimDuration, SimTime};
use picocube_telemetry::{Event, Metrics, Recorder, TelemetryBuffer};
use picocube_units::json::{field, FromJson, Json, JsonError, ToJson};
use picocube_units::Dbm;

/// Why a checkpoint could not be captured, parsed or resumed.
#[derive(Debug)]
pub enum CheckpointError {
    /// The fleet configuration itself is degenerate.
    Config(FleetConfigError),
    /// The checkpoint was captured under a different configuration (or a
    /// recorder with a different event-recording mode) than the resume.
    Mismatch(&'static str),
    /// The serialized checkpoint failed to parse.
    Json(JsonError),
    /// The checkpointed node no longer builds.
    Build(BuildError),
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Config(e) => write!(f, "degenerate fleet config: {e}"),
            Self::Mismatch(what) => f.write_str(what),
            Self::Json(e) => write!(f, "malformed checkpoint: {e}"),
            Self::Build(e) => write!(f, "checkpointed node no longer builds: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<JsonError> for CheckpointError {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

/// JSON text of every configuration field that influences results (the
/// execution mode, `parallelism`, deliberately excluded — serial and
/// threaded runs are bit-identical, so a checkpoint may hop between them).
/// Equal configs produce equal strings: `units::json` renders `f64`
/// shortest-round-trip, so the comparison is bit-exact.
fn fleet_fingerprint(config: &FleetConfig) -> String {
    Json::Obj(vec![
        ("nodes".into(), config.nodes.to_json()),
        ("duration_ns".into(), config.duration.as_nanos().to_json()),
        ("seed".into(), config.seed.to_json()),
        ("base".into(), config.base.to_json()),
        ("app".into(), config.app.to_json()),
        (
            "distance_m".into(),
            vec![config.distance_range.0, config.distance_range.1].to_json(),
        ),
        (
            "capture_margin_db".into(),
            config.capture_margin.value().to_json(),
        ),
        ("wake_ppm_range".into(), config.wake_ppm_range.to_json()),
        ("per_node_stats".into(), config.per_node_stats.to_json()),
    ])
    .to_string()
}

impl ToJson for PacketRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("node".into(), self.node.to_json()),
            ("start_ns".into(), self.start.as_nanos().to_json()),
            ("end_ns".into(), self.end.as_nanos().to_json()),
            ("rx_dbm".into(), self.rx_dbm.value().to_json()),
            ("bits".into(), self.bits.to_json()),
            ("decode_ok".into(), self.decode_ok.to_json()),
        ])
    }
}

impl FromJson for PacketRecord {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            node: u32::from_json(field(value, "node")?)?,
            start: SimTime::from_nanos(u64::from_json(field(value, "start_ns")?)?),
            end: SimTime::from_nanos(u64::from_json(field(value, "end_ns")?)?),
            rx_dbm: Dbm::new(f64::from_json(field(value, "rx_dbm")?)?),
            bits: u32::from_json(field(value, "bits")?)?,
            decode_ok: bool::from_json(field(value, "decode_ok")?)?,
        })
    }
}

impl ToJson for NodeCounts {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("offered".into(), self.offered.to_json()),
            ("delivered".into(), self.delivered.to_json()),
        ])
    }
}

impl FromJson for NodeCounts {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            offered: u32::from_json(field(value, "offered")?)?,
            delivered: u32::from_json(field(value, "delivered")?)?,
        })
    }
}

/// A streaming fleet run cut between two nodes: everything
/// [`run_fleet_resumable`] needs to continue the fold bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCheckpoint {
    /// Fingerprint of the capturing configuration (see
    /// [`fleet_fingerprint`]); resume refuses any other config.
    fingerprint: String,
    /// Whether the fold carries events (must match the resuming recorder).
    record_events: bool,
    /// Total nodes in the fleet, for progress reporting.
    nodes: usize,
    /// Nodes already folded; the resume simulates `nodes_done..nodes`.
    nodes_done: usize,
    /// Fault tally across the folded prefix.
    faulted: usize,
    /// Compact packet records of the folded prefix, in fold order.
    records: Vec<PacketRecord>,
    /// Metric registry of the folded prefix (node-order fold).
    metrics: Metrics,
    /// Event prefix in fold order — deliberately *unsorted*: the engine
    /// canonicalizes the interleaving once, at finalize.
    events: Vec<Event>,
    /// Per-node tallies when the config opted in.
    per_node: Option<Vec<NodeCounts>>,
}

impl FleetCheckpoint {
    /// Captures the accumulator's state under `config`'s fingerprint.
    pub(crate) fn capture(config: &FleetConfig, acc: &FleetAccumulator) -> Self {
        let (faulted, records, telemetry, per_node) = acc.parts();
        Self {
            fingerprint: fleet_fingerprint(config),
            record_events: acc.record_events(),
            nodes: config.nodes,
            nodes_done: acc.nodes_done(),
            faulted,
            records: records.to_vec(),
            metrics: telemetry.metrics.clone(),
            events: telemetry.events().to_vec(),
            per_node: per_node.map(<[NodeCounts]>::to_vec),
        }
    }

    /// Nodes already folded into this checkpoint.
    pub fn nodes_done(&self) -> usize {
        self.nodes_done
    }

    /// Total nodes in the checkpointed fleet.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Whether phase 1 is finished (resume goes straight to the merge).
    pub fn is_complete(&self) -> bool {
        self.nodes_done >= self.nodes
    }

    /// Rebuilds the accumulator, refusing configs or recording modes other
    /// than the ones the checkpoint was captured under.
    fn restore(
        &self,
        config: &FleetConfig,
        record_events: bool,
    ) -> Result<FleetAccumulator, CheckpointError> {
        if self.fingerprint != fleet_fingerprint(config) {
            return Err(CheckpointError::Mismatch(
                "checkpoint was captured under a different fleet configuration",
            ));
        }
        if self.record_events != record_events {
            return Err(CheckpointError::Mismatch(
                "checkpoint event-recording mode does not match the resuming recorder",
            ));
        }
        let mut telemetry = TelemetryBuffer::with_events(record_events);
        telemetry.metrics = self.metrics.clone();
        for event in &self.events {
            telemetry.record_for(event.node, event.t_ns, event.kind.clone());
        }
        Ok(FleetAccumulator::from_parts(
            self.nodes_done,
            self.faulted,
            self.records.clone(),
            telemetry,
            self.per_node.clone(),
        ))
    }
}

impl ToJson for FleetCheckpoint {
    fn to_json(&self) -> Json {
        let mut obj = vec![
            ("version".into(), 1u64.to_json()),
            ("fingerprint".into(), self.fingerprint.to_json()),
            ("record_events".into(), self.record_events.to_json()),
            ("nodes".into(), self.nodes.to_json()),
            ("nodes_done".into(), self.nodes_done.to_json()),
            ("faulted".into(), self.faulted.to_json()),
            ("records".into(), self.records.to_json()),
            ("metrics".into(), self.metrics.to_json()),
            ("events".into(), self.events.to_json()),
        ];
        if let Some(per_node) = &self.per_node {
            obj.push(("per_node".into(), per_node.to_json()));
        }
        Json::Obj(obj)
    }
}

impl FromJson for FleetCheckpoint {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let version = u64::from_json(field(value, "version")?)?;
        if version != 1 {
            return Err(JsonError::new(format!(
                "unsupported fleet checkpoint version {version}"
            )));
        }
        let nodes = usize::from_json(field(value, "nodes")?)?;
        let nodes_done = usize::from_json(field(value, "nodes_done")?)?;
        if nodes_done > nodes {
            return Err(JsonError::new("checkpoint cursor past the fleet size"));
        }
        Ok(Self {
            fingerprint: String::from_json(field(value, "fingerprint")?)?,
            record_events: bool::from_json(field(value, "record_events")?)?,
            nodes,
            nodes_done,
            faulted: usize::from_json(field(value, "faulted")?)?,
            records: Vec::from_json(field(value, "records")?)?,
            metrics: Metrics::from_json(field(value, "metrics")?)?,
            events: Vec::from_json(field(value, "events")?)?,
            per_node: match value.get("per_node") {
                Some(per_node) => Some(Vec::from_json(per_node)?),
                None => None,
            },
        })
    }
}

/// Runs (or continues) phase 1 for at most `budget` more nodes and returns
/// the fold cut as a checkpoint. `budget` is clamped to at least one node
/// so every call makes progress; once [`FleetCheckpoint::is_complete`],
/// further calls return the checkpoint unchanged.
///
/// `record_events` chooses whether the fold carries the event stream; it
/// must match `recorder.wants_events()` of the recorder eventually handed
/// to [`run_fleet_resumable`].
///
/// # Panics
///
/// Panics if a node fails to build (same contract as
/// [`run_fleet`](super::run_fleet); the base config is probe-built before
/// any worker thread starts).
pub fn run_fleet_partial(
    config: &FleetConfig,
    resume: Option<&FleetCheckpoint>,
    budget: usize,
    record_events: bool,
) -> Result<FleetCheckpoint, CheckpointError> {
    config.validate().map_err(CheckpointError::Config)?;
    let mut acc = match resume {
        Some(checkpoint) => checkpoint.restore(config, record_events)?,
        None => {
            probe_build(config);
            FleetAccumulator::new(record_events, config.per_node_stats)
        }
    };
    let upto = acc
        .nodes_done()
        .saturating_add(budget.max(1))
        .min(config.nodes);
    stream_nodes(config, &mut acc, upto);
    Ok(FleetCheckpoint::capture(config, &acc))
}

/// Runs the fleet to completion, continuing from `resume` when given — the
/// checkpoint-aware sibling of [`run_fleet_with`](super::run_fleet_with),
/// with degenerate configs surfacing as typed errors instead of panics.
///
/// Bit-identity contract: for any split of the node range into
/// [`run_fleet_partial`] legs (including legs serialized through JSON in
/// between, and legs run under different [`Parallelism`](super::Parallelism)
/// modes), the final outcome, metric registry and event stream are
/// identical to a single uninterrupted `run_fleet_with` call.
///
/// # Panics
///
/// Panics if a node fails to build, as [`run_fleet`](super::run_fleet)
/// does.
pub fn run_fleet_resumable(
    config: &FleetConfig,
    resume: Option<&FleetCheckpoint>,
    recorder: &mut dyn Recorder,
) -> Result<(FleetOutcome, Metrics), CheckpointError> {
    config.validate().map_err(CheckpointError::Config)?;
    let mut acc = match resume {
        Some(checkpoint) => checkpoint.restore(config, recorder.wants_events())?,
        None => {
            probe_build(config);
            FleetAccumulator::new(recorder.wants_events(), config.per_node_stats)
        }
    };
    stream_nodes(config, &mut acc, config.nodes);
    Ok(finalize_fleet(config, acc, recorder))
}

/// One node's simulation cut mid-run, as a replayable recipe: the node
/// config, application board and elapsed simulated time. See the module
/// docs for why replay (not state serialization) is the right checkpoint
/// for a `Stack`, and `tests/checkpoint.rs` for the wake-boundary
/// bit-identity pins.
#[derive(Debug, Clone, PartialEq)]
pub struct StackCheckpoint {
    config: NodeConfig,
    app: FleetApp,
    elapsed: SimDuration,
    record_events: bool,
}

impl StackCheckpoint {
    /// Checkpoints an arbitrary node recipe at `elapsed`.
    pub fn new(
        config: NodeConfig,
        app: FleetApp,
        elapsed: SimDuration,
        record_events: bool,
    ) -> Self {
        Self {
            config,
            app,
            elapsed,
            record_events,
        }
    }

    /// Checkpoints fleet node `index` of `config` at `elapsed`: derives the
    /// node's concrete config (identity, seed stream, deployment jitter)
    /// exactly as the fleet engine does.
    pub fn for_fleet_node(
        config: &FleetConfig,
        index: usize,
        elapsed: SimDuration,
        record_events: bool,
    ) -> Self {
        let mut setup = node_setup_rng(config.seed, index);
        Self {
            config: fleet_node_config(config, index, &mut setup),
            app: config.app,
            elapsed,
            record_events,
        }
    }

    /// Simulated time already elapsed at the cut.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Rebuilds the stack and replays it to the cut. The returned node is
    /// ready for `run_for(remaining)`; determinism makes the replayed
    /// prefix bit-identical to the original run's.
    pub fn resume(&self) -> Result<PicoCube, CheckpointError> {
        let mut node =
            build_fleet_node(self.config.clone(), self.app).map_err(CheckpointError::Build)?;
        node.set_event_recording(self.record_events);
        if !self.elapsed.is_zero() {
            node.run_for(self.elapsed);
        }
        Ok(node)
    }
}

impl ToJson for StackCheckpoint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("version".into(), 1u64.to_json()),
            ("config".into(), self.config.to_json()),
            ("app".into(), self.app.to_json()),
            ("elapsed_ns".into(), self.elapsed.as_nanos().to_json()),
            ("record_events".into(), self.record_events.to_json()),
        ])
    }
}

impl FromJson for StackCheckpoint {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let version = u64::from_json(field(value, "version")?)?;
        if version != 1 {
            return Err(JsonError::new(format!(
                "unsupported stack checkpoint version {version}"
            )));
        }
        Ok(Self {
            config: NodeConfig::from_json(field(value, "config")?)?,
            app: FleetApp::from_json(field(value, "app")?)?,
            elapsed: SimDuration::from_nanos(u64::from_json(field(value, "elapsed_ns")?)?),
            record_events: bool::from_json(field(value, "record_events")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_sim::SimDuration;
    use picocube_telemetry::NullRecorder;

    fn config(per_node_stats: bool) -> FleetConfig {
        FleetConfig::builder()
            .nodes(6)
            .duration(SimDuration::from_secs(30))
            .seed(77)
            .per_node_stats(per_node_stats)
            .build()
            .expect("valid test scenario")
    }

    #[test]
    fn partial_legs_then_resume_match_uninterrupted() {
        let cfg = config(true);
        let (direct, direct_metrics) = super::super::run_fleet_with(&cfg, &mut NullRecorder);

        // Three legs: 2 + 2 + rest, the first cut serialized through JSON
        // text in between.
        let first = run_fleet_partial(&cfg, None, 2, false).expect("leg 1");
        assert_eq!(first.nodes_done(), 2);
        let text = first.to_json().to_string();
        let parsed = Json::parse(&text).expect("checkpoint text parses");
        let thawed = FleetCheckpoint::from_json(&parsed).expect("checkpoint round trips");
        assert_eq!(thawed, first);
        let checkpoint = run_fleet_partial(&cfg, Some(&thawed), 2, false).expect("leg 2");
        assert_eq!(checkpoint.nodes_done(), 4);
        assert!(!checkpoint.is_complete());
        let (resumed, resumed_metrics) =
            run_fleet_resumable(&cfg, Some(&checkpoint), &mut NullRecorder).expect("final leg");

        assert_eq!(resumed, direct);
        assert_eq!(
            resumed_metrics.to_json().to_string(),
            direct_metrics.to_json().to_string()
        );
    }

    #[test]
    fn resume_rejects_mismatched_config_and_mode() {
        let cfg = config(false);
        let checkpoint = run_fleet_partial(&cfg, None, 3, false).expect("leg 1");

        let mut other = cfg.clone();
        other.seed = 78;
        assert!(matches!(
            run_fleet_resumable(&other, Some(&checkpoint), &mut NullRecorder),
            Err(CheckpointError::Mismatch(_))
        ));

        let mut events: Vec<picocube_telemetry::Event> = Vec::new();
        assert!(matches!(
            run_fleet_resumable(&cfg, Some(&checkpoint), &mut events),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn parallelism_may_change_between_legs() {
        // The fingerprint deliberately excludes the execution mode: a
        // checkpoint captured serially resumes threaded, bit-identically.
        let serial = config(true);
        let mut threaded = serial.clone();
        threaded.parallelism = super::super::Parallelism::Threads(3);

        let (direct, _) = super::super::run_fleet_with(&serial, &mut NullRecorder);
        let checkpoint = run_fleet_partial(&serial, None, 3, false).expect("serial leg");
        let (resumed, _) = run_fleet_resumable(&threaded, Some(&checkpoint), &mut NullRecorder)
            .expect("threaded leg");
        assert_eq!(resumed, direct);
    }

    #[test]
    fn stack_checkpoint_round_trips_through_json() {
        let cfg = config(false);
        let checkpoint = StackCheckpoint::for_fleet_node(&cfg, 2, SimDuration::from_secs(12), true);
        let text = checkpoint.to_json().to_string();
        let parsed = Json::parse(&text).expect("checkpoint text parses");
        let thawed = StackCheckpoint::from_json(&parsed).expect("round trips");
        assert_eq!(thawed, checkpoint);
    }

    #[test]
    fn typed_rejection_of_degenerate_configs() {
        let mut cfg = config(false);
        cfg.nodes = 0;
        assert!(matches!(
            run_fleet_partial(&cfg, None, 1, false),
            Err(CheckpointError::Config(FleetConfigError::ZeroNodes))
        ));
        assert!(matches!(
            run_fleet_resumable(&cfg, None, &mut NullRecorder),
            Err(CheckpointError::Config(FleetConfigError::ZeroNodes))
        ));
    }
}
