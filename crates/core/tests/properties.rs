//! Property-based tests for the shared collision/capture sweep.
//!
//! [`capture_sweep`] is the one collision model every receiver in the
//! workspace uses — the fleet sink, the mesh sink and every relay node —
//! so its edge cases (exact ties at the capture margin, a node's own
//! adjacent frames, overlap chains that are not cliques) are pinned here
//! against a brute-force pairwise reference.

use picocube_node::{capture_sweep, AirSlot};
use picocube_sim::SimTime;
use picocube_units::{Db, Dbm};
use proptest::prelude::*;

fn slot(node: usize, start_us: u64, end_us: u64, dbm: f64) -> AirSlot {
    AirSlot {
        node,
        start: SimTime::from_micros(start_us),
        end: SimTime::from_micros(end_us),
        rx_dbm: Dbm::new(dbm),
    }
}

/// O(n²) reference: a slot collides iff some *other* node's slot overlaps
/// it (half-open intervals — touching endpoints do not overlap) and the
/// strongest such interferer is not cleared by `margin`.
fn brute_force(slots: &[AirSlot], margin: Db) -> Vec<bool> {
    slots
        .iter()
        .enumerate()
        .map(|(i, a)| {
            slots
                .iter()
                .enumerate()
                .filter(|&(j, b)| i != j && a.node != b.node && a.start < b.end && b.start < a.end)
                .map(|(_, b)| b.rx_dbm)
                .max_by(|x, y| x.partial_cmp(y).expect("levels are finite"))
                .is_some_and(|strongest| a.rx_dbm.margin_over(strongest) < margin)
        })
        .collect()
}

/// Strategy: a sorted batch of transmission slots across a handful of
/// nodes, dense enough in time that overlaps and chains are common.
fn slots(max_len: usize) -> impl Strategy<Value = Vec<AirSlot>> {
    prop::collection::vec((0usize..4, 0u64..400, 1u64..150, 30u64..90), 0..max_len).prop_map(
        |raw| {
            let mut slots: Vec<AirSlot> = raw
                .into_iter()
                .map(|(node, start, dur, atten)| slot(node, start, start + dur, -(atten as f64)))
                .collect();
            slots.sort_by_key(|s| (s.start, s.node));
            slots
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The forward sweep agrees with the brute-force pairwise model on
    /// arbitrary overlap structure — including three-way (and longer)
    /// chains where a–b and b–c overlap but a–c does not, so collision
    /// is *not* transitive and b can collide while a and c capture.
    #[test]
    fn sweep_matches_brute_force(slots in slots(24), margin_db in 0u64..20) {
        let margin = Db::new(margin_db as f64);
        prop_assert_eq!(capture_sweep(&slots, margin), brute_force(&slots, margin));
    }

    /// Equal-power overlapping transmissions from different nodes jam each
    /// other whenever the capture margin is positive: a 0 dB advantage
    /// never captures.
    #[test]
    fn equal_power_overlap_collides_both(
        start in 0u64..100,
        dur in 1u64..100,
        offset in 0u64..99,
        atten in 30u64..90,
        margin_db in 1u64..20,
    ) {
        // Force a genuine overlap: the second slot starts inside the first.
        let offset = offset % dur;
        let mut pair = vec![
            slot(0, start, start + dur, -(atten as f64)),
            slot(1, start + offset, start + offset + dur, -(atten as f64)),
        ];
        pair.sort_by_key(|s| (s.start, s.node));
        let flags = capture_sweep(&pair, Db::new(margin_db as f64));
        prop_assert_eq!(flags, vec![true, true]);
    }

    /// A node's own transmissions never collide with each other, whatever
    /// their overlap structure — back-to-back frames from one PA window
    /// are adjacent by construction and a transmitter does not jam itself.
    #[test]
    fn same_node_slots_never_collide(raw in slots(16), margin_db in 0u64..20) {
        let mut slots = raw;
        for s in &mut slots {
            s.node = 3;
        }
        let flags = capture_sweep(&slots, Db::new(margin_db as f64));
        prop_assert!(flags.iter().all(|&collided| !collided));
    }
}

/// An exact tie at the capture margin still captures: the collide
/// condition is a *strict* `margin_over < capture_margin`, so a packet
/// exactly `margin` dB above its strongest interferer survives, and one
/// epsilon below does not. Exact dB values keep the f64 subtraction exact.
#[test]
fn exact_tie_at_the_capture_margin_captures() {
    let margin = Db::new(10.0);
    let overlap = |strong_dbm: f64| {
        let mut pair = vec![slot(0, 0, 100, strong_dbm), slot(1, 50, 150, -70.0)];
        pair.sort_by_key(|s| (s.start, s.node));
        capture_sweep(&pair, margin)
    };
    // -60 dBm over -70 dBm is exactly the 10 dB margin: captures.
    assert_eq!(overlap(-60.0), vec![false, true]);
    // A hair under the margin: both lose.
    assert_eq!(overlap(-60.5), vec![true, true]);
}

/// The canonical chain: a–b overlap, b–c overlap, a–c disjoint. With b
/// weakest, b collides against both neighbours while a and c each clear
/// their only interferer — collision does not propagate across the chain.
#[test]
fn three_way_chain_is_not_transitive() {
    let chain = vec![
        slot(0, 0, 100, -50.0),
        slot(1, 80, 180, -75.0),
        slot(2, 150, 250, -50.0),
    ];
    assert_eq!(
        capture_sweep(&chain, Db::new(10.0)),
        vec![false, true, false]
    );
    // Raise b to parity and the whole chain jams: a and c now face an
    // equal-power interferer they cannot clear.
    let mut parity = chain;
    if let Some(b) = parity.get_mut(1) {
        b.rx_dbm = Dbm::new(-50.0);
    }
    assert_eq!(
        capture_sweep(&parity, Db::new(10.0)),
        vec![true, true, true]
    );
}
