//! Property-based tests for the storage models: conservation, saturation
//! and bounds invariants across random charge/discharge schedules.

use picocube_storage::{CapacitorBank, NimhCell, PrintedFilmCell, StorageElement};
use picocube_units::{Amps, Seconds, SquareMillimeters, Volts};
use proptest::prelude::*;

/// A random signed current step in mA and a duration in seconds.
fn schedule() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(((-20.0f64..20.0), (0.1f64..600.0)), 1..40)
}

proptest! {
    #[test]
    fn nimh_soc_stays_in_bounds(steps in schedule()) {
        let mut cell = NimhCell::picocube();
        for &(ma, secs) in &steps {
            cell.step(Amps::from_milli(ma), Seconds::new(secs));
            let soc = cell.state_of_charge();
            prop_assert!((0.0..=1.0).contains(&soc), "soc {soc}");
            prop_assert!(cell.stored_energy().value() >= 0.0);
            prop_assert!(cell.stored_energy() <= cell.capacity());
        }
    }

    #[test]
    fn nimh_never_creates_energy(steps in schedule()) {
        let mut cell = NimhCell::picocube();
        cell.set_state_of_charge(0.5);
        let mut stored_before = cell.stored_energy().value();
        for &(ma, secs) in &steps {
            let applied = 1.2 * (ma * 1e-3).max(0.0) * secs; // charging energy in
            cell.step(Amps::from_milli(ma), Seconds::new(secs));
            let stored_now = cell.stored_energy().value();
            prop_assert!(
                stored_now - stored_before <= applied + 1e-9,
                "gained {} from {} applied", stored_now - stored_before, applied
            );
            stored_before = stored_now;
        }
    }

    #[test]
    fn nimh_ocv_is_monotone_in_soc(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let mut cell = NimhCell::picocube();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        cell.set_state_of_charge(lo);
        let v_lo = cell.open_circuit_voltage();
        cell.set_state_of_charge(hi);
        let v_hi = cell.open_circuit_voltage();
        prop_assert!(v_hi >= v_lo);
    }

    #[test]
    fn capacitor_voltage_respects_rating(steps in schedule()) {
        let mut cap = CapacitorBank::supercap_100mf();
        for &(ma, secs) in &steps {
            cap.step(Amps::from_milli(ma), Seconds::new(secs));
            let v = cap.open_circuit_voltage();
            prop_assert!(v.value() >= 0.0);
            prop_assert!(v <= cap.rated_voltage());
        }
    }

    #[test]
    fn capacitor_energy_is_half_cv_squared(v in 0.0f64..2.5) {
        let mut cap = CapacitorBank::supercap_100mf();
        cap.set_voltage(Volts::new(v));
        let expected = 0.5 * 0.1 * v * v;
        prop_assert!((cap.stored_energy().value() - expected).abs() < 1e-12);
    }

    #[test]
    fn printed_film_bounds(steps in schedule(), area in 10.0f64..500.0, film in 30.0f64..100.0) {
        let mut cell = PrintedFilmCell::new(
            SquareMillimeters::new(area),
            picocube_units::Millimeters::from_micrometers(film),
        );
        for &(ma, secs) in &steps {
            let out = cell.step(Amps::from_milli(ma), Seconds::new(secs));
            prop_assert!(out.dissipated.value() >= 0.0);
            prop_assert!((0.0..=1.0).contains(&cell.state_of_charge()));
            let v = cell.open_circuit_voltage().value();
            prop_assert!((0.9..=1.5).contains(&v), "ocv {v}");
        }
    }

    #[test]
    fn printed_sizing_round_trips(budget in 0.1f64..20.0, film in 30.0f64..100.0) {
        let area = PrintedFilmCell::area_for(
            picocube_units::Joules::new(budget),
            picocube_units::Millimeters::from_micrometers(film),
        );
        let cell = PrintedFilmCell::new(area, picocube_units::Millimeters::from_micrometers(film));
        prop_assert!((cell.capacity().value() - budget).abs() < 1e-9 * budget.max(1.0));
    }

    #[test]
    fn discharge_accepted_never_exceeds_requested(ma in 0.1f64..50.0, secs in 1.0f64..3600.0) {
        let mut cell = NimhCell::picocube();
        cell.set_state_of_charge(0.05);
        let out = cell.step(Amps::from_milli(-ma), Seconds::new(secs));
        prop_assert!(out.accepted.value() <= 0.0);
        prop_assert!(out.accepted.value().abs() <= ma * 1e-3 + 1e-15);
    }
}
