//! The bypass-capacitor network that covers NiMH's burst weakness.
//!
//! §4.4: "batteries typically exhibit poor burst current performance
//! relative to capacitors. This can be addressed by using bypass
//! capacitors." The radio board carries bypass capacitors on the 0.65 V
//! supply; the storage board carries filter capacitors behind the
//! rectifier. This model answers the sizing question: for a given burst
//! (current × duration) and allowed droop, is the network adequate?

use picocube_units::{Amps, Farads, Ohms, Seconds, Volts};

/// A parallel bank of bypass capacitors local to a bursty load.
#[derive(Debug, Clone, PartialEq)]
pub struct BypassNetwork {
    total_capacitance: Farads,
    effective_esr: Ohms,
}

impl BypassNetwork {
    /// Creates a network from total capacitance and effective (parallel)
    /// ESR.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    pub fn new(total_capacitance: Farads, effective_esr: Ohms) -> Self {
        assert!(
            total_capacitance.value() > 0.0,
            "capacitance must be positive"
        );
        assert!(effective_esr.value() > 0.0, "esr must be positive");
        Self {
            total_capacitance,
            effective_esr,
        }
    }

    /// The radio-board 0.65 V rail bypass: 4 × 2.2 µF ceramics.
    pub fn radio_rail() -> Self {
        Self::new(Farads::from_micro(8.8), Ohms::new(0.01))
    }

    /// Total capacitance.
    pub fn capacitance(&self) -> Farads {
        self.total_capacitance
    }

    /// Instantaneous + droop voltage dip for a rectangular burst of `i`
    /// lasting `dt`, assuming the upstream source supplies nothing during
    /// the burst (worst case).
    pub fn droop(&self, i: Amps, dt: Seconds) -> Volts {
        let dq = i.value() * dt.value();
        Volts::new(dq / self.total_capacitance.value()) + i * self.effective_esr
    }

    /// Whether a burst stays within the allowed droop.
    pub fn supports_burst(&self, i: Amps, dt: Seconds, max_droop: Volts) -> bool {
        self.droop(i, dt) <= max_droop
    }

    /// Minimum capacitance needed for a burst within `max_droop`, at this
    /// network's ESR.
    ///
    /// Returns `None` if the ESR drop alone already exceeds the budget (no
    /// amount of capacitance helps).
    pub fn required_capacitance(&self, i: Amps, dt: Seconds, max_droop: Volts) -> Option<Farads> {
        let esr_drop = i * self.effective_esr;
        let budget = (max_droop - esr_drop).value();
        if budget <= 0.0 {
            return None;
        }
        Some(Farads::new(i.value() * dt.value() / budget))
    }

    /// Recharge time through a source impedance `r_source` back to within
    /// 1 % of the rail after a full `droop`: ≈ `4.6·(R_src·C)`.
    pub fn recovery_time(&self, r_source: Ohms) -> Seconds {
        Seconds::new(4.6 * r_source.value() * self.total_capacitance.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radio_burst_droop_is_small() {
        // The bypass bank only needs to carry the PA's 2 mA until the
        // regulator loop responds (~50 µs); over that window the droop must
        // stay inside the FBAR oscillator's ±20 mV supply budget.
        let net = BypassNetwork::radio_rail();
        let droop = net.droop(Amps::from_milli(2.0), Seconds::new(50e-6));
        assert!(droop < Volts::from_milli(12.0), "droop {droop:?}");
        assert!(net.supports_burst(
            Amps::from_milli(2.0),
            Seconds::new(50e-6),
            Volts::from_milli(20.0)
        ));
    }

    #[test]
    fn required_capacitance_inverse_in_budget() {
        let net = BypassNetwork::radio_rail();
        let c1 = net
            .required_capacitance(
                Amps::from_milli(2.0),
                Seconds::new(50e-6),
                Volts::from_milli(20.0),
            )
            .unwrap();
        let c2 = net
            .required_capacitance(
                Amps::from_milli(2.0),
                Seconds::new(50e-6),
                Volts::from_milli(10.0),
            )
            .unwrap();
        assert!(c2 > c1);
        // Supporting the burst implies the fitted capacitance suffices.
        assert!(net.capacitance() >= c1);
    }

    #[test]
    fn esr_dominated_budget_is_unsolvable() {
        let lossy = BypassNetwork::new(Farads::from_micro(10.0), Ohms::new(50.0));
        // 2 mA × 50 Ω = 100 mV of ESR drop > 20 mV budget.
        assert!(lossy
            .required_capacitance(
                Amps::from_milli(2.0),
                Seconds::new(1e-3),
                Volts::from_milli(20.0)
            )
            .is_none());
    }

    #[test]
    fn recovery_time_scales_with_source_impedance() {
        let net = BypassNetwork::radio_rail();
        let fast = net.recovery_time(Ohms::new(1.0));
        let slow = net.recovery_time(Ohms::new(100.0));
        assert!((slow.value() / fast.value() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn zero_capacitance_rejected() {
        BypassNetwork::new(Farads::ZERO, Ohms::new(0.01));
    }
}
