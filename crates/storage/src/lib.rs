//! Energy-storage models for harvested-energy buffering.
//!
//! §4.4 of the paper weighs storage technologies by three properties:
//! gravimetric energy density (NiMH ≈ 220 J/g vs ≈ 10 J/g for a
//! supercapacitor and ≈ 2 J/g for a typical capacitor), the voltage/
//! state-of-charge relationship (flat for NiMH, linear for capacitors —
//! which would force extra DC-DC hardware), and burst-current capability
//! (capacitors win; the Cube pairs its NiMH cell with bypass capacitors).
//! NiMH is chosen because its 1.2 V plateau is "close to optimal" for the
//! supply generation and because it tolerates indefinite C/10 trickle
//! charging with no charge-control circuitry.
//!
//! This crate models all three technologies behind one [`StorageElement`]
//! interface, plus the bypass network that papers over NiMH's burst
//! weakness, so the §4.4 trade table is a *measurement* of the models.
//!
//! # Examples
//!
//! ```
//! use picocube_storage::{NimhCell, StorageElement};
//! use picocube_units::{Amps, Seconds};
//!
//! let mut cell = NimhCell::picocube(); // 15 mAh, 1.2 V nominal
//! let v0 = cell.open_circuit_voltage();
//!
//! // Discharge at 1 mA for an hour: the plateau barely moves.
//! cell.step(Amps::from_milli(-1.0), Seconds::HOUR);
//! assert!((v0 - cell.open_circuit_voltage()).value() < 0.1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bypass;
mod capacitor;
mod comparison;
mod element;
mod nimh;
mod printed;

pub use bypass::BypassNetwork;
pub use capacitor::{CapacitorBank, CapacitorTechnology};
pub use comparison::{technology_table, TechnologyRow};
pub use element::{StepOutcome, StorageElement};
pub use nimh::NimhCell;
pub use printed::{PrintedFilmCell, PRINTED_J_PER_CM2_100UM};

/// Gravimetric energy density of NiMH cells quoted in §4.4.
pub const NIMH_ENERGY_DENSITY: picocube_units::JoulesPerGram =
    picocube_units::JoulesPerGram::new(220.0);

/// Gravimetric energy density of supercapacitors quoted in §4.4.
pub const SUPERCAP_ENERGY_DENSITY: picocube_units::JoulesPerGram =
    picocube_units::JoulesPerGram::new(10.0);

/// Gravimetric energy density of ordinary capacitors quoted in §4.4.
pub const CAPACITOR_ENERGY_DENSITY: picocube_units::JoulesPerGram =
    picocube_units::JoulesPerGram::new(2.0);
