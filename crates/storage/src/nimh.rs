//! The NiMH cell on the storage board.
//!
//! §4.4: "A NiMH battery was chosen for two reasons. First, its discharge
//! characteristics provide a nominal 1.2 V that is stable until just prior
//! to full discharge […] Second, NiMH can be trickle charged for an
//! indefinite period at one-tenth the capacity (C/10) without damage."
//! The PicoCube carries a 15 mAh cell epoxied to the storage board.

use crate::element::{StepOutcome, StorageElement};
use crate::NIMH_ENERGY_DENSITY;
use picocube_units::{Amps, Celsius, Coulombs, Joules, JoulesPerGram, Ohms, Seconds, Volts};

/// Open-circuit voltage vs state-of-charge, piecewise-linear. The long flat
/// plateau is the property the §4.4 battery discussion selects NiMH for
/// (nominal 1.2 V cell voltage; curve shape from NiMH datasheet practice).
const OCV_TABLE: [(f64, f64); 10] = [
    (0.00, 1.00),
    (0.02, 1.10),
    (0.05, 1.16),
    (0.10, 1.19),
    (0.20, 1.21),
    (0.50, 1.23),
    (0.80, 1.24),
    (0.90, 1.26),
    (0.97, 1.33),
    (1.00, 1.40),
];

/// A nickel-metal-hydride cell with plateau discharge curve, internal
/// resistance, coulombic losses, self-discharge, and trickle-charge rules.
#[derive(Debug, Clone, PartialEq)]
pub struct NimhCell {
    /// Full-charge capacity.
    capacity: Coulombs,
    /// Present charge.
    charge: Coulombs,
    nominal: Volts,
    internal_resistance: Ohms,
    /// Fraction of stored charge lost per second (self-discharge).
    self_discharge_rate: f64,
    /// Charge acceptance (fraction of input charge actually stored).
    coulombic_efficiency: f64,
    /// Safe burst discharge limit as a multiple of C.
    burst_c_rating: f64,
    damaged: bool,
    /// Cell temperature: automotive TPMS cells live from −40 to +85 °C.
    temperature: Celsius,
}

impl NimhCell {
    /// Creates a cell of the given charge capacity
    /// ([`Coulombs::from_milliamp_hours`] converts from the datasheet unit).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive.
    pub fn new(capacity: Coulombs) -> Self {
        assert!(capacity.value() > 0.0, "capacity must be positive");
        Self {
            capacity,
            charge: capacity * 0.8, // delivered partially charged
            nominal: Volts::new(1.2),
            internal_resistance: Ohms::new(0.8),
            // NiMH loses roughly 20 % per month at room temperature.
            self_discharge_rate: 0.20 / (30.0 * 86_400.0),
            coulombic_efficiency: 0.90,
            burst_c_rating: 2.0,
            damaged: false,
            temperature: Celsius::new(25.0),
        }
    }

    /// Sets the cell temperature. Cold raises the internal resistance
    /// (~2× at −20 °C) and freezes out part of the capacity; heat
    /// accelerates self-discharge (~2× per 10 °C).
    pub fn set_temperature(&mut self, t: Celsius) {
        self.temperature = t;
    }

    /// Present cell temperature.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Internal resistance at the present temperature.
    pub fn internal_resistance(&self) -> Ohms {
        let cold = (25.0 - self.temperature.value()).max(0.0);
        self.internal_resistance * (1.0 + 0.022 * cold)
    }

    /// Fraction of the rated capacity electrochemically unavailable at the
    /// present temperature (0 at/above room temperature, ~22 % at −20 °C).
    pub fn frozen_fraction(&self) -> f64 {
        let cold = (25.0 - self.temperature.value()).max(0.0);
        (0.005 * cold).min(0.5)
    }

    /// Self-discharge multiplier at the present temperature (doubles per
    /// 10 °C above 25 °C, halves below).
    fn self_discharge_factor(&self) -> f64 {
        2f64.powf((self.temperature.value() - 25.0) / 10.0)
    }

    /// The PicoCube's 15 mAh cell.
    pub fn picocube() -> Self {
        Self::new(Coulombs::from_milliamp_hours(15.0))
    }

    /// Rated capacity as a current: `1C` in amps.
    pub fn c_rate(&self) -> Amps {
        Amps::new(self.capacity.value() / 3600.0)
    }

    /// The indefinite-trickle limit, C/10.
    pub fn trickle_limit(&self) -> Amps {
        self.c_rate() / 10.0
    }

    /// Whether the cell has been abused (overcharged above C/10 while full).
    pub fn is_damaged(&self) -> bool {
        self.damaged
    }

    /// Sets the state of charge directly (for scenario setup).
    ///
    /// # Panics
    ///
    /// Panics if `soc` is outside `[0, 1]`.
    pub fn set_state_of_charge(&mut self, soc: f64) {
        assert!(
            (0.0..=1.0).contains(&soc),
            "state of charge must be in [0, 1]"
        );
        self.charge = self.capacity * soc;
    }

    /// Fraction of the discharge range over which the open-circuit voltage
    /// stays within ±5 % of nominal — the "stable until just prior to full
    /// discharge" property, measurable for the §4.4 comparison.
    pub fn plateau_fraction(&self) -> f64 {
        let lo = self.nominal.value() * 0.95;
        let hi = self.nominal.value() * 1.05;
        let n = 1000;
        let inside = (0..=n)
            .filter(|&i| {
                let v = ocv(i as f64 / n as f64);
                (lo..=hi).contains(&v)
            })
            .count();
        inside as f64 / (n + 1) as f64
    }
}

fn ocv(soc: f64) -> f64 {
    let soc = soc.clamp(0.0, 1.0);
    let mut prev = OCV_TABLE[0];
    for &(s, v) in &OCV_TABLE[1..] {
        if soc <= s {
            let (s0, v0) = prev;
            let frac = if s > s0 { (soc - s0) / (s - s0) } else { 0.0 };
            return v0 + frac * (v - v0);
        }
        prev = (s, v);
    }
    OCV_TABLE[OCV_TABLE.len() - 1].1
}

impl StorageElement for NimhCell {
    fn name(&self) -> &'static str {
        "NiMH"
    }

    fn open_circuit_voltage(&self) -> Volts {
        Volts::new(ocv(self.state_of_charge()))
    }

    fn terminal_voltage(&self, current: Amps) -> Volts {
        self.open_circuit_voltage() + current * self.internal_resistance()
    }

    fn stored_energy(&self) -> Joules {
        // Plateau chemistry: energy tracks charge at the nominal voltage to
        // within a few percent; the residual is inside the OCV table.
        Joules::new(self.charge.value() * self.nominal.value())
    }

    fn capacity(&self) -> Joules {
        Joules::new(self.capacity.value() * self.nominal.value())
    }

    fn energy_density(&self) -> JoulesPerGram {
        NIMH_ENERGY_DENSITY
    }

    fn max_burst_current(&self) -> Amps {
        // Burst capability scales inversely with the (temperature-raised)
        // internal resistance.
        let derate = self.internal_resistance.value() / self.internal_resistance().value();
        self.c_rate() * self.burst_c_rating * derate
    }

    fn step(&mut self, current: Amps, dt: Seconds) -> StepOutcome {
        assert!(dt.value() >= 0.0, "negative time step");
        let mut dissipated = Joules::ZERO;
        let mut depleted = false;

        // Self-discharge first (independent of the external current).
        let leak = Coulombs::new(
            self.charge.value()
                * self.self_discharge_rate
                * self.self_discharge_factor()
                * dt.value(),
        );
        self.charge = Coulombs::new((self.charge - leak).value().max(0.0));
        dissipated += Joules::new(leak.value() * self.nominal.value());

        let accepted;
        if current.value() >= 0.0 {
            // Charging. Coulombic losses always; at full charge, everything
            // goes to heat (that is what trickle charging *is*), and the
            // paper's no-damage guarantee only holds at ≤ C/10.
            let q_in = current * dt;
            let headroom = self.capacity - self.charge;
            let storable =
                Coulombs::new((q_in.value() * self.coulombic_efficiency).min(headroom.value()));
            self.charge += storable;
            let wasted = q_in.value() - storable.value();
            dissipated += Joules::new(wasted * self.nominal.value());
            if self.state_of_charge() >= 0.999 && current > self.trickle_limit() {
                self.damaged = true;
            }
            accepted = current;
        } else {
            // Discharging; clamp at the temperature-dependent floor (cold
            // freezes out part of the charge).
            let q_out = Coulombs::new((-current.value()) * dt.value());
            let floor = self.capacity.value() * self.frozen_fraction();
            let available = Coulombs::new((self.charge.value() - floor).max(0.0));
            let removed = Coulombs::new(q_out.value().min(available.value()));
            self.charge -= removed;
            if removed < q_out {
                depleted = true;
            }
            accepted = if dt.value() > 0.0 {
                Amps::new(-removed.value() / dt.value())
            } else {
                Amps::ZERO
            };
        }
        StepOutcome {
            accepted,
            dissipated,
            depleted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plateau_is_most_of_the_discharge_range() {
        let cell = NimhCell::picocube();
        // §4.4: stable "until just prior to full discharge".
        assert!(
            cell.plateau_fraction() > 0.8,
            "plateau {:.2}",
            cell.plateau_fraction()
        );
    }

    #[test]
    fn ocv_monotonic_in_soc() {
        let mut prev = ocv(0.0);
        for i in 1..=100 {
            let v = ocv(i as f64 / 100.0);
            assert!(v >= prev, "ocv not monotonic at {i}");
            prev = v;
        }
    }

    #[test]
    fn capacity_is_64_8_joules() {
        // 15 mAh at 1.2 V.
        let cell = NimhCell::picocube();
        assert!((cell.capacity().value() - 64.8).abs() < 1e-9);
    }

    #[test]
    fn trickle_limit_is_1_5_ma() {
        let cell = NimhCell::picocube();
        assert!((cell.trickle_limit().milli() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn indefinite_trickle_does_no_damage() {
        let mut cell = NimhCell::picocube();
        cell.set_state_of_charge(1.0);
        // A simulated month of continuous C/10 trickle.
        for _ in 0..(30 * 24) {
            cell.step(cell.trickle_limit(), Seconds::HOUR);
        }
        assert!(!cell.is_damaged());
        assert!(cell.state_of_charge() > 0.99);
    }

    #[test]
    fn fast_charge_at_full_damages() {
        let mut cell = NimhCell::picocube();
        cell.set_state_of_charge(1.0);
        cell.step(cell.c_rate(), Seconds::MINUTE); // 1C into a full cell
        assert!(cell.is_damaged());
    }

    #[test]
    fn fast_charge_when_empty_is_fine() {
        let mut cell = NimhCell::picocube();
        cell.set_state_of_charge(0.1);
        cell.step(cell.c_rate(), Seconds::MINUTE);
        assert!(!cell.is_damaged());
    }

    #[test]
    fn discharge_sags_terminal_voltage() {
        let cell = NimhCell::picocube();
        let rest = cell.terminal_voltage(Amps::ZERO);
        let loaded = cell.terminal_voltage(Amps::from_milli(-10.0));
        assert!(loaded < rest);
        assert!((rest - loaded).milli() - 8.0 < 1e-6); // 10 mA × 0.8 Ω
    }

    #[test]
    fn overcharge_energy_goes_to_heat() {
        let mut cell = NimhCell::picocube();
        cell.set_state_of_charge(1.0);
        let before = cell.stored_energy();
        let out = cell.step(cell.trickle_limit(), Seconds::HOUR);
        assert!(cell.stored_energy() <= before + Joules::from_micro(1.0));
        // All the trickle charge turned into heat (≈ 1.5 mA·h ≈ 6.5 J).
        assert!(out.dissipated > Joules::new(5.0));
    }

    #[test]
    fn depletion_is_flagged_and_clamped() {
        let mut cell = NimhCell::picocube();
        cell.set_state_of_charge(0.001);
        let out = cell.step(Amps::from_milli(-15.0), Seconds::HOUR);
        assert!(out.depleted);
        assert_eq!(cell.stored_energy(), Joules::ZERO);
        assert!(out.accepted.abs() < Amps::from_milli(15.0).abs());
    }

    #[test]
    fn self_discharge_over_a_month() {
        let mut cell = NimhCell::picocube();
        cell.set_state_of_charge(1.0);
        for _ in 0..30 {
            cell.step(Amps::ZERO, Seconds::DAY);
        }
        // ~20 %/month (compounding brings it slightly under a flat 20 %).
        let soc = cell.state_of_charge();
        assert!(soc > 0.78 && soc < 0.85, "soc after a month: {soc:.3}");
    }

    #[test]
    fn self_discharge_alone_costs_microwatts() {
        // A full 15 mAh cell leaking 20 %/month loses ≈ 5 µJ/s — the same
        // order as the whole node's 6 µW budget, which is why harvesting
        // must run ahead of both the load *and* the leak.
        let mut cell = NimhCell::picocube();
        cell.set_state_of_charge(1.0);
        let out = cell.step(Amps::ZERO, Seconds::new(1.0));
        assert!(out.dissipated > Joules::from_micro(3.0));
        assert!(out.dissipated < Joules::from_micro(8.0));
    }

    #[test]
    fn coulombic_efficiency_applies_when_charging() {
        let mut cell = NimhCell::picocube();
        cell.set_state_of_charge(0.5);
        let before = cell.stored_energy();
        cell.step(Amps::from_milli(1.5), Seconds::HOUR); // C/10 for 1 h
        let gained = cell.stored_energy() - before;
        // 1.5 mAh × 1.2 V × 0.9 ≈ 5.8 J stored of 6.5 J applied (minus a
        // whisker of self-discharge).
        assert!(
            gained.value() > 5.5 && gained.value() < 6.0,
            "gained {gained:?}"
        );
    }

    #[test]
    fn burst_limit_is_2c() {
        let cell = NimhCell::picocube();
        assert!((cell.max_burst_current().milli() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn cold_cell_is_stiffer_and_smaller() {
        let mut cell = NimhCell::picocube();
        cell.set_state_of_charge(1.0);
        let warm_r = cell.internal_resistance();
        let warm_burst = cell.max_burst_current();
        cell.set_temperature(Celsius::new(-20.0));
        assert!(cell.internal_resistance().value() > 1.9 * warm_r.value());
        assert!(cell.max_burst_current() < warm_burst * 0.6);
        // Discharge at −20 °C leaves the frozen fraction in the cell.
        let out = cell.step(Amps::from_milli(-30.0), Seconds::from_hours(2.0));
        assert!(out.depleted);
        let frozen = cell.frozen_fraction();
        assert!(
            (cell.state_of_charge() - frozen).abs() < 0.01,
            "soc {}",
            cell.state_of_charge()
        );
        // Warming the cell back up releases it.
        cell.set_temperature(Celsius::new(25.0));
        let out = cell.step(Amps::from_milli(-15.0), Seconds::HOUR);
        assert!(!out.depleted || cell.state_of_charge() < 0.01);
    }

    #[test]
    fn heat_accelerates_self_discharge() {
        let mut hot = NimhCell::picocube();
        hot.set_state_of_charge(1.0);
        hot.set_temperature(Celsius::new(45.0));
        let mut warm = NimhCell::picocube();
        warm.set_state_of_charge(1.0);
        for _ in 0..30 {
            hot.step(Amps::ZERO, Seconds::DAY);
            warm.step(Amps::ZERO, Seconds::DAY);
        }
        let hot_loss = 1.0 - hot.state_of_charge();
        let warm_loss = 1.0 - warm.state_of_charge();
        assert!(
            (hot_loss / warm_loss - 4.0).abs() < 1.0,
            "45 °C should leak ~4× faster: {hot_loss:.3} vs {warm_loss:.3}"
        );
    }

    #[test]
    fn room_temperature_behaviour_is_unchanged() {
        let cell = NimhCell::picocube();
        assert_eq!(cell.temperature(), Celsius::new(25.0));
        assert_eq!(cell.frozen_fraction(), 0.0);
        assert!((cell.internal_resistance().value() - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        NimhCell::new(Coulombs::ZERO);
    }

    #[test]
    #[should_panic(expected = "state of charge")]
    fn bad_soc_rejected() {
        NimhCell::picocube().set_state_of_charge(1.5);
    }
}
