//! §7.2: dispenser-printed thick-film storage. "We are developing a low
//! cost, direct write printing method which integrates the capacitor and
//! battery micropower system directly on a device. […] Films of 30 to
//! 100 µm of these various materials have been printed […] A great benefit
//! of this approach is the ability to design storage to fit the consumer,
//! for example, a specific voltage range."

use crate::element::{StepOutcome, StorageElement};
use picocube_units::{
    Amps, Joules, JoulesPerGram, Millimeters, Ohms, Seconds, SquareMillimeters, Volts,
};

/// Areal energy capacity of the §4.4 printed zinc-chemistry films, per cm²
/// at 100 µm thickness (scales linearly with thickness in the printable
/// 30–100 µm window).
pub const PRINTED_J_PER_CM2_100UM: f64 = 2.0;

/// A dispenser-printed thick-film micro-battery.
///
/// Compared with the packaged NiMH cell it trades capacity and internal
/// resistance for conformality: it prints directly onto the board (zero
/// packaging volume) and its footprint/voltage are design parameters —
/// "design storage to fit the consumer".
#[derive(Debug, Clone, PartialEq)]
pub struct PrintedFilmCell {
    area: SquareMillimeters,
    thickness: Millimeters,
    /// Open-circuit voltage at full charge.
    v_full: Volts,
    /// Open-circuit voltage at empty (printed chemistries slope).
    v_empty: Volts,
    capacity: Joules,
    stored: Joules,
    /// Printed current collectors are resistive.
    internal_resistance: Ohms,
    /// Fraction of stored energy lost per second.
    self_discharge_rate: f64,
}

impl PrintedFilmCell {
    /// Prints a cell of the given footprint and film thickness
    /// ([`Millimeters::from_micrometers`] converts from the paper's µm).
    ///
    /// # Panics
    ///
    /// Panics if the area is non-positive or the thickness is outside the
    /// printable 30–100 µm window the paper reports.
    pub fn new(area: SquareMillimeters, thickness: Millimeters) -> Self {
        assert!(area.value() > 0.0, "area must be positive");
        assert!(
            (30.0..=100.0).contains(&thickness.micrometers()),
            "printable films are 30-100 µm"
        );
        let area_cm2 = area.value() / 100.0;
        let capacity =
            Joules::new(PRINTED_J_PER_CM2_100UM * area_cm2 * thickness.micrometers() / 100.0);
        Self {
            area,
            thickness,
            v_full: Volts::new(1.5),
            v_empty: Volts::new(0.9),
            capacity,
            stored: capacity * 0.5,
            internal_resistance: Ohms::new(120.0),
            self_discharge_rate: 0.05 / (30.0 * 86_400.0), // 5 %/month
        }
    }

    /// Design-to-fit: the footprint needed to hold `budget` at a film
    /// thickness, the §7.2 sizing question.
    ///
    /// # Panics
    ///
    /// Panics if the budget is non-positive or the thickness is outside
    /// the printable window.
    pub fn area_for(budget: Joules, thickness: Millimeters) -> SquareMillimeters {
        assert!(budget.value() > 0.0, "budget must be positive");
        assert!(
            (30.0..=100.0).contains(&thickness.micrometers()),
            "printable films are 30-100 µm"
        );
        let cm2 = budget.value() / (PRINTED_J_PER_CM2_100UM * thickness.micrometers() / 100.0);
        SquareMillimeters::new(cm2 * 100.0)
    }

    /// Printed footprint.
    pub fn area(&self) -> SquareMillimeters {
        self.area
    }

    /// Film thickness.
    pub fn thickness(&self) -> Millimeters {
        self.thickness
    }

    /// Sets the state of charge (scenario setup).
    ///
    /// # Panics
    ///
    /// Panics if `soc` is outside `[0, 1]`.
    pub fn set_state_of_charge(&mut self, soc: f64) {
        assert!(
            (0.0..=1.0).contains(&soc),
            "state of charge must be in [0, 1]"
        );
        self.stored = self.capacity * soc;
    }
}

impl StorageElement for PrintedFilmCell {
    fn name(&self) -> &'static str {
        "printed film"
    }

    fn open_circuit_voltage(&self) -> Volts {
        let soc = self.state_of_charge();
        self.v_empty + (self.v_full - self.v_empty) * soc
    }

    fn terminal_voltage(&self, current: Amps) -> Volts {
        self.open_circuit_voltage() + current * self.internal_resistance
    }

    fn stored_energy(&self) -> Joules {
        self.stored
    }

    fn capacity(&self) -> Joules {
        self.capacity
    }

    fn energy_density(&self) -> JoulesPerGram {
        // Zinc-based printed films: ~20 J/g, between the §4.4 supercap and
        // NiMH points.
        JoulesPerGram::new(20.0)
    }

    fn max_burst_current(&self) -> Amps {
        // The resistive collectors cap useful bursts: I that halves V.
        Amps::new(self.open_circuit_voltage().value() / (2.0 * self.internal_resistance.value()))
    }

    fn step(&mut self, current: Amps, dt: Seconds) -> StepOutcome {
        assert!(dt.value() >= 0.0, "negative time step");
        let mut dissipated = Joules::ZERO;

        // Self-discharge.
        let leak = Joules::new(self.stored.value() * self.self_discharge_rate * dt.value());
        self.stored = Joules::new((self.stored - leak).value().max(0.0));
        dissipated += leak;

        let v = self.open_circuit_voltage();
        let delta = v * current * dt;
        let mut depleted = false;
        let target = self.stored.value() + delta.value();
        if target > self.capacity.value() {
            dissipated += Joules::new(target - self.capacity.value());
            self.stored = self.capacity;
        } else if target < 0.0 {
            depleted = true;
            self.stored = Joules::ZERO;
        } else {
            self.stored = Joules::new(target);
        }
        // Collector conduction heat.
        dissipated += Joules::new(
            current.value() * current.value() * self.internal_resistance.value() * dt.value(),
        );
        let accepted = if depleted { Amps::ZERO } else { current };
        StepOutcome {
            accepted,
            dissipated,
            depleted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_scales_with_area_and_thickness() {
        // 1 cm² at 100 µm = 2 J; half the thickness halves it.
        let full = PrintedFilmCell::new(
            SquareMillimeters::new(100.0),
            Millimeters::from_micrometers(100.0),
        );
        assert!((full.capacity().value() - 2.0).abs() < 1e-12);
        let thin = PrintedFilmCell::new(
            SquareMillimeters::new(100.0),
            Millimeters::from_micrometers(50.0),
        );
        assert!((thin.capacity().value() - 1.0).abs() < 1e-12);
        let wide = PrintedFilmCell::new(
            SquareMillimeters::new(200.0),
            Millimeters::from_micrometers(100.0),
        );
        assert!((wide.capacity().value() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn design_to_fit_round_trips() {
        let area =
            PrintedFilmCell::area_for(Joules::new(2.0), Millimeters::from_micrometers(100.0));
        assert!((area.value() - 100.0).abs() < 1e-9);
        let cell = PrintedFilmCell::new(area, Millimeters::from_micrometers(100.0));
        assert!((cell.capacity().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn a_board_sized_film_covers_days_of_node_sleep() {
        // The 7.2 × 7.2 mm placement area at 100 µm: ~1 J → ~4 days at the
        // node's 3 µW sleep floor. Outage cover, exactly the role §7.2
        // proposes.
        let cell = PrintedFilmCell::new(
            SquareMillimeters::new(51.84),
            Millimeters::from_micrometers(100.0),
        );
        let days = cell.capacity().value() / 3e-6 / 86_400.0;
        assert!(days > 3.0 && days < 5.0, "{days:.1} days");
    }

    #[test]
    fn voltage_slopes_with_charge() {
        let mut cell = PrintedFilmCell::new(
            SquareMillimeters::new(100.0),
            Millimeters::from_micrometers(100.0),
        );
        cell.set_state_of_charge(1.0);
        assert_eq!(cell.open_circuit_voltage(), Volts::new(1.5));
        cell.set_state_of_charge(0.0);
        assert_eq!(cell.open_circuit_voltage(), Volts::new(0.9));
        cell.set_state_of_charge(0.5);
        assert!((cell.open_circuit_voltage().value() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn resistive_collectors_limit_bursts() {
        let cell = PrintedFilmCell::new(
            SquareMillimeters::new(100.0),
            Millimeters::from_micrometers(100.0),
        );
        // The 2 mA radio burst would sag a printed cell by 240 mV — the
        // bypass network becomes mandatory, unlike with NiMH.
        let sag = Amps::from_milli(2.0) * Ohms::new(120.0);
        assert!(sag > Volts::from_milli(200.0));
        assert!(cell.max_burst_current() < Amps::from_milli(10.0));
    }

    #[test]
    fn charge_discharge_round_trip() {
        let mut cell = PrintedFilmCell::new(
            SquareMillimeters::new(100.0),
            Millimeters::from_micrometers(100.0),
        );
        cell.set_state_of_charge(0.5);
        let before = cell.stored_energy();
        cell.step(Amps::from_micro(100.0), Seconds::HOUR);
        assert!(cell.stored_energy() > before);
        let out = cell.step(Amps::from_milli(-100.0), Seconds::HOUR);
        assert!(out.depleted);
        assert_eq!(cell.stored_energy(), Joules::ZERO);
    }

    #[test]
    fn overcharge_clamps_and_dissipates() {
        let mut cell = PrintedFilmCell::new(
            SquareMillimeters::new(100.0),
            Millimeters::from_micrometers(100.0),
        );
        cell.set_state_of_charge(0.99);
        let out = cell.step(Amps::from_milli(1.0), Seconds::HOUR);
        assert_eq!(cell.state_of_charge(), 1.0);
        assert!(out.dissipated > Joules::ZERO);
    }

    #[test]
    #[should_panic(expected = "printable films")]
    fn unprintable_thickness_rejected() {
        PrintedFilmCell::new(
            SquareMillimeters::new(100.0),
            Millimeters::from_micrometers(200.0),
        );
    }
}
