//! Capacitive storage: supercapacitors and ordinary (ceramic/tantalum)
//! capacitors, the §4.4 alternatives to the NiMH cell.
//!
//! Capacitors deliver power "in bursts" but their terminal voltage is
//! directly tied to state of charge (`V = Q/C`), which the paper flags as
//! inconvenient: holding the load rails would require additional wide-range
//! DC-DC hardware. Their energy density is also 20–100× worse than NiMH.

use crate::element::{StepOutcome, StorageElement};
use crate::{CAPACITOR_ENERGY_DENSITY, SUPERCAP_ENERGY_DENSITY};
use picocube_units::{Amps, Farads, Joules, JoulesPerGram, Ohms, Seconds, Volts};

/// Which capacitor technology a [`CapacitorBank`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacitorTechnology {
    /// Electric double-layer supercapacitor: ~10 J/g, higher ESR, some
    /// leakage.
    Supercapacitor,
    /// Ordinary ceramic/film capacitor: ~2 J/g, very low ESR and leakage.
    Ceramic,
}

impl CapacitorTechnology {
    /// §4.4 energy density for the technology.
    pub fn energy_density(self) -> JoulesPerGram {
        match self {
            Self::Supercapacitor => SUPERCAP_ENERGY_DENSITY,
            Self::Ceramic => CAPACITOR_ENERGY_DENSITY,
        }
    }
}

/// A capacitor used as an energy buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitorBank {
    technology: CapacitorTechnology,
    capacitance: Farads,
    v_rated: Volts,
    v_now: Volts,
    esr: Ohms,
    /// Leakage as a parallel resistance.
    leakage: Ohms,
}

impl CapacitorBank {
    /// Creates a capacitor bank.
    ///
    /// # Panics
    ///
    /// Panics if capacitance, rated voltage, ESR or leakage resistance are
    /// not strictly positive.
    pub fn new(
        technology: CapacitorTechnology,
        capacitance: Farads,
        v_rated: Volts,
        esr: Ohms,
        leakage: Ohms,
    ) -> Self {
        assert!(capacitance.value() > 0.0, "capacitance must be positive");
        assert!(v_rated.value() > 0.0, "rated voltage must be positive");
        assert!(
            esr.value() > 0.0 && leakage.value() > 0.0,
            "esr/leakage must be positive"
        );
        Self {
            technology,
            capacitance,
            v_rated,
            v_now: Volts::ZERO,
            esr,
            leakage,
        }
    }

    /// A 0.1 F / 2.5 V supercapacitor sized to hold roughly the same energy
    /// budget window the NiMH cell covers in a day of node operation.
    pub fn supercap_100mf() -> Self {
        Self::new(
            CapacitorTechnology::Supercapacitor,
            Farads::from_milli(100.0),
            Volts::new(2.5),
            Ohms::new(5.0),
            Ohms::new(250_000.0),
        )
    }

    /// A 1 F / 1.4 V supercapacitor sized into the NiMH button cell's
    /// footprint and voltage window, so it drops into the PicoCube power
    /// chain unchanged (the pump sees NiMH-like terminal voltages) — the
    /// Pible-style storage for indoor-light harvesting (see `PAPERS.md`).
    /// Fully charged it holds ≈ 1 J; its ≈ 300 kΩ self-leak is a standing
    /// few-µW drain, the same order as the node itself.
    pub fn picocube_stack() -> Self {
        Self::new(
            CapacitorTechnology::Supercapacitor,
            Farads::new(1.0),
            Volts::new(1.4),
            Ohms::new(8.0),
            Ohms::new(300_000.0),
        )
    }

    /// A 100 µF ceramic bypass-class capacitor.
    pub fn ceramic_100uf() -> Self {
        Self::new(
            CapacitorTechnology::Ceramic,
            Farads::from_micro(100.0),
            Volts::new(6.3),
            Ohms::new(0.02),
            Ohms::new(1e10),
        )
    }

    /// The bank's capacitance.
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }

    /// Rated (maximum) voltage.
    pub fn rated_voltage(&self) -> Volts {
        self.v_rated
    }

    /// Sets the present voltage directly (scenario setup).
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative or exceeds the rating.
    pub fn set_voltage(&mut self, v: Volts) {
        assert!(
            v.value() >= 0.0 && v <= self.v_rated,
            "voltage must be within [0, rated]"
        );
        self.v_now = v;
    }

    /// Voltage sag when asked for a burst `i` for duration `dt`:
    /// `ΔV = i·dt/C + i·ESR`. The complement of the NiMH burst weakness —
    /// and the sizing equation for the Cube's bypass network.
    pub fn burst_sag(&self, i: Amps, dt: Seconds) -> Volts {
        Volts::new(i.value() * dt.value() / self.capacitance.value()) + i * self.esr
    }
}

impl StorageElement for CapacitorBank {
    fn name(&self) -> &'static str {
        match self.technology {
            CapacitorTechnology::Supercapacitor => "supercapacitor",
            CapacitorTechnology::Ceramic => "capacitor",
        }
    }

    fn open_circuit_voltage(&self) -> Volts {
        self.v_now
    }

    fn terminal_voltage(&self, current: Amps) -> Volts {
        self.v_now + current * self.esr
    }

    fn stored_energy(&self) -> Joules {
        self.capacitance.energy_at(self.v_now)
    }

    fn capacity(&self) -> Joules {
        self.capacitance.energy_at(self.v_rated)
    }

    fn energy_density(&self) -> JoulesPerGram {
        self.technology.energy_density()
    }

    fn max_burst_current(&self) -> Amps {
        // Bursts limited only by ESR: current that halves the terminal
        // voltage instantaneously.
        Amps::new(self.v_now.value() / (2.0 * self.esr.value()))
    }

    fn step(&mut self, current: Amps, dt: Seconds) -> StepOutcome {
        assert!(dt.value() >= 0.0, "negative time step");
        let mut dissipated = Joules::ZERO;

        // Leakage: exponential decay through the parallel resistance.
        let tau = self.leakage.value() * self.capacitance.value();
        let before = self.stored_energy();
        let decay = (-dt.value() / tau).exp();
        self.v_now = self.v_now * decay;
        dissipated += before - self.stored_energy();

        // Ideal charge integration, clamped to [0, rated].
        let dv = current.value() * dt.value() / self.capacitance.value();
        let target = self.v_now.value() + dv;
        let clamped = target.clamp(0.0, self.v_rated.value());
        let depleted = current.value() < 0.0 && target < 0.0;
        // Overcharge beyond the rating is dissipated (protection clamp).
        if target > self.v_rated.value() {
            let excess_q = (target - self.v_rated.value()) * self.capacitance.value();
            dissipated += Joules::new(excess_q * self.v_rated.value());
        }
        let accepted = if depleted {
            let removed_q = self.v_now.value() * self.capacitance.value();
            Amps::new(if dt.value() > 0.0 {
                -removed_q / dt.value()
            } else {
                0.0
            })
        } else {
            current
        };
        // ESR conduction heat.
        dissipated +=
            Joules::new(current.value() * current.value() * self.esr.value() * dt.value());
        self.v_now = Volts::new(clamped);
        StepOutcome {
            accepted,
            dissipated,
            depleted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_tracks_state_of_charge_linearly() {
        // The §4.4 inconvenience: V is proportional to charge, so a
        // half-discharged capacitor has lost 75 % of its energy.
        let mut cap = CapacitorBank::supercap_100mf();
        cap.set_voltage(Volts::new(2.5));
        let full = cap.stored_energy();
        cap.set_voltage(Volts::new(1.25));
        assert!((cap.stored_energy().value() / full.value() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn charging_raises_voltage() {
        let mut cap = CapacitorBank::ceramic_100uf();
        cap.step(Amps::from_milli(1.0), Seconds::new(0.1));
        // ΔV = 1 mA × 0.1 s / 100 µF = 1 V.
        assert!((cap.open_circuit_voltage().value() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn burst_current_dwarfs_nimh() {
        let mut cap = CapacitorBank::ceramic_100uf();
        cap.set_voltage(Volts::new(1.2));
        // 1.2 V / (2 × 0.02 Ω) = 30 A vs the NiMH's 30 mA: three orders.
        assert!(cap.max_burst_current() > Amps::new(10.0));
    }

    #[test]
    fn overcharge_clamps_at_rating() {
        let mut cap = CapacitorBank::ceramic_100uf();
        cap.set_voltage(Volts::new(6.0));
        let out = cap.step(Amps::from_milli(10.0), Seconds::new(10.0));
        assert_eq!(cap.open_circuit_voltage(), cap.rated_voltage());
        assert!(out.dissipated > Joules::ZERO);
    }

    #[test]
    fn over_discharge_flags_depletion() {
        let mut cap = CapacitorBank::ceramic_100uf();
        cap.set_voltage(Volts::from_milli(10.0));
        let out = cap.step(Amps::from_milli(-10.0), Seconds::new(1.0));
        assert!(out.depleted);
        assert_eq!(cap.open_circuit_voltage(), Volts::ZERO);
    }

    #[test]
    fn supercap_leaks_faster_than_ceramic() {
        let mut sc = CapacitorBank::supercap_100mf();
        sc.set_voltage(Volts::new(2.0));
        let mut ce = CapacitorBank::ceramic_100uf();
        ce.set_voltage(Volts::new(2.0));
        sc.step(Amps::ZERO, Seconds::DAY);
        ce.step(Amps::ZERO, Seconds::DAY);
        let sc_kept = sc.open_circuit_voltage().value() / 2.0;
        let ce_kept = ce.open_circuit_voltage().value() / 2.0;
        assert!(sc_kept < ce_kept);
    }

    #[test]
    fn burst_sag_formula() {
        let cap = CapacitorBank::ceramic_100uf();
        // 2 mA for 1 ms from 100 µF: 20 mV of droop + 40 µV of ESR drop.
        let sag = cap.burst_sag(Amps::from_milli(2.0), Seconds::new(1e-3));
        assert!((sag.milli() - 20.04).abs() < 1e-6);
    }

    #[test]
    fn technology_energy_densities() {
        assert_eq!(
            CapacitorTechnology::Supercapacitor.energy_density().value(),
            10.0
        );
        assert_eq!(CapacitorTechnology::Ceramic.energy_density().value(), 2.0);
        let sc = CapacitorBank::supercap_100mf();
        // mass implied by density: E_max / ρ.
        let expected = sc.capacity().value() / 10.0;
        assert!((sc.mass().value() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "voltage must be within")]
    fn set_voltage_beyond_rating_panics() {
        CapacitorBank::ceramic_100uf().set_voltage(Volts::new(10.0));
    }
}
