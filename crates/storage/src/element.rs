//! The common interface all storage technologies implement.

use picocube_units::{Amps, Grams, Joules, JoulesPerGram, Seconds, Volts};

/// What actually happened during a [`StorageElement::step`] call.
///
/// Storage elements are *saturating*: charging a full element or
/// discharging an empty one moves less charge than requested. The outcome
/// reports the accepted current so harvest-side accounting can attribute the
/// difference (overcharge dissipation, brown-out) correctly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// The current actually integrated (signed; positive = charging).
    pub accepted: Amps,
    /// Energy turned into heat inside the element during the step
    /// (overcharge dissipation, coulombic inefficiency, self-discharge).
    pub dissipated: Joules,
    /// `true` if the element hit empty during the step.
    pub depleted: bool,
}

/// A rechargeable energy buffer between harvester and load.
pub trait StorageElement {
    /// Technology name for reports.
    fn name(&self) -> &'static str;

    /// Open-circuit (rest) terminal voltage at the present state of charge.
    fn open_circuit_voltage(&self) -> Volts;

    /// Terminal voltage under a signed load current (positive = charging
    /// raises the terminal, negative = discharging sags it through the
    /// internal resistance).
    fn terminal_voltage(&self, current: Amps) -> Volts;

    /// Energy currently stored and extractable.
    fn stored_energy(&self) -> Joules;

    /// Energy stored when completely full.
    fn capacity(&self) -> Joules;

    /// `stored_energy / capacity` in `[0, 1]`.
    fn state_of_charge(&self) -> f64 {
        let cap = self.capacity().value();
        if cap <= 0.0 {
            0.0
        } else {
            (self.stored_energy().value() / cap).clamp(0.0, 1.0)
        }
    }

    /// Element mass implied by its technology's energy density.
    fn mass(&self) -> Grams {
        Grams::new(self.capacity().value() / self.energy_density().value())
    }

    /// Technology gravimetric energy density.
    fn energy_density(&self) -> JoulesPerGram;

    /// Largest discharge current the element can deliver without abuse
    /// (voltage collapse / damage), at the present state.
    fn max_burst_current(&self) -> Amps;

    /// Integrates a signed current (positive = charge) over `dt`.
    fn step(&mut self, current: Amps, dt: Seconds) -> StepOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial linear element for exercising the trait's defaults.
    #[derive(Debug)]
    struct Linear {
        stored: Joules,
        cap: Joules,
    }

    impl StorageElement for Linear {
        fn name(&self) -> &'static str {
            "linear"
        }
        fn open_circuit_voltage(&self) -> Volts {
            Volts::new(1.0)
        }
        fn terminal_voltage(&self, _current: Amps) -> Volts {
            Volts::new(1.0)
        }
        fn stored_energy(&self) -> Joules {
            self.stored
        }
        fn capacity(&self) -> Joules {
            self.cap
        }
        fn energy_density(&self) -> JoulesPerGram {
            JoulesPerGram::new(10.0)
        }
        fn max_burst_current(&self) -> Amps {
            Amps::new(1.0)
        }
        fn step(&mut self, current: Amps, dt: Seconds) -> StepOutcome {
            let delta = Volts::new(1.0) * current * dt;
            self.stored = Joules::new((self.stored + delta).value().clamp(0.0, self.cap.value()));
            StepOutcome {
                accepted: current,
                dissipated: Joules::ZERO,
                depleted: false,
            }
        }
    }

    #[test]
    fn default_soc_and_mass() {
        let e = Linear {
            stored: Joules::new(5.0),
            cap: Joules::new(20.0),
        };
        assert!((e.state_of_charge() - 0.25).abs() < 1e-12);
        assert!((e.mass().value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn soc_of_zero_capacity_is_zero() {
        let e = Linear {
            stored: Joules::ZERO,
            cap: Joules::ZERO,
        };
        assert_eq!(e.state_of_charge(), 0.0);
    }
}
