//! The §4.4 storage-technology trade study, generated from the models.

use crate::{CapacitorBank, NimhCell, StorageElement};
use picocube_units::{Amps, Grams, Joules, JoulesPerGram, Volts};

/// One row of the storage-technology comparison table (experiment E5).
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyRow {
    /// Technology name.
    pub technology: String,
    /// Gravimetric energy density.
    pub energy_density: JoulesPerGram,
    /// Mass required to store the given energy budget.
    pub mass_for_budget: Grams,
    /// Open-circuit voltage at 100 % state of charge.
    pub voltage_full: Volts,
    /// Open-circuit voltage at 50 % state of charge.
    pub voltage_half: Volts,
    /// Relative voltage swing over the top half of the discharge
    /// (`(V_full − V_half) / V_full`): the DC-DC-matching burden.
    pub voltage_swing: f64,
    /// Maximum burst current at full charge.
    pub burst_current: Amps,
}

/// Builds the comparison table for a given energy budget (how much storage
/// the application needs to ride through harvester outages).
///
/// The returned rows regenerate the qualitative §4.4 argument: NiMH wins on
/// density and plateau flatness, capacitors win on bursts.
pub fn technology_table(budget: Joules) -> Vec<TechnologyRow> {
    let mut rows = Vec::new();

    // NiMH sized to the budget.
    let mah = budget.as_milliamp_hours(Volts::new(1.2));
    let mut nimh = NimhCell::new(picocube_units::Coulombs::from_milliamp_hours(mah.max(1e-3)));
    nimh.set_state_of_charge(1.0);
    let v_full = nimh.open_circuit_voltage();
    nimh.set_state_of_charge(0.5);
    let v_half = nimh.open_circuit_voltage();
    rows.push(TechnologyRow {
        technology: "NiMH".into(),
        energy_density: nimh.energy_density(),
        mass_for_budget: Grams::new(budget.value() / nimh.energy_density().value()),
        voltage_full: v_full,
        voltage_half: v_half,
        voltage_swing: (v_full - v_half).value() / v_full.value(),
        burst_current: nimh.max_burst_current(),
    });

    // Capacitors sized so that E = ½CV² at rated voltage equals the budget.
    for proto in [
        CapacitorBank::supercap_100mf(),
        CapacitorBank::ceramic_100uf(),
    ] {
        let v_rated = proto.rated_voltage();
        let c =
            picocube_units::Farads::new(2.0 * budget.value() / (v_rated.value() * v_rated.value()));
        let mut bank = CapacitorBank::new(
            match proto.name() {
                "supercapacitor" => crate::CapacitorTechnology::Supercapacitor,
                _ => crate::CapacitorTechnology::Ceramic,
            },
            c,
            v_rated,
            picocube_units::Ohms::new(if proto.name() == "supercapacitor" {
                5.0
            } else {
                0.02
            }),
            picocube_units::Ohms::new(1e7),
        );
        bank.set_voltage(v_rated);
        let v_full = bank.open_circuit_voltage();
        let burst = bank.max_burst_current();
        // 50 % of *energy* means V/√2.
        bank.set_voltage(Volts::new(v_rated.value() / 2f64.sqrt()));
        let v_half = bank.open_circuit_voltage();
        rows.push(TechnologyRow {
            technology: proto.name().into(),
            energy_density: bank.energy_density(),
            mass_for_budget: Grams::new(budget.value() / bank.energy_density().value()),
            voltage_full: v_full,
            voltage_half: v_half,
            voltage_swing: (v_full - v_half).value() / v_full.value(),
            burst_current: burst,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nimh_is_lightest_for_the_budget() {
        let rows = technology_table(Joules::new(64.8)); // the 15 mAh budget
        let nimh = &rows[0];
        assert_eq!(nimh.technology, "NiMH");
        for other in &rows[1..] {
            assert!(nimh.mass_for_budget < other.mass_for_budget);
        }
        // Density ratios straight from §4.4: 220 / 10 / 2.
        assert!(
            (rows[1].mass_for_budget.value() / nimh.mass_for_budget.value() - 22.0).abs() < 0.1
        );
        assert!(
            (rows[2].mass_for_budget.value() / nimh.mass_for_budget.value() - 110.0).abs() < 0.5
        );
    }

    #[test]
    fn nimh_has_the_flattest_voltage() {
        let rows = technology_table(Joules::new(64.8));
        let nimh_swing = rows[0].voltage_swing;
        for other in &rows[1..] {
            assert!(nimh_swing < other.voltage_swing);
        }
        // Capacitor swing to half energy is exactly 1 − 1/√2 ≈ 29 %.
        assert!((rows[1].voltage_swing - (1.0 - 1.0 / 2f64.sqrt())).abs() < 1e-9);
    }

    #[test]
    fn capacitors_win_bursts() {
        let rows = technology_table(Joules::new(64.8));
        let nimh_burst = rows[0].burst_current;
        assert!(rows[2].burst_current > nimh_burst * 10.0);
    }

    #[test]
    fn table_scales_with_budget() {
        let small = technology_table(Joules::new(10.0));
        let large = technology_table(Joules::new(100.0));
        for (s, l) in small.iter().zip(&large) {
            assert!((l.mass_for_budget.value() / s.mass_for_budget.value() - 10.0).abs() < 1e-6);
        }
    }
}
