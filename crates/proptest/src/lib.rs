//! A small, dependency-free property-testing shim with a
//! [proptest](https://docs.rs/proptest)-compatible surface.
//!
//! The PicoCube workspace builds in fully offline environments, so it
//! cannot pull the real `proptest` crate from a registry. This shim keeps
//! the workspace's property tests source-compatible: the [`proptest!`]
//! macro, the [`Strategy`] trait with `prop_map`/`prop_filter`, range and
//! tuple strategies, [`Just`], [`prop_oneof!`], `prop::collection::vec`,
//! `prop::bool::ANY` and `any::<T>()`.
//!
//! Differences from the real crate are deliberate and small:
//!
//! * No shrinking: a failing case panics with the sampled inputs printed
//!   via the standard assertion message instead of a minimized example.
//! * Deterministic seeding: each test derives its RNG seed from the test
//!   name, so failures reproduce without a persistence file.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately (they are plain
//!   `assert!`/`assert_eq!` with the case counter in scope).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Runner configuration: how many cases each property executes.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The shim's RNG: splitmix64, deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a deterministic RNG from a test identifier.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: seed }
    }

    /// Next raw 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Multiply-shift bounded generation (Lemire); bias is negligible
        // for test sampling and the method is branch-free.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A source of random values of one type.
///
/// Object-safe: combinators carry `where Self: Sized` so strategies can be
/// boxed into [`Union`]s by [`prop_oneof!`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Resamples until `pred` accepts (up to an internal retry cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone, Copy)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive samples",
            self.reason
        );
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: any value.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0/0)
    (S0/0, S1/1)
    (S0/0, S1/1, S2/2)
    (S0/0, S1/1, S2/2, S3/3)
    (S0/0, S1/1, S2/2, S3/3, S4/4)
}

/// A uniformly random value of a primitive type (the `any::<T>()` family).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform sampling over a type's whole domain.
pub trait Arbitrary {
    /// Draws one uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point: a strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// One-of-N choice between boxed strategies (built by [`prop_oneof!`]).
#[derive(Clone)]
pub struct Union<V> {
    arms: Vec<Rc<dyn Strategy<Value = V>>>,
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// Builds a union over the given arms; each is picked uniformly.
    pub fn new(arms: Vec<Rc<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "union needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A strategy producing `Vec`s with length drawn from `len` and
        /// elements drawn from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vectors of `element` values with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().sample(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Uniform `true`/`false`.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// Uniform `true`/`false`.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Chooses uniformly between strategy arms that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(std::rc::Rc::new($arm) as std::rc::Rc<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Asserts a property holds for the sampled case (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality for the sampled case (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( cfg = $cfg:expr;
      $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let _ = case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let x = (5u16..10).sample(&mut rng);
            assert!((5..10).contains(&x));
            let y = (4u8..=15).sample(&mut rng);
            assert!((4..=15).contains(&y));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("combo");
        let strat = prop_oneof![
            (0u8..3).prop_map(|v| format!("lo{v}")),
            Just("fixed").prop_map(str::to_owned),
            (10u8..=12)
                .prop_filter("even only", |v| v % 2 == 0)
                .prop_map(|v| format!("hi{v}")),
        ];
        for _ in 0..200 {
            let s: String = strat.sample(&mut rng);
            assert!(
                ["lo0", "lo1", "lo2", "fixed", "hi10", "hi12"].contains(&s.as_str()),
                "{s}"
            );
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::deterministic("vec");
        let strat = prop::collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_runnable_tests(a in 0u16..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(b as u8 <= 1, true);
        }
    }
}
