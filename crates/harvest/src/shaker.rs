//! The electromagnetic shaker: the pulsed source the §7.1 synchronous
//! rectifier was designed against ("the synchronous rectifier interfaces
//! the electromagnetic shaker (scavenger), which puts out a pulsed
//! waveform").

use crate::Harvester;
use picocube_power::PowerError;
use picocube_units::{Hertz, Joules, Seconds, Watts};

/// A proof-mass/coil generator producing energy pulses at an excitation
/// rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectromagneticShaker {
    excitation: Hertz,
    energy_per_pulse: Joules,
    /// Fraction of each excitation period during which the pulse delivers.
    pulse_duty: f64,
}

impl ElectromagneticShaker {
    /// Creates a shaker.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if any parameter is
    /// non-positive or the duty exceeds 1.
    pub fn new(
        excitation: Hertz,
        energy_per_pulse: Joules,
        pulse_duty: f64,
    ) -> Result<Self, PowerError> {
        if !crate::positive(excitation.value()) {
            return Err(PowerError::InvalidParameter {
                what: "excitation rate must be positive",
            });
        }
        if !crate::positive(energy_per_pulse.value()) {
            return Err(PowerError::InvalidParameter {
                what: "pulse energy must be positive",
            });
        }
        if !(crate::positive(pulse_duty) && pulse_duty <= 1.0) {
            return Err(PowerError::InvalidParameter {
                what: "duty must be in (0, 1]",
            });
        }
        Ok(Self {
            excitation,
            energy_per_pulse,
            pulse_duty,
        })
    }

    /// The bench characterization source: 50 Hz excitation, 9 µJ pulses in
    /// a quarter-period window — 450 µW average, matching the rectifier's
    /// published operating point.
    pub fn bench_450uw() -> Self {
        Self::new(Hertz::new(50.0), Joules::from_micro(9.0), 0.25).expect("valid preset parameters")
    }

    /// Excitation rate.
    pub fn excitation(&self) -> Hertz {
        self.excitation
    }

    /// Average output power: `f × E_pulse`.
    pub fn average(&self) -> Watts {
        Watts::new(self.excitation.value() * self.energy_per_pulse.value())
    }

    /// Peak power inside a pulse: average / duty.
    pub fn peak(&self) -> Watts {
        self.average() / self.pulse_duty
    }

    /// The conduction duty the downstream rectifier sees.
    pub fn duty(&self) -> f64 {
        self.pulse_duty
    }
}

impl Harvester for ElectromagneticShaker {
    fn name(&self) -> &'static str {
        "electromagnetic shaker"
    }

    fn power_at(&self, t: Seconds) -> Watts {
        // Pulse occupies the first `duty` fraction of each period.
        let period = 1.0 / self.excitation.value();
        let phase = t.value().rem_euclid(period) / period;
        if phase < self.pulse_duty {
            self.peak()
        } else {
            Watts::ZERO
        }
    }

    fn average_power(&self, t0: Seconds, t1: Seconds, _n: usize) -> Watts {
        assert!(t1 >= t0, "reversed interval");
        // Closed form: the pulse train's average is exact.
        self.average()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_source_averages_450_uw() {
        let s = ElectromagneticShaker::bench_450uw();
        assert!((s.average().micro() - 450.0).abs() < 1e-9);
    }

    #[test]
    fn peak_is_average_over_duty() {
        let s = ElectromagneticShaker::bench_450uw();
        assert!((s.peak().micro() - 1800.0).abs() < 1e-9);
    }

    #[test]
    fn waveform_is_pulsed() {
        let s = ElectromagneticShaker::bench_450uw();
        // Pulse window: first 5 ms of each 20 ms period.
        assert_eq!(s.power_at(Seconds::new(0.001)), s.peak());
        assert_eq!(s.power_at(Seconds::new(0.010)), Watts::ZERO);
        assert_eq!(s.power_at(Seconds::new(0.021)), s.peak());
    }

    #[test]
    fn sampled_average_matches_closed_form() {
        let s = ElectromagneticShaker::bench_450uw();
        // Integrate the waveform directly over many whole periods.
        let n = 100_000;
        let span = 1.0; // 50 periods
        let sum: f64 = (0..n)
            .map(|i| s.power_at(Seconds::new(span * i as f64 / n as f64)).value())
            .sum();
        let sampled = sum / n as f64;
        assert!((sampled / s.average().value() - 1.0).abs() < 0.01);
    }

    #[test]
    fn zero_duty_rejected() {
        let err =
            ElectromagneticShaker::new(Hertz::new(50.0), Joules::from_micro(1.0), 0.0).unwrap_err();
        assert!(matches!(err, PowerError::InvalidParameter { what } if what.contains("duty")));
    }
}
