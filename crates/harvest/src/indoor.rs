//! Indoor-light harvesting: a small PV panel under scheduled office
//! lighting — the Pible workload (see `PAPERS.md`): a mote living on a
//! few hundred lux of fluorescent light, banking the lit hours into a
//! supercapacitor to ride through lights-out.

use crate::Harvester;
use picocube_power::PowerError;
use picocube_units::json::{field, FromJson, Json, JsonError, ToJson};
use picocube_units::{Seconds, SquareMillimeters, Watts};

/// A daily square-wave lighting schedule: `lit_wm2` W/m² between
/// `on_hour` and `off_hour`, `dark_wm2` otherwise, repeating every 24 h
/// (scenario start is taken as midnight). An `off_hour` smaller than
/// `on_hour` wraps past midnight (night-shift lighting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndoorLightTrace {
    /// Irradiance while the lights are on, W/m² (a 500 lux fluorescent
    /// office is ≈ 5).
    pub lit_wm2: f64,
    /// Residual irradiance after lights-out, W/m² (emergency lighting,
    /// window glow).
    pub dark_wm2: f64,
    /// Hour of day the lights come on, in `[0, 24]`.
    pub on_hour: f64,
    /// Hour of day the lights go off, in `[0, 24]`.
    pub off_hour: f64,
}

impl IndoorLightTrace {
    /// Creates a schedule.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if either irradiance is
    /// negative or an hour falls outside `[0, 24]`.
    pub fn new(
        lit_wm2: f64,
        dark_wm2: f64,
        on_hour: f64,
        off_hour: f64,
    ) -> Result<Self, PowerError> {
        if !(crate::non_negative(lit_wm2) && crate::non_negative(dark_wm2)) {
            return Err(PowerError::InvalidParameter {
                what: "irradiance levels must be non-negative",
            });
        }
        if !((0.0..=24.0).contains(&on_hour) && (0.0..=24.0).contains(&off_hour)) {
            return Err(PowerError::InvalidParameter {
                what: "schedule hours must be in [0, 24]",
            });
        }
        Ok(Self {
            lit_wm2,
            dark_wm2,
            on_hour,
            off_hour,
        })
    }

    /// The Pible-style office: 5 W/m² (≈ 500 lux fluorescent) from 08:00
    /// to 20:00, dark overnight.
    pub fn office() -> Self {
        // picocube-lint: allow(L2) infallible preset parameters
        Self::new(5.0, 0.0, 8.0, 20.0).expect("valid preset parameters")
    }

    /// Irradiance at time `t` from scenario start (midnight), W/m².
    pub fn at(&self, t: Seconds) -> f64 {
        let hour = (t.value() / 3600.0).rem_euclid(24.0);
        let lit = if self.on_hour <= self.off_hour {
            hour >= self.on_hour && hour < self.off_hour
        } else {
            hour >= self.on_hour || hour < self.off_hour
        };
        if lit {
            self.lit_wm2
        } else {
            self.dark_wm2
        }
    }
}

impl ToJson for IndoorLightTrace {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("lit_wm2".into(), self.lit_wm2.to_json()),
            ("dark_wm2".into(), self.dark_wm2.to_json()),
            ("on_hour".into(), self.on_hour.to_json()),
            ("off_hour".into(), self.off_hour.to_json()),
        ])
    }
}

impl FromJson for IndoorLightTrace {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            lit_wm2: FromJson::from_json(field(value, "lit_wm2")?)?,
            dark_wm2: FromJson::from_json(field(value, "dark_wm2")?)?,
            on_hour: FromJson::from_json(field(value, "on_hour")?)?,
            off_hour: FromJson::from_json(field(value, "off_hour")?)?,
        })
    }
}

/// A small amorphous-silicon panel on one face of the cube, harvesting a
/// scheduled indoor-light trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndoorLightPanel {
    active_area: SquareMillimeters,
    /// Cell conversion efficiency under low-lux indoor spectra.
    efficiency: f64,
    trace: IndoorLightTrace,
}

impl IndoorLightPanel {
    /// Creates a panel model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if the area is
    /// non-positive or the efficiency is outside `(0, 1]`.
    pub fn new(
        active_area: SquareMillimeters,
        efficiency: f64,
        trace: IndoorLightTrace,
    ) -> Result<Self, PowerError> {
        if !crate::positive(active_area.value()) {
            return Err(PowerError::InvalidParameter {
                what: "area must be positive",
            });
        }
        if !(crate::positive(efficiency) && efficiency <= 1.0) {
            return Err(PowerError::InvalidParameter {
                what: "bad efficiency: must be in (0, 1]",
            });
        }
        Ok(Self {
            active_area,
            efficiency,
            trace,
        })
    }

    /// The Pible form factor: a 4 cm² amorphous-Si panel at 5 % indoor
    /// efficiency under the given schedule (≈ 100 µW while lit in the
    /// [`IndoorLightTrace::office`] trace).
    pub fn pible(trace: IndoorLightTrace) -> Self {
        // picocube-lint: allow(L2) infallible preset parameters
        Self::new(SquareMillimeters::new(400.0), 0.05, trace).expect("valid preset parameters")
    }

    /// Total active cell area.
    pub fn active_area(&self) -> SquareMillimeters {
        self.active_area
    }
}

impl Harvester for IndoorLightPanel {
    fn name(&self) -> &'static str {
        "indoor light panel"
    }

    fn power_at(&self, t: Seconds) -> Watts {
        let area_m2 = self.active_area.value() * 1e-6;
        Watts::new(self.trace.at(t) * area_m2 * self.efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn office_panel_makes_about_100_uw_while_lit() {
        let panel = IndoorLightPanel::pible(IndoorLightTrace::office());
        let lit = panel.power_at(Seconds::new(12.0 * 3600.0));
        assert!((lit.micro() - 100.0).abs() < 1.0, "{lit:?}");
        let dark = panel.power_at(Seconds::new(2.0 * 3600.0));
        assert_eq!(dark, Watts::ZERO);
    }

    #[test]
    fn schedule_wraps_past_midnight() {
        let night = IndoorLightTrace::new(3.0, 0.5, 20.0, 6.0).expect("valid");
        assert_eq!(night.at(Seconds::new(23.0 * 3600.0)), 3.0);
        assert_eq!(night.at(Seconds::new(2.0 * 3600.0)), 3.0);
        assert_eq!(night.at(Seconds::new(12.0 * 3600.0)), 0.5);
    }

    #[test]
    fn schedule_repeats_daily() {
        let t = IndoorLightTrace::office();
        let day0 = t.at(Seconds::new(10.0 * 3600.0));
        let day3 = t.at(Seconds::new((72.0 + 10.0) * 3600.0));
        assert_eq!(day0, day3);
    }

    #[test]
    fn bad_parameters_are_rejected() {
        assert!(IndoorLightTrace::new(-1.0, 0.0, 8.0, 20.0).is_err());
        assert!(IndoorLightTrace::new(5.0, 0.0, 25.0, 20.0).is_err());
        assert!(IndoorLightPanel::new(
            SquareMillimeters::new(0.0),
            0.05,
            IndoorLightTrace::office()
        )
        .is_err());
        assert!(IndoorLightPanel::new(
            SquareMillimeters::new(400.0),
            1.5,
            IndoorLightTrace::office()
        )
        .is_err());
    }

    #[test]
    fn json_round_trip() {
        let t = IndoorLightTrace::new(4.5, 0.25, 7.5, 19.0).expect("valid");
        let back = IndoorLightTrace::from_json(&t.to_json()).expect("parses");
        assert_eq!(t, back);
    }
}
