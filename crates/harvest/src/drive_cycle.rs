//! Synthetic speed profiles that excite the motion-driven harvesters.

use picocube_power::PowerError;
use picocube_units::json::{field, FromJson, Json, JsonError, ToJson};
use picocube_units::{MetersPerSecond, Seconds};

/// One linear-ramp segment of a drive cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrivePhase {
    /// Segment duration.
    pub duration: Seconds,
    /// Speed at the start of the segment.
    pub start_speed: MetersPerSecond,
    /// Speed at the end of the segment (linear interpolation between).
    pub end_speed: MetersPerSecond,
}

impl DrivePhase {
    /// A constant-speed segment.
    pub fn cruise(duration: Seconds, speed: MetersPerSecond) -> Self {
        Self {
            duration,
            start_speed: speed,
            end_speed: speed,
        }
    }

    /// A linear ramp between two speeds.
    pub fn ramp(duration: Seconds, from: MetersPerSecond, to: MetersPerSecond) -> Self {
        Self {
            duration,
            start_speed: from,
            end_speed: to,
        }
    }
}

/// A repeating, piecewise-linear speed profile.
///
/// # Examples
///
/// ```
/// use picocube_harvest::DriveCycle;
/// use picocube_units::Seconds;
///
/// let cycle = DriveCycle::urban();
/// let v = cycle.speed_at(Seconds::new(120.0));
/// assert!(v.kmh() >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DriveCycle {
    phases: Vec<DrivePhase>,
    period: Seconds,
}

impl DriveCycle {
    /// Builds a cycle from segments. The profile repeats with the summed
    /// period.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if `phases` is empty or any
    /// duration is non-positive.
    pub fn new(phases: Vec<DrivePhase>) -> Result<Self, PowerError> {
        if phases.is_empty() {
            return Err(PowerError::InvalidParameter {
                what: "drive cycle needs at least one phase",
            });
        }
        if !phases.iter().all(|p| p.duration.value() > 0.0) {
            return Err(PowerError::InvalidParameter {
                what: "phase durations must be positive",
            });
        }
        let period = Seconds::new(phases.iter().map(|p| p.duration.value()).sum());
        Ok(Self { phases, period })
    }

    /// Urban stop-and-go: accelerate to 50 km/h, cruise, brake, idle at a
    /// light; 2-minute period.
    pub fn urban() -> Self {
        let kmh = MetersPerSecond::from_kmh;
        Self::new(vec![
            DrivePhase::ramp(Seconds::new(10.0), kmh(0.0), kmh(50.0)),
            DrivePhase::cruise(Seconds::new(60.0), kmh(50.0)),
            DrivePhase::ramp(Seconds::new(8.0), kmh(50.0), kmh(0.0)),
            DrivePhase::cruise(Seconds::new(42.0), kmh(0.0)),
        ])
        .expect("valid preset parameters")
    }

    /// Highway: long 110 km/h cruise with a brief slowdown; 10-minute
    /// period.
    pub fn highway() -> Self {
        let kmh = MetersPerSecond::from_kmh;
        Self::new(vec![
            DrivePhase::cruise(Seconds::new(500.0), kmh(110.0)),
            DrivePhase::ramp(Seconds::new(20.0), kmh(110.0), kmh(80.0)),
            DrivePhase::cruise(Seconds::new(60.0), kmh(80.0)),
            DrivePhase::ramp(Seconds::new(20.0), kmh(80.0), kmh(110.0)),
        ])
        .expect("valid preset parameters")
    }

    /// The §6 retreat demo: a bicycle wheel spun to ~20 km/h, coasting
    /// down, with pauses.
    pub fn bicycle() -> Self {
        let kmh = MetersPerSecond::from_kmh;
        Self::new(vec![
            DrivePhase::ramp(Seconds::new(5.0), kmh(0.0), kmh(20.0)),
            DrivePhase::ramp(Seconds::new(40.0), kmh(20.0), kmh(5.0)),
            DrivePhase::ramp(Seconds::new(10.0), kmh(5.0), kmh(0.0)),
            DrivePhase::cruise(Seconds::new(15.0), kmh(0.0)),
        ])
        .expect("valid preset parameters")
    }

    /// Parked: permanently stationary (the harvester-outage worst case).
    pub fn parked() -> Self {
        Self::new(vec![DrivePhase::cruise(
            Seconds::HOUR,
            MetersPerSecond::ZERO,
        )])
        .expect("valid preset parameters")
    }

    /// The repeat period of the cycle.
    pub fn period(&self) -> Seconds {
        self.period
    }

    /// Speed at absolute time `t` (the cycle repeats).
    pub fn speed_at(&self, t: Seconds) -> MetersPerSecond {
        let mut remainder = t.value().rem_euclid(self.period.value());
        for phase in &self.phases {
            let d = phase.duration.value();
            if remainder < d {
                let frac = remainder / d;
                return phase.start_speed + (phase.end_speed - phase.start_speed) * frac;
            }
            remainder -= d;
        }
        // Floating-point edge: land on the period boundary.
        self.phases[0].start_speed
    }

    /// Time-averaged speed over one period.
    pub fn average_speed(&self) -> MetersPerSecond {
        let weighted: f64 = self
            .phases
            .iter()
            .map(|p| 0.5 * (p.start_speed + p.end_speed).value() * p.duration.value())
            .sum();
        MetersPerSecond::new(weighted / self.period.value())
    }

    /// Fraction of the period spent moving (above 0.5 m/s).
    pub fn duty_moving(&self) -> f64 {
        let n = 10_000;
        let moving = (0..n)
            .filter(|&i| {
                let t = Seconds::new(self.period.value() * i as f64 / n as f64);
                self.speed_at(t).value() > 0.5
            })
            .count();
        moving as f64 / n as f64
    }
}

impl ToJson for DrivePhase {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("duration".into(), self.duration.to_json()),
            ("start_speed".into(), self.start_speed.to_json()),
            ("end_speed".into(), self.end_speed.to_json()),
        ])
    }
}

impl FromJson for DrivePhase {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            duration: FromJson::from_json(field(value, "duration")?)?,
            start_speed: FromJson::from_json(field(value, "start_speed")?)?,
            end_speed: FromJson::from_json(field(value, "end_speed")?)?,
        })
    }
}

impl ToJson for DriveCycle {
    fn to_json(&self) -> Json {
        // Only the phases carry information; the period is derived.
        Json::Obj(vec![("phases".into(), self.phases.to_json())])
    }
}

impl FromJson for DriveCycle {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let phases: Vec<DrivePhase> = FromJson::from_json(field(value, "phases")?)?;
        let bad = |p: &DrivePhase| p.duration.value() <= 0.0 || p.duration.value().is_nan();
        if phases.is_empty() || phases.iter().any(bad) {
            return Err(JsonError::new("invalid drive cycle phases"));
        }
        Self::new(phases).map_err(|_| JsonError::new("invalid drive cycle phases"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn urban_cycle_period() {
        assert_eq!(DriveCycle::urban().period(), Seconds::new(120.0));
    }

    #[test]
    fn speed_interpolates_within_ramps() {
        let cycle = DriveCycle::urban();
        // Midway through the 10 s 0→50 km/h ramp.
        let v = cycle.speed_at(Seconds::new(5.0));
        assert!((v.kmh() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn profile_repeats() {
        let cycle = DriveCycle::urban();
        let a = cycle.speed_at(Seconds::new(30.0));
        let b = cycle.speed_at(Seconds::new(30.0 + 120.0 * 7.0));
        assert!((a.value() - b.value()).abs() < 1e-9);
    }

    #[test]
    fn average_speed_weighted_by_duration() {
        let cycle = DriveCycle::new(vec![
            DrivePhase::cruise(Seconds::new(10.0), MetersPerSecond::new(10.0)),
            DrivePhase::cruise(Seconds::new(30.0), MetersPerSecond::new(2.0)),
        ])
        .expect("valid cycle");
        assert!((cycle.average_speed().value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn urban_duty_includes_the_idle() {
        let duty = DriveCycle::urban().duty_moving();
        // ~65 % of the urban period is in motion.
        assert!(duty > 0.55 && duty < 0.75, "duty {duty:.2}");
    }

    #[test]
    fn parked_never_moves() {
        let cycle = DriveCycle::parked();
        assert_eq!(cycle.duty_moving(), 0.0);
        assert_eq!(cycle.average_speed(), MetersPerSecond::ZERO);
    }

    #[test]
    fn empty_cycle_rejected() {
        let err = DriveCycle::new(vec![]).unwrap_err();
        assert!(matches!(err, PowerError::InvalidParameter { what } if what.contains("phase")));
    }
}
