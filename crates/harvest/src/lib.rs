//! Energy-harvester models.
//!
//! The paper is deliberately source-agnostic — "the Cube requires an AC
//! source that meets specifications determined by the storage and management
//! blocks" (§4.4) — and defers harvester design to its references \[3–5\]
//! (Roundy, Wright, Rabaey). The node was demonstrated with an
//! electromagnetic shaker on a bicycle wheel (§6), tire-pressure monitoring
//! is the motivating application, and solar cladding is suggested for
//! well-lit deployments (§1).
//!
//! This crate provides those sources as [`Harvester`] implementations that
//! report available AC power over time, plus the drive-cycle generators
//! that excite the motion-driven ones:
//!
//! * [`ElectromagneticShaker`] — pulsed-EMF proof-mass generator.
//! * [`WheelHarvester`] — rim-mounted generator driven by a speed profile.
//! * [`VibrationBeam`] — resonant cantilever (Roundy model) for machine
//!   vibration.
//! * [`SolarCladding`] — photovoltaic skin on the cube faces.
//! * [`IndoorLightPanel`] — scheduled office-light PV (the Pible workload,
//!   see `PAPERS.md`).
//! * [`PiezoHarvester`] — piezo beam on a duty-cycled machine (the
//!   Kassan-style workload, see `PAPERS.md`).
//! * [`DriveCycle`] — synthetic vehicle/bicycle speed profiles.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod drive_cycle;
mod indoor;
mod piezo;
mod shaker;
mod solar;
mod vibration;
mod wheel;

pub use drive_cycle::{DriveCycle, DrivePhase};
pub use indoor::{IndoorLightPanel, IndoorLightTrace};
pub use piezo::{PiezoDrive, PiezoHarvester};
pub use shaker::ElectromagneticShaker;
pub use solar::{Irradiance, SolarCladding};
pub use vibration::VibrationBeam;
pub use wheel::WheelHarvester;

/// The workspace power-model error type. Harvester constructors return
/// `Result<Self, PowerError>` (rejecting unphysical parameters as
/// [`PowerError::InvalidParameter`]) so the harvest and power crates share
/// one error path; the named presets (`bench_450uw`, `five_faces`,
/// `automotive`, …) are infallible.
pub use picocube_power::PowerError;

use picocube_units::{Seconds, Watts};

/// NaN-rejecting "strictly positive" check for constructor validation:
/// unlike `x <= 0.0`, a NaN parameter fails this and is rejected.
pub(crate) fn positive(x: f64) -> bool {
    x > 0.0
}

/// NaN-rejecting "zero or positive" check for constructor validation.
pub(crate) fn non_negative(x: f64) -> bool {
    x >= 0.0
}

/// A source of harvested AC power.
///
/// Harvesters report the *electrical power available at their terminals*
/// as a function of time; rectification and storage losses are downstream
/// (the `picocube-power` crate). Implementations are deterministic given
/// their configuration and any RNG they were built with.
pub trait Harvester {
    /// Human-readable source name.
    fn name(&self) -> &'static str;

    /// Available AC power at simulated time `t` (measured from scenario
    /// start).
    fn power_at(&self, t: Seconds) -> Watts;

    /// Average power over `[t0, t1]`, by trapezoidal integration at `n`
    /// samples. Implementations with closed forms may override.
    ///
    /// # Panics
    ///
    /// Panics if `t1 < t0` or `n < 2`.
    fn average_power(&self, t0: Seconds, t1: Seconds, n: usize) -> Watts {
        assert!(t1 >= t0, "reversed interval");
        assert!(n >= 2, "need at least two samples");
        let span = (t1 - t0).value();
        if span == 0.0 {
            return self.power_at(t0);
        }
        let mut acc = 0.0;
        for i in 0..n {
            let frac = i as f64 / (n - 1) as f64;
            let w = if i == 0 || i == n - 1 { 0.5 } else { 1.0 };
            acc += w * self
                .power_at(Seconds::new(t0.value() + frac * span))
                .value();
        }
        Watts::new(acc / (n - 1) as f64)
    }
}
