//! Rim-mounted rotational harvester for the tire-pressure application.
//!
//! §1 notes that TPMS is exactly the case where "a substantial amount of
//! 'mechanical mass' is required to provide the necessary energy" — the
//! harvester lives on the rim, outside the 1 cm³ node. The generator is an
//! eccentric proof mass / coil arrangement whose electrical output grows
//! with the square of wheel speed until magnetic saturation.

use crate::{DriveCycle, Harvester};
use picocube_power::PowerError;
use picocube_units::{Meters, Rpm, Seconds, Watts};

/// A wheel-speed-driven electromagnetic generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WheelHarvester {
    cycle: DriveCycle,
    wheel_radius: Meters,
    /// Output power per (rad/s)² below saturation.
    k_w_per_rad2: f64,
    /// Saturation ceiling of the magnetics.
    p_max: Watts,
    /// Minimum rotation rate before the generator overcomes cogging.
    cut_in: Rpm,
}

impl WheelHarvester {
    /// Creates a wheel harvester.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if the radius or power
    /// coefficient is not strictly positive.
    pub fn new(
        cycle: DriveCycle,
        wheel_radius: Meters,
        k_w_per_rad2: f64,
        p_max: Watts,
        cut_in: Rpm,
    ) -> Result<Self, PowerError> {
        if !crate::positive(wheel_radius.value()) {
            return Err(PowerError::InvalidParameter {
                what: "wheel radius must be positive",
            });
        }
        if !crate::positive(k_w_per_rad2) {
            return Err(PowerError::InvalidParameter {
                what: "power coefficient must be positive",
            });
        }
        Ok(Self {
            cycle,
            wheel_radius,
            k_w_per_rad2,
            p_max,
            cut_in,
        })
    }

    /// The automotive TPMS harvester: 0.3 m wheel, calibrated to produce
    /// ≈ 450 µW at 90 km/h (the synchronous rectifier's characterization
    /// point) and saturating at 2 mW.
    pub fn automotive(cycle: DriveCycle) -> Self {
        // 90 km/h on a 0.3 m wheel is ω = 83.3 rad/s; 450 µW / ω² ≈ 6.5e-8.
        Self::new(
            cycle,
            Meters::new(0.3),
            6.48e-8,
            Watts::from_milli(2.0),
            Rpm::new(30.0),
        )
        .expect("valid preset parameters")
    }

    /// The §6 demo harvester on a bicycle wheel (0.34 m radius), smaller
    /// magnetics.
    pub fn bicycle(cycle: DriveCycle) -> Self {
        Self::new(
            cycle,
            Meters::new(0.34),
            2.0e-7,
            Watts::from_milli(1.0),
            Rpm::new(15.0),
        )
        .expect("valid preset parameters")
    }

    /// Wheel rotation rate at time `t`.
    pub fn rpm_at(&self, t: Seconds) -> Rpm {
        self.cycle.speed_at(t).wheel_rpm(self.wheel_radius)
    }

    /// The drive cycle powering this harvester.
    pub fn cycle(&self) -> &DriveCycle {
        &self.cycle
    }

    /// Output power at a given rotation rate.
    pub fn power_at_rpm(&self, rpm: Rpm) -> Watts {
        if rpm < self.cut_in {
            return Watts::ZERO;
        }
        let omega = rpm.value() * 2.0 * core::f64::consts::PI / 60.0;
        Watts::new(self.k_w_per_rad2 * omega * omega).min(self.p_max)
    }
}

impl Harvester for WheelHarvester {
    fn name(&self) -> &'static str {
        "wheel generator"
    }

    fn power_at(&self, t: Seconds) -> Watts {
        self.power_at_rpm(self.rpm_at(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picocube_units::MetersPerSecond;

    fn cruise(kmh: f64) -> DriveCycle {
        DriveCycle::new(vec![crate::DrivePhase::cruise(
            Seconds::HOUR,
            MetersPerSecond::from_kmh(kmh),
        )])
        .expect("valid cycle")
    }

    #[test]
    fn calibration_point_450_uw_at_90_kmh() {
        let h = WheelHarvester::automotive(cruise(90.0));
        let p = h.power_at(Seconds::new(10.0));
        assert!((p.micro() - 450.0).abs() < 5.0, "p = {:.1} µW", p.micro());
    }

    #[test]
    fn power_quadratic_in_speed_below_saturation() {
        let p30 = WheelHarvester::automotive(cruise(30.0)).power_at(Seconds::ZERO);
        let p60 = WheelHarvester::automotive(cruise(60.0)).power_at(Seconds::ZERO);
        assert!((p60.value() / p30.value() - 4.0).abs() < 0.01);
    }

    #[test]
    fn saturates_at_p_max() {
        let h = WheelHarvester::automotive(cruise(300.0));
        assert_eq!(h.power_at(Seconds::ZERO), Watts::from_milli(2.0));
    }

    #[test]
    fn parked_produces_nothing() {
        let h = WheelHarvester::automotive(DriveCycle::parked());
        assert_eq!(
            h.average_power(Seconds::ZERO, Seconds::HOUR, 100),
            Watts::ZERO
        );
    }

    #[test]
    fn cut_in_suppresses_creep() {
        let h = WheelHarvester::automotive(cruise(1.0));
        assert_eq!(h.power_at(Seconds::ZERO), Watts::ZERO);
    }

    #[test]
    fn urban_average_exceeds_node_budget() {
        // Even stop-and-go traffic must out-run the 6 µW node: the paper's
        // energy-neutrality premise.
        let h = WheelHarvester::automotive(DriveCycle::urban());
        let avg = h.average_power(Seconds::ZERO, Seconds::new(240.0), 2000);
        assert!(
            avg > Watts::from_micro(60.0),
            "urban avg {:.1} µW",
            avg.micro()
        );
    }

    #[test]
    fn flat_wheel_rejected() {
        let err = WheelHarvester::new(
            DriveCycle::urban(),
            Meters::ZERO,
            6.48e-8,
            Watts::from_milli(2.0),
            Rpm::new(30.0),
        )
        .unwrap_err();
        assert!(matches!(err, PowerError::InvalidParameter { what } if what.contains("radius")));
    }

    #[test]
    fn bicycle_demo_produces_power_while_spinning() {
        let h = WheelHarvester::bicycle(DriveCycle::bicycle());
        let spinning = h.power_at(Seconds::new(6.0));
        assert!(spinning > Watts::from_micro(50.0));
        let stopped = h.power_at(Seconds::new(60.0));
        assert_eq!(stopped, Watts::ZERO);
    }
}
