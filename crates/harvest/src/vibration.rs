//! Resonant vibration harvesting (the Roundy/Wright/Rabaey model of the
//! paper's references \[3–5\]).
//!
//! A spring-mass-damper with proof mass `m`, natural frequency `f_n` and
//! quality factor `Q`, driven by ambient acceleration of amplitude `A` at
//! frequency `f`, delivers at most `P = m·Q·A² / (4·ω_n)` at resonance,
//! rolling off with the resonator's Lorentzian response off-resonance —
//! which is why reference \[5\] is titled "improving power output": ambient
//! spectra rarely sit exactly on `f_n`.

use crate::Harvester;
use picocube_power::PowerError;
use picocube_units::{Grams, Hertz, MetersPerSecond2, Seconds, Watts};

/// A resonant cantilever vibration harvester.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VibrationBeam {
    proof_mass: Grams,
    natural: Hertz,
    q_factor: f64,
    /// Ambient excitation.
    drive_accel: MetersPerSecond2,
    drive_freq: Hertz,
}

impl VibrationBeam {
    /// Creates a beam harvester under a given ambient excitation.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if mass, frequencies or Q
    /// are not strictly positive, or the drive acceleration is negative.
    pub fn new(
        proof_mass: Grams,
        natural: Hertz,
        q_factor: f64,
        drive_accel: MetersPerSecond2,
        drive_freq: Hertz,
    ) -> Result<Self, PowerError> {
        if !crate::positive(proof_mass.value()) {
            return Err(PowerError::InvalidParameter {
                what: "proof mass must be positive",
            });
        }
        if !(crate::positive(natural.value()) && crate::positive(drive_freq.value())) {
            return Err(PowerError::InvalidParameter {
                what: "frequencies must be positive",
            });
        }
        if !crate::positive(q_factor) {
            return Err(PowerError::InvalidParameter {
                what: "Q must be positive",
            });
        }
        if !crate::non_negative(drive_accel.value()) {
            return Err(PowerError::InvalidParameter {
                what: "drive acceleration must be non-negative",
            });
        }
        Ok(Self {
            proof_mass,
            natural,
            q_factor,
            drive_accel,
            drive_freq,
        })
    }

    /// The Roundy benchmark: 1 g proof mass tuned to the 120 Hz line of
    /// machinery vibration at 2.5 m/s², Q = 30 — the ≈ 200 µW/cm³ class of
    /// reference \[4\].
    pub fn roundy_120hz() -> Self {
        Self::new(
            Grams::new(1.0),
            Hertz::new(120.0),
            30.0,
            MetersPerSecond2::new(2.5),
            Hertz::new(120.0),
        )
        .expect("valid preset parameters")
    }

    /// Natural (resonant) frequency.
    pub fn natural_frequency(&self) -> Hertz {
        self.natural
    }

    /// Peak output power at resonance: `m·Q·A² / (4·ω_n)`.
    pub fn resonant_power(&self) -> Watts {
        let m_kg = self.proof_mass.value() * 1e-3;
        let a = self.drive_accel.value();
        let omega_n = 2.0 * core::f64::consts::PI * self.natural.value();
        Watts::new(m_kg * self.q_factor * a * a / (4.0 * omega_n))
    }

    /// Output at the configured drive frequency: Lorentzian rolloff around
    /// resonance, `P_res / (1 + Q²·(f/f_n − f_n/f)²)`.
    pub fn output_power(&self) -> Watts {
        let r = self.drive_freq.value() / self.natural.value();
        let detune = r - 1.0 / r;
        let denom = 1.0 + self.q_factor * self.q_factor * detune * detune;
        self.resonant_power() / denom
    }

    /// Re-tunes the ambient excitation (amplitude and frequency).
    pub fn set_drive(&mut self, accel: MetersPerSecond2, freq: Hertz) {
        assert!(accel.value() >= 0.0 && freq.value() > 0.0, "invalid drive");
        self.drive_accel = accel;
        self.drive_freq = freq;
    }
}

impl Harvester for VibrationBeam {
    fn name(&self) -> &'static str {
        "vibration beam"
    }

    fn power_at(&self, _t: Seconds) -> Watts {
        // Stationary ambient spectrum: constant envelope power.
        self.output_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundy_benchmark_is_hundreds_of_microwatts() {
        let beam = VibrationBeam::roundy_120hz();
        let p = beam.resonant_power();
        // m·Q·A²/(4ω) = 1e-3 · 30 · 6.25 / (4·754) ≈ 62 µW — the right
        // order for a 1 cm³-class scavenger (ref [4] reports up to ~200
        // µW/cm³ with optimized transduction).
        assert!(
            p > Watts::from_micro(30.0) && p < Watts::from_micro(120.0),
            "p {p:?}"
        );
    }

    #[test]
    fn on_resonance_output_equals_peak() {
        let beam = VibrationBeam::roundy_120hz();
        assert!((beam.output_power().value() / beam.resonant_power().value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detuning_collapses_output() {
        let mut beam = VibrationBeam::roundy_120hz();
        beam.set_drive(MetersPerSecond2::new(2.5), Hertz::new(100.0));
        // 17 % detune at Q = 30 loses over 90 % of the power — the
        // reference [5] motivation.
        assert!(beam.output_power().value() < 0.1 * beam.resonant_power().value());
    }

    #[test]
    fn power_quadratic_in_drive_amplitude() {
        let mut beam = VibrationBeam::roundy_120hz();
        let p1 = beam.output_power();
        beam.set_drive(MetersPerSecond2::new(5.0), Hertz::new(120.0));
        let p2 = beam.output_power();
        assert!((p2.value() / p1.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rolloff_is_symmetric_in_log_frequency() {
        let mut lo = VibrationBeam::roundy_120hz();
        lo.set_drive(MetersPerSecond2::new(2.5), Hertz::new(60.0));
        let mut hi = VibrationBeam::roundy_120hz();
        hi.set_drive(MetersPerSecond2::new(2.5), Hertz::new(240.0));
        assert!((lo.output_power().value() - hi.output_power().value()).abs() < 1e-12);
    }

    #[test]
    fn unphysical_beam_rejected() {
        let err = VibrationBeam::new(
            Grams::new(0.0),
            Hertz::new(120.0),
            30.0,
            MetersPerSecond2::new(2.5),
            Hertz::new(120.0),
        )
        .unwrap_err();
        assert!(
            matches!(err, PowerError::InvalidParameter { what } if what.contains("proof mass"))
        );
    }

    #[test]
    fn still_machine_produces_nothing() {
        let mut beam = VibrationBeam::roundy_120hz();
        beam.set_drive(MetersPerSecond2::ZERO, Hertz::new(120.0));
        assert_eq!(beam.output_power(), Watts::ZERO);
    }
}
