//! Photovoltaic cladding: §1's alternative for well-lit deployments —
//! "under well-lit conditions cladding the outside of the node with solar
//! cells would provide sufficient energy."

use crate::Harvester;
use picocube_power::PowerError;
use picocube_units::json::{field, FromJson, Json, JsonError, ToJson};
use picocube_units::{Seconds, SquareMillimeters, Watts};

/// The lighting environment driving a [`SolarCladding`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Irradiance {
    /// Constant irradiance in W/m² (indoor office ≈ 5–10, overcast window
    /// ≈ 100, full sun ≈ 1000).
    Constant(f64),
    /// A diurnal cycle: half-sine daylight of the given peak W/m² over
    /// `daylight_hours`, dark otherwise, repeating every 24 h.
    Diurnal {
        /// Peak irradiance at solar noon, W/m².
        peak: f64,
        /// Hours of daylight per day.
        daylight_hours: f64,
    },
}

impl Irradiance {
    /// Office lighting: 8 W/m² around the clock.
    pub fn office() -> Self {
        Self::Constant(8.0)
    }

    /// Outdoor temperate-latitude cycle: 800 W/m² peak, 12 h of daylight.
    pub fn outdoor() -> Self {
        Self::Diurnal {
            peak: 800.0,
            daylight_hours: 12.0,
        }
    }

    /// Irradiance at time `t` from scenario start (taken as midnight for
    /// diurnal cycles).
    pub fn at(&self, t: Seconds) -> f64 {
        match *self {
            Self::Constant(w) => w.max(0.0),
            Self::Diurnal {
                peak,
                daylight_hours,
            } => {
                let hour = (t.value() / 3600.0).rem_euclid(24.0);
                let dawn = 12.0 - daylight_hours / 2.0;
                let dusk = 12.0 + daylight_hours / 2.0;
                if hour < dawn || hour > dusk {
                    0.0
                } else {
                    let frac = (hour - dawn) / daylight_hours;
                    peak * (core::f64::consts::PI * frac).sin()
                }
            }
        }
    }
}

impl ToJson for Irradiance {
    fn to_json(&self) -> Json {
        // Externally tagged, mirroring the variant names.
        match *self {
            Self::Constant(w) => Json::Obj(vec![("Constant".into(), w.to_json())]),
            Self::Diurnal {
                peak,
                daylight_hours,
            } => Json::Obj(vec![(
                "Diurnal".into(),
                Json::Obj(vec![
                    ("peak".into(), peak.to_json()),
                    ("daylight_hours".into(), daylight_hours.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for Irradiance {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        if let Some(w) = value.get("Constant") {
            return Ok(Self::Constant(FromJson::from_json(w)?));
        }
        if let Some(d) = value.get("Diurnal") {
            return Ok(Self::Diurnal {
                peak: FromJson::from_json(field(d, "peak")?)?,
                daylight_hours: FromJson::from_json(field(d, "daylight_hours")?)?,
            });
        }
        Err(JsonError::new("unknown Irradiance variant"))
    }
}

/// Solar cells on the exposed faces of the cube.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolarCladding {
    active_area: SquareMillimeters,
    /// Cell conversion efficiency.
    efficiency: f64,
    /// Average cosine/shadowing factor across the cladded faces.
    orientation_factor: f64,
    light: Irradiance,
}

impl SolarCladding {
    /// Creates a cladding model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if the area is non-positive
    /// or either factor is outside `(0, 1]`.
    pub fn new(
        active_area: SquareMillimeters,
        efficiency: f64,
        orientation_factor: f64,
        light: Irradiance,
    ) -> Result<Self, PowerError> {
        if !crate::positive(active_area.value()) {
            return Err(PowerError::InvalidParameter {
                what: "area must be positive",
            });
        }
        if !(crate::positive(efficiency) && efficiency <= 1.0) {
            return Err(PowerError::InvalidParameter {
                what: "bad efficiency: must be in (0, 1]",
            });
        }
        if !(crate::positive(orientation_factor) && orientation_factor <= 1.0) {
            return Err(PowerError::InvalidParameter {
                what: "bad orientation factor: must be in (0, 1]",
            });
        }
        Ok(Self {
            active_area,
            efficiency,
            orientation_factor,
            light,
        })
    }

    /// Cladding of five faces of the 1 cm cube (the sixth mounts), 15 %
    /// cells, 0.4 average orientation factor.
    pub fn five_faces(light: Irradiance) -> Self {
        Self::new(SquareMillimeters::new(5.0 * 100.0), 0.15, 0.4, light)
            .expect("valid preset parameters")
    }

    /// Total active cell area.
    pub fn active_area(&self) -> SquareMillimeters {
        self.active_area
    }
}

impl Harvester for SolarCladding {
    fn name(&self) -> &'static str {
        "solar cladding"
    }

    fn power_at(&self, t: Seconds) -> Watts {
        let area_m2 = self.active_area.value() * 1e-6;
        Watts::new(self.light.at(t) * area_m2 * self.efficiency * self.orientation_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn office_light_covers_the_node_budget() {
        // 8 W/m² × 5 cm² × 15 % × 0.4 = 240 µW — forty times the 6 µW
        // node: the paper's "well-lit conditions would provide sufficient
        // energy".
        let s = SolarCladding::five_faces(Irradiance::office());
        let p = s.power_at(Seconds::ZERO);
        assert!((p.micro() - 240.0).abs() < 0.5, "p = {:.1} µW", p.micro());
        assert!(p > Watts::from_micro(6.0));
    }

    #[test]
    fn diurnal_cycle_dark_at_midnight_peak_at_noon() {
        let light = Irradiance::outdoor();
        assert_eq!(light.at(Seconds::ZERO), 0.0);
        assert!((light.at(Seconds::from_hours(12.0)) - 800.0).abs() < 1e-9);
        assert_eq!(light.at(Seconds::from_hours(23.0)), 0.0);
    }

    #[test]
    fn diurnal_repeats_daily() {
        let light = Irradiance::outdoor();
        let a = light.at(Seconds::from_hours(10.0));
        let b = light.at(Seconds::from_hours(10.0 + 24.0 * 3.0));
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn outdoor_daily_average_is_generous() {
        let s = SolarCladding::five_faces(Irradiance::outdoor());
        let avg = s.average_power(Seconds::ZERO, Seconds::DAY, 2_000);
        // Half-sine over 12 of 24 h: mean = peak·(2/π)·0.5 ≈ 255 W/m²
        // → ≈ 7.6 mW across the cladding.
        assert!(
            avg > Watts::from_milli(5.0) && avg < Watts::from_milli(10.0),
            "avg {avg:?}"
        );
    }

    #[test]
    fn negative_constant_clamps_to_zero() {
        assert_eq!(Irradiance::Constant(-5.0).at(Seconds::ZERO), 0.0);
    }

    #[test]
    fn zero_efficiency_rejected() {
        let err = SolarCladding::new(
            SquareMillimeters::new(100.0),
            0.0,
            0.5,
            Irradiance::office(),
        )
        .unwrap_err();
        assert!(
            matches!(err, PowerError::InvalidParameter { what } if what.contains("efficiency"))
        );
    }
}
