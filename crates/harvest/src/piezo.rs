//! Piezoelectric harvesting from duty-cycled machinery — the Kassan-style
//! workload (see `PAPERS.md`): a resonant piezo beam bolted to a machine
//! that runs in shifts, so harvest arrives in on/off bursts and the node's
//! energy management has to bridge the idle spans.

use crate::vibration::VibrationBeam;
use crate::Harvester;
use picocube_power::PowerError;
use picocube_units::json::{field, FromJson, Json, JsonError, ToJson};
use picocube_units::{Grams, Hertz, MetersPerSecond2, Seconds, Watts};

/// The machine-side drive spec for a [`PiezoHarvester`]: how hard and at
/// what line frequency the host machine shakes, and its on/off shift
/// pattern. Plain data, so scenario specs can carry it as JSON.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiezoDrive {
    /// Drive acceleration amplitude while the machine runs, m/s².
    pub accel_ms2: f64,
    /// Vibration line frequency, Hz.
    pub freq_hz: f64,
    /// Seconds per cycle with the machine running.
    pub on_s: f64,
    /// Seconds per cycle with the machine idle (no excitation).
    pub off_s: f64,
}

impl PiezoDrive {
    /// A machine-room shift: the 120 Hz line at 2.5 m/s², 40 minutes on,
    /// 20 minutes off.
    pub fn machine_room() -> Self {
        Self {
            accel_ms2: 2.5,
            freq_hz: 120.0,
            on_s: 2400.0,
            off_s: 1200.0,
        }
    }

    fn validate(&self) -> Result<(), PowerError> {
        if !crate::non_negative(self.accel_ms2) {
            return Err(PowerError::InvalidParameter {
                what: "drive acceleration must be non-negative",
            });
        }
        if !crate::positive(self.freq_hz) {
            return Err(PowerError::InvalidParameter {
                what: "drive frequency must be positive",
            });
        }
        if !crate::positive(self.on_s) {
            return Err(PowerError::InvalidParameter {
                what: "machine on-span must be positive",
            });
        }
        if !crate::non_negative(self.off_s) {
            return Err(PowerError::InvalidParameter {
                what: "machine off-span must be non-negative",
            });
        }
        Ok(())
    }
}

impl ToJson for PiezoDrive {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("accel_ms2".into(), self.accel_ms2.to_json()),
            ("freq_hz".into(), self.freq_hz.to_json()),
            ("on_s".into(), self.on_s.to_json()),
            ("off_s".into(), self.off_s.to_json()),
        ])
    }
}

impl FromJson for PiezoDrive {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            accel_ms2: FromJson::from_json(field(value, "accel_ms2")?)?,
            freq_hz: FromJson::from_json(field(value, "freq_hz")?)?,
            on_s: FromJson::from_json(field(value, "on_s")?)?,
            off_s: FromJson::from_json(field(value, "off_s")?)?,
        })
    }
}

/// A resonant piezoelectric beam on a duty-cycled machine: the
/// Roundy-geometry [`VibrationBeam`] (1 g proof mass, 120 Hz natural,
/// Q = 30) excited per a [`PiezoDrive`], with the output gated by the
/// machine's shift pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PiezoHarvester {
    beam: VibrationBeam,
    on_s: f64,
    off_s: f64,
}

impl PiezoHarvester {
    /// Builds the harvester for the given machine drive.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a negative
    /// acceleration, non-positive frequency or on-span, or a negative
    /// off-span.
    pub fn machine(drive: PiezoDrive) -> Result<Self, PowerError> {
        drive.validate()?;
        let beam = VibrationBeam::new(
            Grams::new(1.0),
            Hertz::new(120.0),
            30.0,
            MetersPerSecond2::new(drive.accel_ms2),
            Hertz::new(drive.freq_hz),
        )?;
        Ok(Self {
            beam,
            on_s: drive.on_s,
            off_s: drive.off_s,
        })
    }

    /// The machine-room preset: [`PiezoDrive::machine_room`] on the
    /// Roundy beam (≈ 62 µW while the machine runs).
    pub fn machine_room() -> Self {
        // picocube-lint: allow(L2) infallible preset parameters
        Self::machine(PiezoDrive::machine_room()).expect("valid preset parameters")
    }

    /// Output while the machine runs (the beam's Lorentzian response at
    /// the drive frequency).
    pub fn running_power(&self) -> Watts {
        self.beam.output_power()
    }
}

impl Harvester for PiezoHarvester {
    fn name(&self) -> &'static str {
        "piezo beam"
    }

    fn power_at(&self, t: Seconds) -> Watts {
        let period = self.on_s + self.off_s;
        let cycle = t.value().rem_euclid(period);
        if cycle < self.on_s {
            self.beam.output_power()
        } else {
            Watts::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_room_runs_at_tens_of_microwatts() {
        let h = PiezoHarvester::machine_room();
        let p = h.running_power().micro();
        assert!((50.0..80.0).contains(&p), "{p} µW");
    }

    #[test]
    fn output_gates_with_the_shift_pattern() {
        let h = PiezoHarvester::machine_room();
        assert!(h.power_at(Seconds::new(60.0)) > Watts::ZERO);
        assert_eq!(h.power_at(Seconds::new(2500.0)), Watts::ZERO);
        // Next cycle: running again.
        assert!(h.power_at(Seconds::new(3660.0)) > Watts::ZERO);
    }

    #[test]
    fn off_resonance_drive_rolls_off() {
        let detuned = PiezoHarvester::machine(PiezoDrive {
            freq_hz: 60.0,
            ..PiezoDrive::machine_room()
        })
        .expect("valid");
        assert!(
            detuned.running_power().value()
                < 0.1 * PiezoHarvester::machine_room().running_power().value()
        );
    }

    #[test]
    fn bad_drives_are_rejected() {
        assert!(PiezoHarvester::machine(PiezoDrive {
            accel_ms2: -1.0,
            ..PiezoDrive::machine_room()
        })
        .is_err());
        assert!(PiezoHarvester::machine(PiezoDrive {
            on_s: 0.0,
            ..PiezoDrive::machine_room()
        })
        .is_err());
        assert!(PiezoHarvester::machine(PiezoDrive {
            freq_hz: 0.0,
            ..PiezoDrive::machine_room()
        })
        .is_err());
    }

    #[test]
    fn json_round_trip() {
        let d = PiezoDrive::machine_room();
        let back = PiezoDrive::from_json(&d.to_json()).expect("parses");
        assert_eq!(d, back);
    }
}
