//! The §6 retreat demo (Figs 7–8): the cube sits on a table; when picked
//! up it streams X/Y/Z samples to the receiver station, which "plots" them
//! (here: prints a terminal strip chart); put it down and the plot stops.
//!
//! ```text
//! cargo run --example motion_demo
//! ```

use picocube::node::DemoStation;
use picocube::prelude::*;
use picocube::sensors::MotionScenario;

fn bar(g: f64) -> String {
    // Map ±3 g onto a 21-character strip.
    let pos = ((g + 3.0) / 6.0 * 20.0).round().clamp(0.0, 20.0) as usize;
    let mut s: Vec<char> = "          |          ".chars().collect();
    s[pos.min(20)] = '●';
    s.into_iter().collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The demo node runs from its battery (the bicycle-wheel scavenger
    // recharges it between sessions).
    let config = NodeConfig {
        harvester: HarvesterKind::None,
        ..NodeConfig::default()
    };
    let scenario = MotionScenario::retreat_table(2007);
    let mut node = PicoCube::motion(config, scenario)?;
    let mut station = DemoStation::demo_table(2007);

    println!("BWRC retreat demo: cube on the table, receiver 1 m away.");
    println!("(20 s at rest, 8 s of handling, repeating)\n");
    node.run_for(SimDuration::from_secs(90));

    let packets = node.packets();
    let decoded = station.offer_all(&packets);

    println!("{:>8}  {:^21} {:^21} {:^21}", "t [s]", "X", "Y", "Z");
    for s in station.samples() {
        println!(
            "{:>8.2}  {} {} {}",
            s.time.as_seconds().value(),
            bar(s.x.value()),
            bar(s.y.value()),
            bar(s.z.value()),
        );
    }

    let report = node.report();
    println!(
        "\n{} packets transmitted, {} decoded at 1 m, {} lost to the channel",
        packets.len(),
        decoded,
        station.lost()
    );
    println!(
        "average node power over the session: {:.2} µW (deep sleep between handls)",
        report.average_power.micro()
    );
    println!(
        "battery: {:.2} % consumed in 90 s of demo",
        (0.8 - report.final_soc) * 100.0
    );
    Ok(())
}
