//! Quickstart: build a PicoCube, drive it for a minute, print the report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use picocube::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The default configuration is the paper's TPMS deployment: SP12
    // sensor board, COTS power chain, rim-mounted harvester, highway
    // driving.
    let mut node = PicoCube::tpms(NodeConfig::default())?;

    println!("running the PicoCube for 60 simulated seconds...\n");
    node.run_for(SimDuration::from_secs(60));

    let report = node.report();
    println!("elapsed          : {:.1} s", report.elapsed.value());
    println!(
        "average power    : {:.2} µW   (paper: ~6 µW)",
        report.average_power.micro()
    );
    println!("peak burst power : {:.2} mW", report.peak_power.milli());
    println!("energy consumed  : {:.1} µJ", report.consumed.micro());
    println!("energy harvested : {:.1} µJ", report.harvested.micro());
    println!("sample cycles    : {}", report.wakes);
    println!("packets on air   : {}", report.packets.len());
    println!("battery SoC      : {:.1} %", report.final_soc * 100.0);

    println!("\nper-load energy breakdown:");
    for (name, energy) in &report.power.rails[0].loads {
        println!("  {:<28} {:>10.2} µJ", name, energy.micro());
    }

    if let Some(packet) = report.packets.first() {
        println!("\nfirst packet ({} bytes):", packet.bytes.len());
        print!("  ");
        for b in &packet.bytes {
            print!("{b:02X} ");
        }
        println!();
        println!(
            "  {} bits in {:.2} ms, {:.2} µJ of RF energy",
            packet.transmission.bits,
            packet.transmission.duration.value() * 1e3,
            packet.transmission.energy.micro()
        );
    }
    Ok(())
}
