//! The §1 vision: "sensing systems will become ubiquitous, and will be
//! embedded in everyday materials and surfaces often in very dense
//! collaborative networks. The sensors must live at least as long as the
//! application is in service, which can be decades (for example, in a
//! building)."
//!
//! A floor of solar-clad PicoCubes sharing one channel: does the fleet
//! deliver its data, and does every node stay energy-neutral on office
//! light alone?
//!
//! ```text
//! cargo run --release --example building_monitor
//! ```

use picocube::harvest::{DriveCycle, Irradiance};
use picocube::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One representative node first: energy neutrality under office light.
    let office_node = NodeConfig {
        harvester: HarvesterKind::Solar(Irradiance::office()),
        drive_cycle: DriveCycle::parked(), // wall-mounted: no motion
        ..NodeConfig::default()
    };
    let mut node = PicoCube::tpms(office_node.clone())?;
    node.run_for(SimDuration::from_secs(600));
    let report = node.report();
    println!("single wall node, 10 minutes under office lighting:");
    println!("  average power : {:.2} µW", report.average_power.micro());
    println!("  harvested     : {:.1} µJ", report.harvested.micro());
    println!("  consumed      : {:.1} µJ", report.consumed.micro());
    let neutral = report.harvested > report.consumed;
    println!(
        "  energy-neutral: {}",
        if neutral {
            "yes — the node outlives the building"
        } else {
            "NO"
        }
    );
    assert!(neutral, "office light must cover the node");

    // The decades arithmetic.
    let margin = report.harvested.value() / report.consumed.value();
    println!(
        "  margin        : {margin:.0}× — lights-off ride-through comes from the\n\
         \t\t  15 mAh cell (~{:.0} days at the {:.1} µW average)\n",
        64.8 / report.average_power.value() / 86_400.0,
        report.average_power.micro()
    );

    // Now the dense floor: 120 nodes, one collector.
    println!("floor deployment: 120 nodes, one collector, 5 simulated minutes");
    let out = run_fleet(&FleetConfig {
        nodes: 120,
        base: office_node,
        duration: SimDuration::from_secs(300),
        distance_range: (1.0, 12.0),
        seed: 9,
        // The starvation report below needs the per-node curve, which is
        // opt-in on the streaming engine.
        per_node_stats: true,
        ..FleetConfig::default()
    });
    println!("  packets offered  : {}", out.offered);
    println!("  collisions       : {}", out.collided);
    println!("  channel losses   : {}", out.channel_losses);
    println!(
        "  delivered        : {} ({:.1} %)",
        out.delivered,
        out.delivery_ratio() * 100.0
    );
    println!("  offered load G   : {:.4}", out.offered_load);

    let starved: Vec<usize> = out
        .per_node_delivery
        .iter()
        .enumerate()
        .filter(|(_, &d)| d < 0.5)
        .map(|(i, _)| i)
        .collect();
    if starved.is_empty() {
        println!("  every node reaches the collector with ≥ 50 % delivery");
    } else {
        println!("  nodes needing attention (far corners / deep fades): {starved:?}");
    }

    println!(
        "\nconclusion: at a 6 s reporting period the blind-ALOHA fleet runs at\n\
         G ≈ {:.2} %, far below the congestion knee; the maintenance-free\n\
         building deployment the paper opens with is feasible with nothing\n\
         but ceiling light and a collector per floor.",
        out.offered_load * 100.0
    );
    let _ = Watts::ZERO;
    Ok(())
}
