//! The tire-pressure deployment the paper motivates: a node on a wheel rim
//! through commute / highway / parked phases, checking energy-neutral
//! operation and the low-pressure alarm.
//!
//! ```text
//! cargo run --release --example tpms_lifetime
//! ```

use picocube::harvest::DriveCycle;
use picocube::prelude::*;
use picocube::radio::packet::{decode, Checksum};
use picocube::sensors::{Sp12, Sp12Channel};

fn run_phase(name: &str, cycle: DriveCycle, leak: f64, minutes: u64) {
    let config = NodeConfig {
        drive_cycle: cycle,
        harvester: HarvesterKind::Automotive,
        leak_kpa_per_hour: leak,
        ..NodeConfig::default()
    };
    let mut node = PicoCube::tpms(config).expect("node builds");
    node.run_for(SimDuration::from_secs(minutes * 60));
    let report = node.report();

    // Decode the last packet the way the vehicle-side receiver would.
    let decoder = Sp12::new();
    let last = report.packets.last().expect("at least one packet");
    let frame = decode(&last.bytes, Checksum::Xor).expect("well-formed packet");
    let code =
        |i: usize| u16::from(frame.payload[2 * i]) << 8 | u16::from(frame.payload[2 * i + 1]);
    let kpa = decoder.decode(Sp12Channel::Pressure, code(0));
    let temp = decoder.decode(Sp12Channel::Temperature, code(1));
    let accel = decoder.decode(Sp12Channel::Acceleration, code(2));

    let neutral = report.harvested >= report.consumed;
    println!(
        "{name:<22} avg {:>6.2} µW | harvest {:>9.1} µJ | consumed {:>8.1} µJ | {} | last: {:.0} kPa, {:.1} °C, {:.0} g {}",
        report.average_power.micro(),
        report.harvested.micro(),
        report.consumed.micro(),
        if neutral { "energy-neutral ✓" } else { "draining      ✗" },
        kpa,
        temp,
        accel,
        if kpa < 180.0 { " ⚠ LOW PRESSURE" } else { "" },
    );
}

fn main() {
    println!("PicoCube TPMS deployment — 20 simulated minutes per phase\n");
    run_phase("urban commute", DriveCycle::urban(), 0.0, 20);
    run_phase("highway cruise", DriveCycle::highway(), 0.0, 20);
    run_phase("parked overnight", DriveCycle::parked(), 0.0, 20);
    run_phase("slow leak (highway)", DriveCycle::highway(), 150.0, 20);

    println!(
        "\nThe parked node drains its 15 mAh reserve at the sleep floor only;\n\
         at ~3 µW that is years of ride-through — the battery-free premise holds\n\
         as long as the vehicle moves occasionally."
    );
}
