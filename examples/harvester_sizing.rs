//! Harvester sizing: which energy source covers which duty cycle?
//!
//! Sweeps the paper's harvester options (§1, §4.4, §6) against the node's
//! measured consumption at several sample rates and prints the
//! feasibility map a deployment engineer would want.
//!
//! ```text
//! cargo run --release --example harvester_sizing
//! ```

use picocube::harvest::{
    DriveCycle, ElectromagneticShaker, Harvester, Irradiance, SolarCladding, VibrationBeam,
    WheelHarvester,
};
use picocube::power::rectifier::{DiodeBridge, Rectifier, SynchronousRectifier};
use picocube::prelude::*;

/// Consumption model from the node's measured behaviour: the ~3 µW sleep
/// floor plus ~21 µJ of active energy per sample cycle.
fn node_demand(sample_period: Seconds) -> Watts {
    Watts::from_micro(3.0) + picocube::units::Joules::from_micro(21.0) / sample_period
}

fn main() {
    let day = Seconds::DAY;
    let sources: Vec<(&str, Box<dyn Harvester>)> = vec![
        (
            "wheel @ highway",
            Box::new(WheelHarvester::automotive(DriveCycle::highway())),
        ),
        (
            "wheel @ urban",
            Box::new(WheelHarvester::automotive(DriveCycle::urban())),
        ),
        (
            "bicycle wheel",
            Box::new(WheelHarvester::bicycle(DriveCycle::bicycle())),
        ),
        (
            "bench shaker",
            Box::new(ElectromagneticShaker::bench_450uw()),
        ),
        (
            "vibration beam 120 Hz",
            Box::new(VibrationBeam::roundy_120hz()),
        ),
        (
            "solar, office light",
            Box::new(SolarCladding::five_faces(Irradiance::office())),
        ),
        (
            "solar, outdoors",
            Box::new(SolarCladding::five_faces(Irradiance::outdoor())),
        ),
    ];
    let periods = [1.0f64, 6.0, 60.0, 600.0];
    let bridge = DiodeBridge::schottky();
    let sync = SynchronousRectifier::paper();
    let vbat = Volts::new(1.2);

    println!("available power after rectification (µW), and feasible sample periods\n");
    println!(
        "{:<24} {:>9} {:>9} {:>9} | supports sampling every…",
        "source", "raw", "schottky", "sync-rect"
    );
    for (name, source) in &sources {
        let raw = source.average_power(Seconds::ZERO, day, 10_000);
        let after_bridge = bridge.deliver(raw, vbat).expect("valid operating point");
        let after_sync = sync.deliver(raw, vbat).expect("valid operating point");
        let feasible: Vec<String> = periods
            .iter()
            .filter(|&&p| after_sync >= node_demand(Seconds::new(p)))
            .map(|&p| {
                if p < 60.0 {
                    format!("{p:.0} s")
                } else {
                    format!("{:.0} min", p / 60.0)
                }
            })
            .collect();
        println!(
            "{:<24} {:>9.1} {:>9.1} {:>9.1} | {}",
            name,
            raw.micro(),
            after_bridge.micro(),
            after_sync.micro(),
            if feasible.is_empty() {
                "none — node drains".to_string()
            } else {
                feasible.join(", ")
            }
        );
    }

    println!(
        "\nnode demand: {:.1} µW at 6 s sampling (the paper's workload), \
         {:.1} µW at 1 s",
        node_demand(Seconds::new(6.0)).micro(),
        node_demand(Seconds::new(1.0)).micro()
    );
    println!(
        "the synchronous rectifier's advantage over the Schottky bridge is the\n\
         §7.1 story: ~26 % more of every harvested joule reaches the battery."
    );
}
