//! Developer tool: disassemble the stock firmware images and annotate the
//! pieces of the sample/format/transmit cycle. Useful when modifying the
//! firmware or studying how the ~14 ms Fig. 6 burst is spent.
//!
//! ```text
//! cargo run --example firmware_listing [tpms|motion|alarm|beacon]
//! ```

use picocube::mcu::{asm::AsmError, disasm, firmware, FlatMemory};

fn listing_for(name: &str) -> Result<picocube::mcu::Image, AsmError> {
    match name {
        "motion" => firmware::motion_app(0x42),
        "alarm" => firmware::tpms_alarm_app(0x42, 1638), // 180 kPa code
        "beacon" => firmware::beacon_app(0x42, 6),
        _ => firmware::tpms_app(0x42),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tpms".to_string());
    let image = listing_for(&which)?;
    let code = image
        .segments()
        .iter()
        .find(|(org, _)| *org == 0xF000)
        .expect("firmware code segment");
    let mut mem = FlatMemory::new();
    mem.load(&image);

    println!(
        "; {} firmware — {} bytes of code at 0xF000",
        which,
        code.1.len()
    );
    println!(
        "; vectors: reset=0x{:04X}",
        mem.read16(picocube::mcu::vectors::RESET)
    );
    println!();

    let (listing, err) = disasm::disassemble_range(&mem, 0xF000, code.1.len() as u16);
    for d in &listing {
        // Raw words for the curious.
        let mut words = String::new();
        for i in 0..(d.size / 2) {
            words.push_str(&format!("{:04X} ", mem.read16(d.address + 2 * i)));
        }
        println!("{:04X}:  {:<16} {}", d.address, words, d.text);
    }
    if let Some(e) = err {
        println!("; stopped: {e}");
    }

    println!(
        "\n; {} instructions; the assembler/disassembler round-trip of this",
        listing.len()
    );
    println!("; listing is bit-exact (see mcu::disasm tests).");
    Ok(())
}
