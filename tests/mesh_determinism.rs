//! Mesh determinism: the windowed-sync relay engine must be bit-identical
//! across `Parallelism` modes and pinned to a golden trace.
//!
//! The mesh engine (DESIGN.md §12) extends the fleet's bit-identity
//! contract to the coupled case: nodes exchange packets mid-run, so the
//! engine synchronizes on conservative time windows (lookahead = the
//! relay turnaround) instead of simulating nodes independently. These
//! tests pin both halves of the promise:
//!
//! 1. serial, static-shard (2–3 workers) and oversubscribed (more workers
//!    than nodes) runs produce the *same bytes* — outcome, metric registry
//!    and event stream; and
//! 2. the serial trace matches `tests/golden/mesh.json`, so a determinism
//!    bug that shifts all modes together still fails loudly.
//!
//! Comparison semantics follow `stack_compat`: every value in the golden
//! must appear unchanged in the capture (objects may gain keys, arrays
//! compare element-wise with exact lengths). Regenerate from a known-good
//! commit with `UPDATE_GOLDEN=1 cargo test --test mesh_determinism`.

use picocube::node::{run_mesh_with, MeshConfig, Parallelism};
use picocube::sim::SimDuration;
use picocube::telemetry::{Event, Metric, Metrics};
use picocube::units::json::{Json, ToJson};
use std::path::PathBuf;

/// The pinned scenario: an 8-node line at 2.5 m spacing stretches past the
/// sink's direct reach, so the far end delivers only via relays — the
/// golden therefore locks in genuine multi-hop behaviour, not just the
/// degenerate every-node-hears-the-sink case.
fn scenario(parallelism: Parallelism) -> MeshConfig {
    MeshConfig {
        nodes: 8,
        spacing_m: 2.5,
        duration: SimDuration::from_secs(60),
        parallelism,
        ..MeshConfig::default()
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/mesh.json")
}

/// Asserts every value in `golden` appears unchanged in `current`.
fn assert_subset(golden: &Json, current: &Json, path: &str) {
    match golden {
        Json::Obj(fields) => {
            for (key, expected) in fields {
                let actual = current.get(key).unwrap_or_else(|| {
                    panic!("{path}.{key}: present in golden, missing in current")
                });
                assert_subset(expected, actual, &format!("{path}.{key}"));
            }
        }
        Json::Arr(items) => {
            let actual = current
                .as_arr()
                .unwrap_or_else(|| panic!("{path}: golden is an array, current is not"));
            assert_eq!(
                items.len(),
                actual.len(),
                "{path}: golden has {} elements, current has {}",
                items.len(),
                actual.len()
            );
            for (i, (expected, actual)) in items.iter().zip(actual).enumerate() {
                assert_subset(expected, actual, &format!("{path}[{i}]"));
            }
        }
        leaf => {
            assert_eq!(
                leaf.to_string(),
                current.to_string(),
                "{path}: value diverged from golden"
            );
        }
    }
}

fn check_golden(current: &Json) {
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden");
        std::fs::write(&path, current.to_string() + "\n").expect("write golden");
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\n(regenerate from a known-good commit with \
             UPDATE_GOLDEN=1 cargo test --test mesh_determinism)",
            path.display()
        )
    });
    let golden = Json::parse(&text).expect("golden parses");
    let current = Json::parse(&current.to_string()).expect("capture re-parses");
    assert_subset(&golden, &current, "mesh");
}

fn metrics_json(metrics: &Metrics) -> Json {
    Json::Obj(
        metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => c.to_json(),
                    Metric::Gauge(g) => g.to_json(),
                    Metric::Histogram(h) => Json::Obj(vec![
                        ("count".into(), h.count().to_json()),
                        ("sum".into(), h.sum().to_json()),
                        ("counts".into(), h.counts().to_vec().to_json()),
                    ]),
                };
                (name.to_string(), value)
            })
            .collect(),
    )
}

/// Runs the pinned scenario and captures outcome, event stream and metric
/// totals as one JSON document.
fn capture(parallelism: Parallelism) -> Json {
    let config = scenario(parallelism);
    let mut events: Vec<Event> = Vec::new();
    let (outcome, metrics) = run_mesh_with(&config, &mut events).expect("mesh runs");
    let sink = &outcome.sink;
    Json::Obj(vec![
        (
            "outcome".into(),
            Json::Obj(vec![
                ("offered".into(), (sink.offered as u64).to_json()),
                ("collided".into(), (sink.collided as u64).to_json()),
                (
                    "channel_losses".into(),
                    (sink.channel_losses as u64).to_json(),
                ),
                ("delivered".into(), (sink.delivered as u64).to_json()),
                ("per_node_delivery".into(), sink.per_node_delivery.to_json()),
                ("offered_load".into(), sink.offered_load.to_json()),
                (
                    "unique_offered".into(),
                    (outcome.unique_offered as u64).to_json(),
                ),
                (
                    "unique_delivered".into(),
                    (outcome.unique_delivered as u64).to_json(),
                ),
                (
                    "delivered_by_hop".into(),
                    Json::Arr(
                        outcome
                            .delivered_by_hop
                            .iter()
                            .map(|&n| (n as u64).to_json())
                            .collect(),
                    ),
                ),
                ("relays".into(), (outcome.relays as u64).to_json()),
                (
                    "relays_injected".into(),
                    (outcome.relays_injected as u64).to_json(),
                ),
                ("receptions".into(), (outcome.receptions as u64).to_json()),
                ("duplicates".into(), (outcome.duplicates as u64).to_json()),
                (
                    "rx_collisions".into(),
                    (outcome.rx_collisions as u64).to_json(),
                ),
                ("false_wakes".into(), (outcome.false_wakes as u64).to_json()),
            ]),
        ),
        (
            "events".into(),
            Json::Arr(events.iter().map(ToJson::to_json).collect()),
        ),
        ("metrics".into(), metrics_json(&metrics)),
    ])
}

#[test]
fn mesh_serial_trace_matches_golden() {
    let serial = capture(Parallelism::Serial);
    // The pinned scenario must exercise the relay fabric for real: at
    // least one packet delivered only over two or more hops.
    let multi_hop: u64 = serial
        .get("outcome")
        .and_then(|o| o.get("delivered_by_hop"))
        .and_then(Json::as_arr)
        .map(|hops| {
            hops.iter()
                .skip(2)
                .filter_map(|h| h.to_string().parse::<u64>().ok())
                .sum()
        })
        .expect("capture has a hop histogram");
    assert!(
        multi_hop > 0,
        "pinned scenario delivered nothing over >= 2 hops"
    );
    check_golden(&serial);
}

#[test]
fn mesh_threaded_traces_match_golden() {
    // Same golden as the serial run: static-shard and oversubscribed
    // worker counts must reproduce the serial bytes exactly.
    check_golden(&capture(Parallelism::Threads(2)));
    check_golden(&capture(Parallelism::Threads(3)));
    check_golden(&capture(Parallelism::Threads(16)));
}
