//! Telemetry determinism: the event stream and metric totals from an
//! instrumented fleet run must be bit-identical between serial and
//! threaded phase-1 execution — the PR 1 guarantee, extended to the
//! observability layer.

use picocube::prelude::*;
use picocube::units::json::ToJson;

fn instrumented_run(seed: u64, parallelism: Parallelism) -> (FleetOutcome, Metrics, Vec<Event>) {
    let config = FleetConfig::builder()
        .nodes(8)
        .duration(SimDuration::from_secs(30))
        .seed(seed)
        .parallelism(parallelism)
        .build()
        .expect("valid scenario");
    let mut events: Vec<Event> = Vec::new();
    let (outcome, metrics) = run_fleet_with(&config, &mut events);
    (outcome, metrics, events)
}

#[test]
fn event_streams_and_metrics_bit_identical_across_parallelism() {
    for seed in [11u64, 5150] {
        let (serial_out, serial_metrics, serial_events) =
            instrumented_run(seed, Parallelism::Serial);
        let (threaded_out, threaded_metrics, threaded_events) =
            instrumented_run(seed, Parallelism::Threads(4));

        assert_eq!(serial_out, threaded_out, "seed {seed}: outcome diverged");
        assert_eq!(
            serial_events, threaded_events,
            "seed {seed}: event streams diverged"
        );
        // Bit-identity of every metric, including f64 gauges and histogram
        // sums, via the canonical JSON rendering (f64s print shortest
        // round-trip, so equal strings mean equal bits).
        assert_eq!(
            serial_metrics.to_json().to_string(),
            threaded_metrics.to_json().to_string(),
            "seed {seed}: metric registries diverged"
        );
    }
}

#[test]
fn brownout_fleet_telemetry_identical_across_parallelism() {
    // Nodes that start below the supervisor threshold brown out at the
    // first check and sit held in reset for ~2 h of recharge before
    // running actively — per-node simulation cost is wildly uneven, so a
    // work-stealing worker that lands on a held node races far ahead of
    // its peers. The event stream and every metric (including
    // `node.brownouts`) must still be bit-identical to the serial run.
    let run = |parallelism| {
        let config = FleetConfig::builder()
            .nodes(4)
            .base(NodeConfig {
                harvester: HarvesterKind::Shaker,
                initial_soc: 0.009,
                ..NodeConfig::default()
            })
            .duration(SimDuration::from_secs(9_000))
            .seed(31)
            .parallelism(parallelism)
            .build()
            .expect("valid scenario");
        let mut events: Vec<Event> = Vec::new();
        let (outcome, metrics) = run_fleet_with(&config, &mut events);
        (outcome, metrics, events)
    };
    let (serial_out, serial_metrics, serial_events) = run(Parallelism::Serial);
    assert!(
        serial_metrics.counter("node.brownouts") >= 4,
        "every node must brown out (got {})",
        serial_metrics.counter("node.brownouts")
    );
    let (threaded_out, threaded_metrics, threaded_events) = run(Parallelism::Threads(3));
    assert_eq!(serial_out, threaded_out, "outcome diverged");
    assert_eq!(serial_events, threaded_events, "event streams diverged");
    assert_eq!(
        serial_metrics.to_json().to_string(),
        threaded_metrics.to_json().to_string(),
        "metric registries diverged"
    );
}

#[test]
fn fleet_counters_reconcile_with_the_outcome() {
    let (out, metrics, events) = instrumented_run(11, Parallelism::Threads(2));
    assert_eq!(metrics.counter("fleet.offered"), out.offered as u64);
    assert_eq!(
        metrics.counter("fleet.delivered")
            + metrics.counter("fleet.collided")
            + metrics.counter("fleet.channel_losses"),
        out.offered as u64
    );
    // Every offered packet gets exactly one fate event.
    let fates = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PacketFate { .. }))
        .count();
    assert_eq!(fates, out.offered);
    // The stream is framed: simulate phase, then merge phase.
    let tags: Vec<&str> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::PhaseStart { phase } => Some(phase.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(tags, ["simulate", "merge"]);
}

#[test]
fn jsonl_log_round_trips_the_stream() {
    use picocube::units::json::{FromJson, Json};

    let (_, _, events) = instrumented_run(5150, Parallelism::Serial);
    let mut recorder = JsonlRecorder::new(Vec::<u8>::new());
    for event in &events {
        recorder.record(event);
    }
    let bytes = recorder.finish().expect("in-memory sink cannot fail");
    let parsed: Vec<Event> = String::from_utf8(bytes)
        .expect("utf8")
        .lines()
        .map(|line| {
            Event::from_json(&Json::parse(line).expect("line parses")).expect("event decodes")
        })
        .collect();
    assert_eq!(parsed, events);
}
