//! Brown-out → recharge → restart, end to end.
//!
//! A TPMS node on a weak harvester runs its battery under the 1.05 V
//! supervisor threshold, is held in reset while the harvester recharges
//! the cell, and reboots once the open-circuit voltage crosses 1.15 V.
//! The board-stack engine must surface that life-cycle through
//! `NodeReport` (brownout_count / browned_out / fault) and keep the
//! power ledger monotone across the discontinuity — and the same node
//! embedded in a fleet must behave identically under serial and
//! threaded phase-1 execution.

use picocube::node::{FleetConfig, HarvesterKind, NodeConfig, Parallelism, PicoCube};
use picocube::sim::{SimDuration, SimTime};
use picocube::telemetry::EventKind;
use picocube::units::Joules;

/// A TPMS node that starts below the brown-out threshold with only the
/// bench shaker (~450 µW) to recharge it: guaranteed to trip the
/// supervisor on the first check and to recover within a couple of
/// simulated hours.
fn weak_harvester_config() -> NodeConfig {
    NodeConfig {
        harvester: HarvesterKind::Shaker,
        initial_soc: 0.009,
        ..NodeConfig::default()
    }
}

#[test]
fn node_browns_out_recovers_and_reports_it() {
    let mut node = PicoCube::tpms(weak_harvester_config()).expect("node builds");
    node.set_event_recording(true);
    let outcome = node.run_for(SimDuration::from_secs(3 * 3_600));
    assert!(outcome.is_completed(), "a brown-out is not a fault");

    let report = node.report();
    assert!(report.brownout_count >= 1, "supervisor never tripped");
    assert!(!report.browned_out, "node should be back up after recharge");
    assert_eq!(report.fault, None);
    assert!(report.wakes > 0, "no samples after recovery");
    assert!(!report.packets.is_empty(), "no packets after recovery");

    // The event stream brackets the outage: BrownOut strictly before
    // Recovered, and sampling resumes after the restart.
    let telemetry = node.drain_telemetry();
    let at = |pred: &dyn Fn(&EventKind) -> bool| {
        telemetry
            .events()
            .iter()
            .find(|e| pred(&e.kind))
            .map(|e| e.t_ns)
    };
    let down = at(&|k| matches!(k, EventKind::BrownOut)).expect("BrownOut recorded");
    let up = at(&|k| matches!(k, EventKind::Recovered)).expect("Recovered recorded");
    assert!(down < up, "brown-out at {down} ns, recovery at {up} ns");
    let last_wake = telemetry
        .events()
        .iter()
        .rev()
        .find(|e| matches!(e.kind, EventKind::Wake { .. }))
        .expect("wakes recorded");
    assert!(last_wake.t_ns > up, "no wake after recovery");
    assert_eq!(
        telemetry.metrics.counter("node.brownouts"),
        u64::from(report.brownout_count)
    );
}

#[test]
fn ledger_stays_monotone_across_the_outage() {
    // Advance in 10-minute chunks through discharge, outage and recovery:
    // elapsed time and consumed energy must never step backwards, and the
    // power trace must read zero while the node is held in reset.
    let mut node = PicoCube::tpms(weak_harvester_config()).expect("node builds");
    let mut last_elapsed = 0.0f64;
    let mut last_consumed = Joules::ZERO;
    let mut saw_outage = false;
    for _ in 0..18 {
        node.run_for(SimDuration::from_secs(600));
        let report = node.report();
        assert!(
            report.elapsed.value() >= last_elapsed,
            "elapsed went backwards"
        );
        assert!(
            report.consumed >= last_consumed,
            "consumed energy went backwards across the outage"
        );
        last_elapsed = report.elapsed.value();
        last_consumed = report.consumed;
        if node.browned_out_at().is_some() {
            saw_outage = true;
        }
    }
    assert!(saw_outage, "scenario never browned out");
    let report = node.report();
    assert!(report.brownout_count >= 1);
    assert!(!report.browned_out, "node should end the run recovered");
    // Mid-outage the supervisor has zeroed every load: the trace shows a
    // dead node shortly after the brown-out instant.
    let down = node.browned_out_at();
    assert_eq!(down, None, "browned_out_at clears on recovery");
    let trace_floor = node
        .power_trace()
        .power_at(SimTime::from_secs(20 * 60))
        .expect("trace covers the outage window");
    assert_eq!(
        trace_floor,
        picocube::units::Watts::ZERO,
        "loads must be zeroed while held in reset"
    );
}

#[test]
fn fleet_of_brownout_nodes_is_parallelism_invariant() {
    // Embed the brown-out scenario in a fleet: phase 1 must produce the
    // same merged outcome whether nodes run serially or on two workers.
    let base = FleetConfig {
        nodes: 6,
        base: weak_harvester_config(),
        duration: SimDuration::from_secs(1_800),
        seed: 23,
        parallelism: Parallelism::Serial,
        ..FleetConfig::default()
    };
    let serial = picocube::node::run_fleet(&base);
    let threaded = picocube::node::run_fleet(&FleetConfig {
        parallelism: Parallelism::Threads(2),
        ..base.clone()
    });
    assert_eq!(serial, threaded, "fleet outcome depends on parallelism");
    // Brown-outs are not faults: the fleet reports every node healthy.
    assert_eq!(serial.faulted, 0);
}
