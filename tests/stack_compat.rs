//! Board-stack compatibility: differential traces against pre-refactor
//! golden files.
//!
//! The board-stack refactor (DESIGN.md §10) promises that decomposing the
//! `PicoCube` monolith into `Board` components changes *nothing
//! observable*: `NodeReport`s and telemetry event streams must stay
//! bit-identical with the pre-refactor engine. These tests pin that
//! promise to golden JSON captured from the monolithic implementation and
//! checked into `tests/golden/`.
//!
//! Comparison semantics: every value present in a golden file must appear
//! unchanged in the current capture (exact textual equality after a JSON
//! round-trip, so floats compare bit-for-bit — the serializer writes
//! shortest-round-trip forms). Objects may *gain* keys (new report fields,
//! new per-board metrics); arrays (packets, events) must match in length
//! and element-wise. A missing or changed value is a regression.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test stack_compat` —
//! only ever from a commit whose engine is known-good.

use picocube::node::{
    run_fleet_with, FleetConfig, FleetOutcome, HarvesterKind, NodeConfig, Parallelism, PicoCube,
};
use picocube::sensors::MotionScenario;
use picocube::sim::SimDuration;
use picocube::telemetry::{Event, Metric, Metrics, TelemetryBuffer};
use picocube::units::json::{Json, ToJson};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Asserts every value in `golden` appears unchanged in `current`.
/// Objects compare as subsets (current may gain keys), arrays compare
/// element-wise with exact lengths, leaves compare by serialized text.
fn assert_subset(golden: &Json, current: &Json, path: &str) {
    match golden {
        Json::Obj(fields) => {
            for (key, expected) in fields {
                let actual = current.get(key).unwrap_or_else(|| {
                    panic!("{path}.{key}: present in golden, missing in current")
                });
                assert_subset(expected, actual, &format!("{path}.{key}"));
            }
        }
        Json::Arr(items) => {
            let actual = current
                .as_arr()
                .unwrap_or_else(|| panic!("{path}: golden is an array, current is not"));
            assert_eq!(
                items.len(),
                actual.len(),
                "{path}: golden has {} elements, current has {}",
                items.len(),
                actual.len()
            );
            for (i, (expected, actual)) in items.iter().zip(actual).enumerate() {
                assert_subset(expected, actual, &format!("{path}[{i}]"));
            }
        }
        leaf => {
            assert_eq!(
                leaf.to_string(),
                current.to_string(),
                "{path}: value diverged from pre-refactor golden"
            );
        }
    }
}

/// Compares `current` against the named golden file, or (re)writes the
/// golden when `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, current: &Json) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden");
        std::fs::write(&path, current.to_string() + "\n").expect("write golden");
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\n(regenerate from a known-good commit with \
             UPDATE_GOLDEN=1 cargo test --test stack_compat)",
            path.display()
        )
    });
    let golden = Json::parse(&text).expect("golden parses");
    // Round-trip the capture through text so both sides compare in
    // canonical serialized form.
    let current = Json::parse(&current.to_string()).expect("capture re-parses");
    assert_subset(&golden, &current, name);
}

fn metrics_json(metrics: &Metrics) -> Json {
    Json::Obj(
        metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => c.to_json(),
                    Metric::Gauge(g) => g.to_json(),
                    Metric::Histogram(h) => Json::Obj(vec![
                        ("count".into(), h.count().to_json()),
                        ("sum".into(), h.sum().to_json()),
                        ("counts".into(), h.counts().to_vec().to_json()),
                    ]),
                };
                (name.to_string(), value)
            })
            .collect(),
    )
}

fn events_json(events: &[Event]) -> Json {
    Json::Arr(events.iter().map(ToJson::to_json).collect())
}

/// Runs a node with event recording on and captures its report, event
/// stream and metric totals as one JSON document.
fn capture_node(mut node: PicoCube, secs: u64) -> Json {
    node.set_event_recording(true);
    node.run_for(SimDuration::from_secs(secs));
    let report = node.report();
    let telemetry: TelemetryBuffer = node.drain_telemetry();
    Json::Obj(vec![
        ("report".into(), report.to_json()),
        ("events".into(), events_json(telemetry.events())),
        ("metrics".into(), metrics_json(&telemetry.metrics)),
    ])
}

#[test]
fn tpms_default_trace_matches_pre_refactor() {
    let node = PicoCube::tpms(NodeConfig::default()).expect("node builds");
    check_golden("tpms_default", &capture_node(node, 61));
}

#[test]
fn tpms_alarm_leak_trace_matches_pre_refactor() {
    let config = NodeConfig {
        leak_kpa_per_hour: 300.0,
        alarm_threshold_kpa: Some(180.0),
        drive_cycle: picocube::harvest::DriveCycle::parked(),
        ..NodeConfig::default()
    };
    let node = PicoCube::tpms(config).expect("node builds");
    check_golden("tpms_alarm_leak", &capture_node(node, 601));
}

#[test]
fn tpms_integrated_ic_trace_matches_pre_refactor() {
    let config = NodeConfig {
        power_chain: picocube::node::PowerChainKind::IntegratedIc,
        wakeup_receiver: true,
        ..NodeConfig::default()
    };
    let node = PicoCube::tpms(config).expect("node builds");
    check_golden("tpms_integrated_ic", &capture_node(node, 31));
}

#[test]
fn tpms_ungated_ldo_trace_matches_pre_refactor() {
    let config = NodeConfig {
        ungated_rf_ldo: true,
        ..NodeConfig::default()
    };
    let node = PicoCube::tpms(config).expect("node builds");
    check_golden("tpms_ungated_ldo", &capture_node(node, 31));
}

#[test]
fn motion_trace_matches_pre_refactor() {
    let config = NodeConfig {
        harvester: HarvesterKind::None,
        ..NodeConfig::default()
    };
    let node = PicoCube::motion(config, MotionScenario::retreat_table(9)).expect("node builds");
    check_golden("motion", &capture_node(node, 31));
}

#[test]
fn beacon_trace_matches_pre_refactor() {
    let config = NodeConfig {
        harvester: HarvesterKind::None,
        ..NodeConfig::default()
    };
    let node = PicoCube::beacon(config, MotionScenario::retreat_table(5), 5).expect("node builds");
    check_golden("beacon", &capture_node(node, 31));
}

#[test]
fn brownout_recovery_trace_matches_pre_refactor() {
    // Deep discharge on a bench shaker: browns out at the first supervisor
    // check, recharges in reset, recovers, resumes sampling. Exercises the
    // supervisor hold, the recovery reschedule and both telemetry events.
    let config = NodeConfig {
        harvester: HarvesterKind::Shaker,
        initial_soc: 0.009,
        ..NodeConfig::default()
    };
    let node = PicoCube::tpms(config).expect("node builds");
    check_golden("brownout_recovery", &capture_node(node, 3 * 3_600));
}

fn capture_fleet(parallelism: Parallelism) -> Json {
    let config = FleetConfig::builder()
        .nodes(8)
        .duration(SimDuration::from_secs(30))
        .seed(7)
        .parallelism(parallelism)
        // The golden predates the streaming engine and pins the per-node
        // curve, which is opt-in now.
        .per_node_stats(true)
        .build()
        .expect("valid scenario");
    let mut events: Vec<Event> = Vec::new();
    let (outcome, metrics) = run_fleet_with(&config, &mut events);
    Json::Obj(vec![
        ("outcome".into(), outcome_json(&outcome)),
        ("events".into(), events_json(&events)),
        ("metrics".into(), metrics_json(&metrics)),
    ])
}

fn outcome_json(outcome: &FleetOutcome) -> Json {
    Json::Obj(vec![
        ("offered".into(), (outcome.offered as u64).to_json()),
        ("collided".into(), (outcome.collided as u64).to_json()),
        (
            "channel_losses".into(),
            (outcome.channel_losses as u64).to_json(),
        ),
        ("delivered".into(), (outcome.delivered as u64).to_json()),
        (
            "per_node_delivery".into(),
            outcome.per_node_delivery.to_json(),
        ),
        ("offered_load".into(), outcome.offered_load.to_json()),
    ])
}

#[test]
fn fleet_serial_trace_matches_pre_refactor() {
    check_golden("fleet", &capture_fleet(Parallelism::Serial));
}

#[test]
fn fleet_threaded_trace_matches_pre_refactor() {
    // Same golden as the serial run: the two-phase engine's bit-identity
    // guarantee must survive the board-stack refactor too.
    check_golden("fleet", &capture_fleet(Parallelism::Threads(2)));
    check_golden("fleet", &capture_fleet(Parallelism::Threads(3)));
}
