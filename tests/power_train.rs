//! Workspace integration tests: the power train composes correctly from
//! harvester to load across crate boundaries.

use picocube::harvest::{DriveCycle, Harvester, WheelHarvester};
use picocube::power::converter_ic::PowerInterfaceIc;
use picocube::power::cots::CotsPowerChain;
use picocube::power::rectifier::{DiodeBridge, IdealRectifier, Rectifier, SynchronousRectifier};
use picocube::storage::{NimhCell, StorageElement};
use picocube::units::{Amps, Celsius, Seconds, Volts, Watts};

#[test]
fn harvest_to_battery_chain_conserves_energy() {
    // Wheel at highway speed → synchronous rectifier → NiMH trickle.
    let harvester = WheelHarvester::automotive(DriveCycle::highway());
    let rectifier = SynchronousRectifier::paper();
    let mut cell = NimhCell::picocube();
    cell.set_state_of_charge(0.5);

    let vbat = cell.open_circuit_voltage();
    let mut delivered_total = 0.0;
    let mut stored_total = 0.0;
    for minute in 0..60 {
        let raw = harvester.average_power(
            Seconds::new(minute as f64 * 60.0),
            Seconds::new((minute + 1) as f64 * 60.0),
            32,
        );
        let delivered = rectifier.deliver(raw, vbat).unwrap();
        assert!(delivered <= raw, "rectifier cannot create energy");
        let before = cell.stored_energy();
        let out = cell.step(delivered / vbat, Seconds::MINUTE);
        let stored = (cell.stored_energy() - before).value();
        delivered_total += (delivered * Seconds::MINUTE).value();
        stored_total += stored;
        // Charging losses (coulombic + self-discharge) end up as heat.
        assert!(stored <= delivered_total, "storage cannot exceed delivery");
        assert!(out.dissipated.value() >= 0.0);
    }
    // Highway harvest ≈ 600 µW × 1 h ≈ 2.2 J delivered; ≥ 85 % stored.
    assert!(delivered_total > 1.5, "delivered {delivered_total:.2} J");
    assert!(stored_total / delivered_total > 0.85);
}

#[test]
fn rectifier_ordering_holds_across_input_power() {
    // Ideal ≥ synchronous ≥ Schottky ≥ silicon at every operating point.
    let vbat = Volts::new(1.2);
    let sync = SynchronousRectifier::paper();
    let schottky = DiodeBridge::schottky();
    let silicon = DiodeBridge::silicon();
    for uw in [50.0, 100.0, 200.0, 450.0, 1_000.0, 2_000.0] {
        let pin = Watts::from_micro(uw);
        let ideal = IdealRectifier.deliver(pin, vbat).unwrap();
        let s = sync.deliver(pin, vbat).unwrap();
        let b = schottky.deliver(pin, vbat).unwrap();
        let si = silicon.deliver(pin, vbat).unwrap();
        assert!(ideal >= s, "at {uw} µW");
        assert!(b >= si, "at {uw} µW");
        if uw >= 100.0 {
            assert!(s >= b, "sync should beat the bridge at {uw} µW");
        }
    }
}

#[test]
fn ic_supplies_both_rails_from_a_sagging_battery() {
    // As the NiMH discharges across its plateau, both IC rails must stay
    // in spec — the "1.2 V is close to optimal" claim.
    let ic = PowerInterfaceIc::paper();
    let mut cell = NimhCell::picocube();
    for soc in [1.0, 0.8, 0.5, 0.3, 0.15] {
        cell.set_state_of_charge(soc);
        let vbat = cell.open_circuit_voltage();
        let mcu = ic.supply_mcu(vbat, Amps::from_micro(300.0)).unwrap();
        assert!(
            mcu.vout >= Volts::new(2.1),
            "VDD {:.3} V at SoC {soc}",
            mcu.vout.value()
        );
        let radio = ic.supply_radio(vbat, Amps::from_milli(2.0)).unwrap();
        assert_eq!(
            radio.vout(),
            Volts::from_milli(650.0),
            "RF rail at SoC {soc}"
        );
    }
}

#[test]
fn cots_chain_sleep_floor_under_battery_sag() {
    let chain = CotsPowerChain::paper();
    let mut cell = NimhCell::picocube();
    for soc in [1.0, 0.5, 0.2] {
        cell.set_state_of_charge(soc);
        let vbat = cell.open_circuit_voltage();
        let budget = chain.sleep_budget(Amps::from_micro(1.0));
        let floor = budget.power(vbat);
        assert!(
            floor < Watts::from_micro(4.0),
            "sleep floor {:.2} µW at SoC {soc}",
            floor.micro()
        );
    }
}

#[test]
fn ic_standby_tracks_temperature_mildly() {
    // The 18 nA reference is "mildly dependent on temperature": the IC's
    // standby varies but stays within the leakage-dominated envelope over
    // the automotive range.
    let ic = PowerInterfaceIc::paper();
    let cold = ic.standby_current(Celsius::new(-40.0), Volts::new(1.2));
    let hot = ic.standby_current(Celsius::new(85.0), Volts::new(1.2));
    let room = ic.standby_current(Celsius::new(25.0), Volts::new(1.2));
    assert!(cold < room && room < hot);
    assert!((hot.value() - cold.value()) / room.value() < 0.05);
}

#[test]
fn depleted_battery_cannot_hold_the_rails() {
    let ic = PowerInterfaceIc::paper();
    let mut cell = NimhCell::picocube();
    cell.set_state_of_charge(0.005);
    let vbat = cell.open_circuit_voltage(); // ~1.03 V on the knee
                                            // 1:2 gives ~2.05 V unloaded: below the 2.1 V MCU floor under load.
    let op = ic.supply_mcu(vbat, Amps::from_micro(300.0)).unwrap();
    assert!(
        op.vout < Volts::new(2.1),
        "brown-out must be visible: {:.2} V",
        op.vout.value()
    );
}
