//! Reports and configurations serialize: the data-plumbing contract for
//! downstream tooling (dashboards, sweep scripts).

use picocube::node::{NodeConfig, PicoCube};
use picocube::sim::SimDuration;
use picocube::units::json::{FromJson, Json, ToJson};

#[test]
fn node_report_round_trips_through_json() {
    let mut node = PicoCube::tpms(NodeConfig::default()).unwrap();
    node.run_for(SimDuration::from_secs(13));
    let report = node.report();
    let json = report.to_json().to_string();
    let back = picocube::node::NodeReport::from_json(&Json::parse(&json).expect("parses"))
        .expect("report deserializes");
    assert_eq!(back.wakes, report.wakes);
    assert_eq!(back.packets, report.packets);
    assert_eq!(back.average_power, report.average_power);
    assert_eq!(back.power.rails.len(), report.power.rails.len());
}

#[test]
fn node_config_round_trips_through_json() {
    let config = NodeConfig {
        alarm_threshold_kpa: Some(180.0),
        wakeup_receiver: true,
        wake_interval_ppm: -125.0,
        ..NodeConfig::default()
    };
    let json = config.to_json().to_string();
    let back =
        NodeConfig::from_json(&Json::parse(&json).expect("parses")).expect("config deserializes");
    assert_eq!(back, config);
}

#[test]
fn traces_export_parseable_csv() {
    let mut node = PicoCube::tpms(NodeConfig::default()).unwrap();
    node.run_for(SimDuration::from_secs(13));
    let csv = node.power_trace().as_scalar().to_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("time_s,node_power_w"));
    for line in lines {
        let (t, v) = line.split_once(',').expect("two columns");
        t.parse::<f64>().expect("numeric time");
        v.parse::<f64>().expect("numeric power");
    }
}
