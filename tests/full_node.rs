//! Workspace integration tests: the assembled node reproduces the paper's
//! headline system-level behaviour end to end.

use picocube::node::{DemoStation, HarvesterKind, NodeConfig, PicoCube, PowerChainKind};
use picocube::radio::packet::{decode, Checksum};
use picocube::sensors::{MotionScenario, Sp12, Sp12Channel};
use picocube::sim::{SimDuration, SimTime};
use picocube::units::Watts;

#[test]
fn headline_average_power_is_about_6_uw() {
    let mut node = PicoCube::tpms(NodeConfig::default()).unwrap();
    node.run_for(SimDuration::from_secs(120));
    let avg = node.report().average_power;
    assert!(
        (avg.micro() - 6.0).abs() < 2.0,
        "TPMS average {:.2} µW vs the paper's 6 µW",
        avg.micro()
    );
}

#[test]
fn fig6_profile_shape() {
    let mut node = PicoCube::tpms(NodeConfig::default()).unwrap();
    node.run_for(SimDuration::from_secs(13));
    let trace = node.power_trace();

    // Sleep floor: a few µW.
    let floor = trace.power_at(SimTime::from_secs(3)).unwrap();
    assert!(
        floor < Watts::from_micro(5.0),
        "sleep floor {:.2} µW",
        floor.micro()
    );

    // Burst at the 6 s wake: milliwatts, ~10–20 ms wide.
    let burst_samples: Vec<_> = trace
        .as_scalar()
        .samples()
        .iter()
        .filter(|(t, p)| {
            *t >= SimTime::from_secs(6) && *t <= SimTime::from_millis(6_030) && *p > 100e-6
        })
        .collect();
    assert!(!burst_samples.is_empty(), "no burst found at the 6 s wake");
    let burst_start = burst_samples.first().unwrap().0;
    let burst_end = burst_samples.last().unwrap().0;
    let width_ms = burst_end.duration_since(burst_start).as_seconds().value() * 1e3;
    assert!(
        (5.0..25.0).contains(&width_ms),
        "burst width {width_ms:.1} ms vs the paper's ~14 ms"
    );
    assert!(node.report().peak_power > Watts::from_milli(1.0));
}

#[test]
fn tpms_packets_decode_to_tire_physics_at_the_receiver() {
    let config = NodeConfig {
        drive_cycle: picocube::harvest::DriveCycle::highway(),
        ..NodeConfig::default()
    };
    let mut node = PicoCube::tpms(config).unwrap();
    node.run_for(SimDuration::from_secs(601));
    let packets = node.packets();
    assert_eq!(packets.len(), 100);

    let decoder = Sp12::new();
    let frame = decode(&packets.last().unwrap().bytes, Checksum::Xor).unwrap();
    let code =
        |i: usize| u16::from(frame.payload[2 * i]) << 8 | u16::from(frame.payload[2 * i + 1]);

    // After 10 minutes at ~110 km/h the tire is warm, pressurized, and
    // spinning at hundreds of g.
    let kpa = decoder.decode(Sp12Channel::Pressure, code(0));
    let temp = decoder.decode(Sp12Channel::Temperature, code(1));
    let accel = decoder.decode(Sp12Channel::Acceleration, code(2));
    let supply = decoder.decode(Sp12Channel::Voltage, code(3));
    assert!(kpa > 230.0, "warm tire should read {kpa:.0} > 230 kPa");
    assert!(temp > 35.0, "tire temp {temp:.1} °C");
    assert!(accel > 200.0, "rim acceleration {accel:.0} g");
    // VDD is the doubled battery OCV (≈1.24 V at 80 % SoC) minus IR.
    assert!(
        (2.1..=2.6).contains(&supply),
        "supply channel {supply:.2} V"
    );
}

#[test]
fn demo_end_to_end_over_the_simulated_channel() {
    let config = NodeConfig {
        harvester: HarvesterKind::None,
        ..NodeConfig::default()
    };
    let mut node = PicoCube::motion(config, MotionScenario::retreat_table(77)).unwrap();
    let mut station = DemoStation::demo_table(77);
    node.run_for(SimDuration::from_secs(60));

    let packets = node.packets();
    assert!(packets.len() > 5, "handling windows should produce packets");
    let decoded = station.offer_all(&packets);
    // 1 m with ~45 dB of margin: effectively everything decodes.
    assert_eq!(decoded, packets.len(), "all packets decode at 1 m");
    // The decoded accelerations are handling-scale, not rest-scale.
    assert!(station
        .samples()
        .iter()
        .any(|s| s.x.value().abs() > 0.5 || s.y.value().abs() > 0.5));
}

#[test]
fn cots_vs_integrated_ic_tradeoff() {
    let mut cots = PicoCube::tpms(NodeConfig::default()).unwrap();
    cots.run_for(SimDuration::from_secs(60));
    let mut ic = PicoCube::tpms(NodeConfig {
        power_chain: PowerChainKind::IntegratedIc,
        ..NodeConfig::default()
    })
    .unwrap();
    ic.run_for(SimDuration::from_secs(60));

    let p_cots = cots.report().average_power;
    let p_ic = ic.report().average_power;
    // §7.1: the IC integrates everything into 4 mm² but its measured
    // leakage (≈6.5 µA, "partially attributable to the pad ring") puts its
    // sleep floor above the COTS chain's.
    assert!(
        p_ic > p_cots,
        "IC {:.2} µW vs COTS {:.2} µW",
        p_ic.micro(),
        p_cots.micro()
    );
    assert!(p_ic < Watts::from_micro(20.0));
}

#[test]
fn energy_ledger_is_consistent_with_battery_drain() {
    let config = NodeConfig {
        harvester: HarvesterKind::None,
        ..NodeConfig::default()
    };
    let mut node = PicoCube::tpms(config).unwrap();
    let soc0 = node.battery_soc();
    node.run_for(SimDuration::from_secs(120));
    let report = node.report();
    // Energy removed from the cell ≈ ledger consumption + self-discharge.
    let cell_delta = (soc0 - report.final_soc) * 64.8; // J, full capacity
    let ledger = report.consumed.value();
    assert!(
        cell_delta >= ledger * 0.9,
        "cell lost {cell_delta:.2e} J vs ledger {ledger:.2e} J"
    );
    // Self-discharge adds at most a few mJ over 2 minutes.
    assert!(cell_delta < ledger + 2e-3);
}

#[test]
fn long_run_remains_stable_and_deterministic() {
    let run = || {
        let mut node = PicoCube::tpms(NodeConfig::default()).unwrap();
        node.run_for(SimDuration::from_secs(1_801));
        let r = node.report();
        (r.wakes, r.packets.len(), r.consumed, r.average_power)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, 300);
    assert_eq!(a.1, 300);
    assert_eq!(a, b, "same seed, same world");
}
