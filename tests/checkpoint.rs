//! Checkpoint/resume bit-identity pins (DESIGN.md §15).
//!
//! Two promises under test, both phrased as "a cut changes nothing":
//!
//! * [`StackCheckpoint`] cuts a single node mid-run. Resuming and
//!   finishing the remainder must reproduce the uninterrupted run's
//!   `NodeReport`, event stream and simulation-state metrics bit-for-bit.
//!   The cut points are *wake boundaries* harvested empirically from the
//!   golden run's own `Wake` events — the node is asleep there, so
//!   splitting `run_for` cannot land inside a sample cycle. The splice
//!   itself is observable in exactly one place: the power solver's
//!   cache-instrumentation counters tick once for the boundary's forced
//!   (and result-identical) current refresh, and the test pins that too.
//! * [`FleetCheckpoint`] cuts a fleet between nodes. Any sequence of
//!   `run_fleet_partial` legs — serialized through JSON between legs,
//!   under different `Parallelism` modes — must finish into exactly the
//!   outcome, events and metrics of one uninterrupted `run_fleet_with`.

use picocube::node::{
    run_fleet_partial, run_fleet_resumable, run_fleet_with, FleetCheckpoint, FleetConfig,
    Parallelism, PicoCube, StackCheckpoint,
};
use picocube::sim::SimDuration;
use picocube::telemetry::{keys, Event, EventKind, Metrics};
use picocube::units::json::{FromJson, Json, ToJson};

/// Everything observable about one node run, comparable bit-for-bit.
/// The report goes through JSON so floats compare in shortest-round-trip
/// text form (exact), matching the golden-trace comparison semantics of
/// `tests/stack_compat.rs`.
struct NodeCapture {
    report: String,
    events: Vec<Event>,
    metrics: Metrics,
}

fn finish(mut node: PicoCube, remaining: SimDuration) -> NodeCapture {
    node.run_for(remaining);
    let report = node.report().to_json().to_string();
    let telemetry = node.drain_telemetry();
    NodeCapture {
        report,
        events: telemetry.events().to_vec(),
        metrics: telemetry.metrics,
    }
}

/// JSON round-trip: what resumes on the other side of the serialization
/// boundary is all the checkpoint file carries.
fn reload_stack(checkpoint: &StackCheckpoint) -> StackCheckpoint {
    let text = checkpoint.to_json().to_string();
    StackCheckpoint::from_json(&Json::parse(&text).expect("checkpoint text parses"))
        .expect("checkpoint round-trips")
}

fn reload_fleet(checkpoint: &FleetCheckpoint) -> FleetCheckpoint {
    let text = checkpoint.to_json().to_string();
    FleetCheckpoint::from_json(&Json::parse(&text).expect("checkpoint text parses"))
        .expect("checkpoint round-trips")
}

#[test]
fn stack_resumed_at_wake_boundaries_is_bit_identical() {
    let config = FleetConfig::builder()
        .nodes(4)
        .duration(SimDuration::from_secs(120))
        .seed(11)
        .build()
        .expect("valid fleet");
    let node_index = 2;
    let total = config.duration;

    // Uninterrupted golden — also the source of the cut points.
    let golden_node = StackCheckpoint::for_fleet_node(&config, node_index, SimDuration::ZERO, true)
        .resume()
        .expect("node builds");
    let golden = finish(golden_node, total);
    let wakes: Vec<u64> = golden
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Wake { .. }))
        .map(|e| e.t_ns)
        .collect();
    assert!(
        wakes.len() >= 3,
        "need several wake boundaries to cut at, got {wakes:?}"
    );

    // Cut at the first wake, one in the middle and the last one.
    let cuts = [
        wakes[0],
        wakes[wakes.len() / 2],
        *wakes.last().expect("non-empty"),
    ];
    for &cut_ns in &cuts {
        let elapsed = SimDuration::from_nanos(cut_ns);
        let checkpoint = reload_stack(&StackCheckpoint::for_fleet_node(
            &config, node_index, elapsed, true,
        ));
        assert_eq!(checkpoint.elapsed(), elapsed);
        let resumed_node = checkpoint.resume().expect("resume rebuilds the node");
        assert!(elapsed <= total, "cut {cut_ns} ns past the run span");
        let resumed = finish(resumed_node, total - elapsed);
        assert_eq!(
            resumed.report, golden.report,
            "NodeReport diverged after a cut at {cut_ns} ns"
        );
        assert_eq!(
            resumed.events, golden.events,
            "event stream diverged after a cut at {cut_ns} ns"
        );
        // Every simulation-state metric must match bit-for-bit. The one
        // sanctioned exception: the splice ends its first leg with a forced
        // current refresh, so the resumed run performs exactly one extra
        // operating-point lookup. The lookup replays a cached solve — the
        // rail state it returns is bit-identical, as the report and every
        // other metric above prove — but the solver's own hit/miss
        // instrumentation counts the extra call.
        for (name, metric) in golden.metrics.iter() {
            if name == keys::BOARD_SWITCH_OP_CACHE_HITS
                || name == keys::BOARD_SWITCH_OP_CACHE_MISSES
            {
                continue;
            }
            assert_eq!(
                Some(metric),
                resumed.metrics.get(name),
                "metric {name:?} diverged after a cut at {cut_ns} ns"
            );
        }
        let lookups = |m: &Metrics| {
            m.counter(keys::BOARD_SWITCH_OP_CACHE_HITS)
                + m.counter(keys::BOARD_SWITCH_OP_CACHE_MISSES)
        };
        assert_eq!(
            lookups(&resumed.metrics),
            lookups(&golden.metrics) + 1,
            "a single splice must cost exactly one extra op-point lookup"
        );
    }
}

fn fleet_config(parallelism: Parallelism) -> FleetConfig {
    FleetConfig::builder()
        .nodes(6)
        .duration(SimDuration::from_secs(30))
        .seed(21)
        .parallelism(parallelism)
        .per_node_stats(true)
        .build()
        .expect("valid fleet")
}

#[test]
fn fleet_legs_through_json_match_uninterrupted_run() {
    let config = fleet_config(Parallelism::Serial);
    let mut golden_events: Vec<Event> = Vec::new();
    let (golden_outcome, golden_metrics) = run_fleet_with(&config, &mut golden_events);

    // Three legs of two nodes each, serialized to JSON text between legs.
    let mut checkpoint =
        reload_fleet(&run_fleet_partial(&config, None, 2, true).expect("first leg runs"));
    assert_eq!(checkpoint.nodes_done(), 2);
    assert!(!checkpoint.is_complete());
    checkpoint = reload_fleet(
        &run_fleet_partial(&config, Some(&checkpoint), 2, true).expect("second leg runs"),
    );
    assert_eq!(checkpoint.nodes_done(), 4);

    let mut resumed_events: Vec<Event> = Vec::new();
    let (outcome, metrics) = run_fleet_resumable(&config, Some(&checkpoint), &mut resumed_events)
        .expect("final leg runs");

    assert_eq!(outcome, golden_outcome);
    assert_eq!(metrics, golden_metrics);
    assert_eq!(resumed_events, golden_events);
}

#[test]
fn fleet_legs_may_hop_parallelism_modes() {
    // The checkpoint fingerprint deliberately excludes parallelism: a run
    // checkpointed on a laptop (serial) may finish on a many-core box.
    let serial = fleet_config(Parallelism::Serial);
    let threaded = fleet_config(Parallelism::Threads(3));
    let mut golden_events: Vec<Event> = Vec::new();
    let (golden_outcome, golden_metrics) = run_fleet_with(&serial, &mut golden_events);

    let checkpoint =
        reload_fleet(&run_fleet_partial(&serial, None, 3, true).expect("serial leg runs"));
    let mut resumed_events: Vec<Event> = Vec::new();
    let (outcome, metrics) = run_fleet_resumable(&threaded, Some(&checkpoint), &mut resumed_events)
        .expect("threaded leg resumes a serial checkpoint");

    assert_eq!(outcome, golden_outcome);
    assert_eq!(metrics, golden_metrics);
    assert_eq!(resumed_events, golden_events);
}

#[test]
fn completed_checkpoint_finalizes_without_resimulating() {
    let config = fleet_config(Parallelism::Serial);
    let (golden_outcome, _) = run_fleet_with(&config, &mut picocube::telemetry::NullRecorder);

    let checkpoint = run_fleet_partial(&config, None, config.nodes, false).expect("full leg runs");
    assert!(checkpoint.is_complete());
    assert_eq!(checkpoint.nodes_done(), config.nodes);

    let (outcome, _) = run_fleet_resumable(
        &config,
        Some(&reload_fleet(&checkpoint)),
        &mut picocube::telemetry::NullRecorder,
    )
    .expect("finalizing a complete checkpoint");
    assert_eq!(outcome, golden_outcome);
}
