//! The declarative scenario engine's contract (DESIGN.md §13).
//!
//! Three promises are pinned here:
//!
//! 1. **Spec fidelity** — a [`Scenario`] round-trips through its JSON
//!    codec bit-for-bit (property-tested over the whole spec surface).
//! 2. **Lowering identity** — the minimal TPMS spec in
//!    `scenarios/tpms.json` reproduces the hard-coded
//!    `FleetConfig`/`run_fleet_with` run *bit-identically*: outcome
//!    numbers, merged metrics and the telemetry event stream. Golden
//!    captures under `tests/golden/scenarios/` pin the spec-file runs
//!    (including both PAPERS.md environments and the chaos campaign) the
//!    same way `stack_compat` pins the engines.
//! 3. **Determinism** — a Monte Carlo chaos campaign produces identical
//!    outcomes (survival curve included) serial or threaded.
//!
//! Regenerate goldens with `UPDATE_GOLDEN=1 cargo test --test scenarios`
//! — only from a commit whose engine is known-good.

use picocube::node::{
    run_fleet_with, run_mesh_with, run_scenario_with, FleetConfig, MeshConfig, Parallelism,
    Scenario, ScenarioError,
};
use picocube::sim::SimDuration;
use picocube::telemetry::Event;
use picocube::units::json::{Json, ToJson};
use proptest::prelude::*;
use std::path::PathBuf;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn load_spec(name: &str) -> Scenario {
    let path = repo_path(&format!("scenarios/{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {}: {e}", path.display()));
    Scenario::parse(&text).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

// ---------------------------------------------------------------- golden
// Same comparison semantics as tests/stack_compat.rs: goldens are subsets
// (current captures may gain keys), arrays match element-wise, leaves
// compare in canonical serialized text so floats are bit-exact.

fn assert_subset(golden: &Json, current: &Json, path: &str) {
    match golden {
        Json::Obj(fields) => {
            for (key, expected) in fields {
                let actual = current.get(key).unwrap_or_else(|| {
                    panic!("{path}.{key}: present in golden, missing in current")
                });
                assert_subset(expected, actual, &format!("{path}.{key}"));
            }
        }
        Json::Arr(items) => {
            let actual = current
                .as_arr()
                .unwrap_or_else(|| panic!("{path}: golden is an array, current is not"));
            assert_eq!(
                items.len(),
                actual.len(),
                "{path}: golden has {} elements, current has {}",
                items.len(),
                actual.len()
            );
            for (i, (expected, actual)) in items.iter().zip(actual).enumerate() {
                assert_subset(expected, actual, &format!("{path}[{i}]"));
            }
        }
        leaf => {
            assert_eq!(
                leaf.to_string(),
                current.to_string(),
                "{path}: value diverged from golden"
            );
        }
    }
}

fn check_golden(name: &str, current: &Json) {
    let path = repo_path(&format!("tests/golden/scenarios/{name}.json"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden/scenarios");
        std::fs::write(&path, current.to_string() + "\n").expect("write golden");
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\n(regenerate from a known-good commit with \
             UPDATE_GOLDEN=1 cargo test --test scenarios)",
            path.display()
        )
    });
    let golden = Json::parse(&text).expect("golden parses");
    let current = Json::parse(&current.to_string()).expect("capture re-parses");
    assert_subset(&golden, &current, name);
}

/// Runs a fixture spec and captures outcome + event stream as one JSON
/// document for golden comparison.
fn capture_scenario(name: &str, parallelism: Parallelism) -> Json {
    let spec = load_spec(name);
    let mut events: Vec<Event> = Vec::new();
    let outcome = run_scenario_with(&spec, parallelism, &mut events)
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    Json::Obj(vec![
        ("outcome".into(), outcome.to_json()),
        (
            "events".into(),
            Json::Arr(events.iter().map(ToJson::to_json).collect()),
        ),
    ])
}

#[test]
fn tpms_spec_golden() {
    check_golden("tpms", &capture_scenario("tpms", Parallelism::Serial));
}

#[test]
fn pible_office_spec_golden() {
    check_golden(
        "pible_office",
        &capture_scenario("pible_office", Parallelism::Serial),
    );
}

#[test]
fn piezo_machine_spec_golden() {
    check_golden(
        "piezo_machine",
        &capture_scenario("piezo_machine", Parallelism::Serial),
    );
}

#[test]
fn chaos_dropout_campaign_golden() {
    check_golden(
        "chaos_dropout_campaign",
        &capture_scenario("chaos_dropout_campaign", Parallelism::Serial),
    );
}

// ------------------------------------------------------ lowering identity

/// The headline acceptance test: the four-line TPMS spec lowers onto the
/// fleet engine with zero observable difference from the hard-coded
/// configuration — outcome, metrics registry, and every telemetry event.
#[test]
fn tpms_spec_is_bit_identical_to_hardcoded_fleet() {
    let spec = load_spec("tpms");
    let mut spec_events: Vec<Event> = Vec::new();
    let outcome =
        run_scenario_with(&spec, Parallelism::Serial, &mut spec_events).expect("tpms spec runs");

    let config = FleetConfig::builder()
        .nodes(8)
        .duration(SimDuration::from_secs(30))
        .seed(7)
        .build()
        .expect("valid hard-coded config");
    let mut fleet_events: Vec<Event> = Vec::new();
    let (fleet_outcome, fleet_metrics) = run_fleet_with(&config, &mut fleet_events);

    assert_eq!(outcome.runs.len(), 1);
    let run = &outcome.runs[0];
    assert_eq!(run.offered, fleet_outcome.offered);
    assert_eq!(run.delivered, fleet_outcome.delivered);
    assert_eq!(run.collided, fleet_outcome.collided);
    assert_eq!(run.channel_losses, fleet_outcome.channel_losses);
    assert_eq!(run.faulted, fleet_outcome.faulted);
    assert_eq!(
        run.delivery_ratio.to_bits(),
        fleet_outcome.delivery_ratio().to_bits()
    );
    // Metrics compare in canonical serialized form, so floats are
    // bit-exact and registry order matters.
    assert_eq!(
        outcome.metrics.to_json().to_string(),
        fleet_metrics.to_json().to_string()
    );
    assert_eq!(spec_events, fleet_events);
}

/// The same identity for mesh mode: a spec whose `mesh` object spells the
/// engine defaults reproduces `run_mesh_with` exactly.
#[test]
fn mesh_spec_is_bit_identical_to_hardcoded_mesh() {
    let text = r#"{
        "name": "mesh-line",
        "seed": 5,
        "duration_s": 30.0,
        "nodes": 4,
        "mesh": {"sink_offset_m": 2.0, "spacing_m": 2.0}
    }"#;
    let spec = Scenario::parse(text).expect("mesh spec parses");
    let mut spec_events: Vec<Event> = Vec::new();
    let outcome =
        run_scenario_with(&spec, Parallelism::Serial, &mut spec_events).expect("mesh spec runs");

    let config = MeshConfig {
        nodes: 4,
        duration: SimDuration::from_secs(30),
        seed: 5,
        ..MeshConfig::default()
    };
    let mut mesh_events: Vec<Event> = Vec::new();
    let (mesh_outcome, mesh_metrics) =
        run_mesh_with(&config, &mut mesh_events).expect("valid mesh config");

    assert_eq!(outcome.runs[0].offered, mesh_outcome.sink.offered);
    assert_eq!(outcome.runs[0].delivered, mesh_outcome.sink.delivered);
    assert_eq!(
        outcome.metrics.to_json().to_string(),
        mesh_metrics.to_json().to_string()
    );
    assert_eq!(spec_events, mesh_events);
}

// ------------------------------------------------------------ determinism

/// The chaos campaign's whole outcome — per-seed summaries, merged
/// metrics, survival curve, and the concatenated event stream — is
/// bit-identical across engine parallelism modes.
#[test]
fn chaos_campaign_is_deterministic_across_parallelism() {
    let serial = capture_scenario("chaos_dropout_campaign", Parallelism::Serial);
    let threaded = capture_scenario("chaos_dropout_campaign", Parallelism::Threads(3));
    assert_eq!(serial.to_string(), threaded.to_string());
}

/// The campaign fixture actually exercises the survival machinery: its
/// aged, dropout-starved fleet loses nodes, and the curve is well-formed
/// (monotonically non-increasing, within [0, 1]).
#[test]
fn chaos_campaign_produces_a_survival_curve() {
    let spec = load_spec("chaos_dropout_campaign");
    let outcome = run_scenario_with(
        &spec,
        Parallelism::Serial,
        &mut picocube::telemetry::NullRecorder,
    )
    .expect("campaign runs");
    assert_eq!(outcome.runs.len(), 4);
    let survival = outcome.survival.expect("campaign mode yields a curve");
    assert_eq!(survival.times_s.len(), 12);
    assert_eq!(survival.alive.len(), 12);
    let mut prev = 1.0f64;
    for &a in &survival.alive {
        assert!((0.0..=1.0).contains(&a), "alive fraction {a} out of range");
        assert!(a <= prev, "survival curve must be non-increasing");
        prev = a;
    }
    assert!(
        survival.final_alive() < 1.0,
        "the dropout-starved fleet must actually lose nodes"
    );
    assert_eq!(
        outcome.metrics.counter("campaign.seeds"),
        4,
        "campaign accounting rides the metrics registry"
    );
    assert!(outcome.metrics.counter("campaign.browned_out_nodes") > 0);
}

// --------------------------------------------------------- spec round-trip

/// Builds a scenario from a handful of integer draws, covering every
/// optional object and app/harvester variant.
fn scenario_from_draws(
    seed: u64,
    duration_raw: u64,
    nodes: usize,
    shape: u64,
    values: Vec<u64>,
) -> Scenario {
    let mut text = format!(
        r#"{{"name":"prop-{shape}","seed":{seed},"duration_s":{},"nodes":{nodes}"#,
        duration_raw as f64 * 0.25 + 0.25
    );
    match shape % 3 {
        0 => {}
        1 => text.push_str(
            r#","app":{"Motion":{"rest_s":20.0,"handled_s":5.0,"vigor_g":1.5}},"node":{"harvester":{"IndoorLight":{"lit_wm2":5.0,"dark_wm2":0.05,"on_hour":0.0,"off_hour":12.0}},"storage":"Supercap"}"#,
        ),
        _ => text.push_str(
            r#","app":{"Beacon":{"rest_s":30.0,"handled_s":4.0,"vigor_g":2.0,"period_s":5}},"node":{"harvester":{"Piezo":{"accel_ms2":2.5,"freq_hz":120.0,"on_s":40.0,"off_s":20.0}}}"#,
        ),
    }
    if shape & 4 != 0 {
        text.push_str(
            r#","fleet":{"distance_min_m":0.25,"distance_max_m":6.5,"capture_margin_db":8.0}"#,
        );
    }
    if shape & 8 != 0 {
        text.push_str(
            r#","mesh":{"sink_offset_m":1.5,"spacing_m":2.25,"turnaround_ms":15,"max_hops":3}"#,
        );
    }
    if shape & 16 != 0 {
        text.push_str(
            r#","chaos":{"harvest_dropout":{"period_s":30.0,"off_s":10.0},"battery_capacity_fraction":0.5,"ambient_celsius":40.0,"wake_ppm_range":250.0}"#,
        );
    }
    // Sweep and campaign are mutually exclusive; bit 32 picks which.
    if shape & 32 != 0 {
        let values: Vec<String> = values.iter().map(|v| format!("{}.5", v)).collect();
        text.push_str(&format!(
            r#","sweep":{{"knob":"initial_soc","values":[{}]}}"#,
            values.join(",")
        ));
    } else if shape & 64 != 0 {
        text.push_str(r#","campaign":{"seeds":3,"bins":6}"#);
    }
    text.push('}');
    Scenario::parse(&text).expect("generated spec parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every spec shape round-trips through `to_json` → text → `parse`
    /// with full structural equality (floats compare by `PartialEq`, so
    /// the codec must preserve them bit-for-bit).
    #[test]
    fn scenario_round_trips_through_json(
        seed in 0u64..u64::MAX,
        duration_raw in 0u64..10_000,
        nodes in 1usize..500,
        shape in 0u64..128,
        values in prop::collection::vec(0u64..100, 1..6),
    ) {
        let spec = scenario_from_draws(seed, duration_raw, nodes, shape, values);
        let text = spec.to_json().to_string();
        let back = Scenario::parse(&text).expect("serialized spec re-parses");
        prop_assert_eq!(back, spec);
    }
}

// ------------------------------------------------------------- error paths
// Satellite: the spec-parsing path reports through `ScenarioError`, never
// a panic, even for specs that parse but cannot build.

#[test]
fn malformed_json_is_a_parse_error() {
    assert!(matches!(
        Scenario::parse("{not json"),
        Err(ScenarioError::Parse(_))
    ));
    assert!(matches!(
        Scenario::parse(r#"{"name":"x","seed":1,"nodes":4}"#),
        Err(ScenarioError::Parse(_)) // missing duration_s
    ));
}

#[test]
fn conflicting_modes_are_invalid() {
    let text = r#"{
        "name": "x", "seed": 1, "duration_s": 10.0, "nodes": 2,
        "sweep": {"knob": "nodes", "values": [2.0, 4.0]},
        "campaign": {"seeds": 2, "bins": 4}
    }"#;
    assert!(matches!(
        Scenario::parse(text),
        Err(ScenarioError::Invalid(_))
    ));
}

#[test]
fn unbuildable_spec_is_a_typed_error_not_a_panic() {
    // Supercap storage models no plate aging, so a chaos plan that ages
    // the battery must come back as a typed build rejection.
    let text = r#"{
        "name": "x", "seed": 1, "duration_s": 10.0, "nodes": 2,
        "node": {"storage": "Supercap"},
        "chaos": {"battery_capacity_fraction": 0.5}
    }"#;
    let spec = Scenario::parse(text).expect("spec parses; failure is at lowering");
    let result = run_scenario_with(
        &spec,
        Parallelism::Serial,
        &mut picocube::telemetry::NullRecorder,
    );
    assert!(matches!(result, Err(ScenarioError::Build(_))));
}

#[test]
fn unphysical_harvester_trace_is_a_typed_error() {
    // Hours outside [0, 24] pass the JSON codec but fail harvester
    // validation during the probe build.
    let text = r#"{
        "name": "x", "seed": 1, "duration_s": 10.0, "nodes": 1,
        "node": {"harvester": {"IndoorLight":
            {"lit_wm2": 5.0, "dark_wm2": 0.0, "on_hour": 33.0, "off_hour": 12.0}}}
    }"#;
    let spec = Scenario::parse(text).expect("spec parses");
    let result = run_scenario_with(
        &spec,
        Parallelism::Serial,
        &mut picocube::telemetry::NullRecorder,
    );
    assert!(matches!(result, Err(ScenarioError::Build(_))));
}
