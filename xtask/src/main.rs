//! Workspace task runner.
//!
//! ```text
//! cargo xtask lint [--json PATH] [--update-allowlist] [--allow-growth]
//!                  [--max-allowlisted N]
//! ```
//!
//! Runs the picocube-lint invariant checks over the workspace, prints the
//! human diagnostic table, optionally writes the machine-readable JSON
//! report, and exits non-zero when any finding survives the allowlist.
//! `--update-allowlist` mechanically tightens `lint-allowlist.txt` to the
//! current raw counts of the allowlisted lints (existing justifications
//! are preserved; new groups get a TODO placeholder that must be justified
//! before commit). The update is **shrink-only**: it refuses to raise any
//! budget or add entries for new findings unless `--allow-growth` is also
//! passed, so a regression cannot be waved through by regenerating the
//! file. `--max-allowlisted N` additionally fails the run when the
//! allowlist budgets more than `N` total L2 sites — CI pins `N` to the
//! current total so the panic-freedom burndown can only shrink.

use picocube_lint::allowlist::{Allowlist, Entry};
use picocube_lint::report::Lint;
use picocube_lint::{run_workspace, ALLOWLIST_PATH};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the root is the manifest's parent.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().unwrap_or(manifest).to_path_buf()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo xtask lint [--json PATH] [--update-allowlist] [--allow-growth] \
         [--max-allowlisted N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    if command != "lint" {
        return usage();
    }
    let mut json_path: Option<PathBuf> = None;
    let mut update_allowlist = false;
    let mut allow_growth = false;
    let mut max_allowlisted: Option<usize> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--update-allowlist" => update_allowlist = true,
            "--allow-growth" => allow_growth = true,
            "--max-allowlisted" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => max_allowlisted = Some(n),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if allow_growth && !update_allowlist {
        eprintln!("xtask lint: --allow-growth only makes sense with --update-allowlist");
        return usage();
    }

    let root = workspace_root();
    let run = match run_workspace(&root) {
        Ok(run) => run,
        Err(err) => {
            eprintln!("xtask lint: {err}");
            return ExitCode::FAILURE;
        }
    };

    if update_allowlist {
        return match write_allowlist(&root, &run, allow_growth) {
            Ok(n) => {
                println!("xtask lint: wrote {ALLOWLIST_PATH} with {n} entries");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("xtask lint: {err}");
                ExitCode::FAILURE
            }
        };
    }

    print!("{}", run.report.render_table());
    if let Some(path) = json_path {
        let doc = run.report.to_json().to_string();
        if let Err(err) = std::fs::write(&path, doc + "\n") {
            eprintln!("xtask lint: writing {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("json report: {}", path.display());
    }
    if let Some(cap) = max_allowlisted {
        match allowlist_l2_total(&root) {
            Ok(total) if total > cap => {
                eprintln!(
                    "xtask lint: allowlist budgets {total} L2 sites but the cap is {cap} — \
                     the burndown only shrinks; fix the new sites instead of budgeting them"
                );
                return ExitCode::FAILURE;
            }
            Ok(total) => println!("allowlisted L2 budget: {total} (cap {cap})"),
            Err(err) => {
                eprintln!("xtask lint: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    if run.report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Total L2 sites budgeted by `lint-allowlist.txt` (0 when absent). The
/// syntactic lints' budgets are tracked per entry but not capped here.
fn allowlist_l2_total(root: &Path) -> Result<usize, String> {
    let path = root.join(ALLOWLIST_PATH);
    if !path.is_file() {
        return Ok(0);
    }
    let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
    Ok(Allowlist::parse(&text)?.total(Lint::L2))
}

/// Rewrites the allowlist to match the current raw finding counts,
/// preserving existing justifications. Shrink-only unless `allow_growth`:
/// raising a budget or adding a group is refused with a description of
/// every offending group. Returns the number of entries written.
fn write_allowlist(
    root: &Path,
    run: &picocube_lint::RunOutput,
    allow_growth: bool,
) -> Result<usize, String> {
    let path = root.join(ALLOWLIST_PATH);
    let existing = if path.is_file() {
        let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
        Allowlist::parse(&text)?
    } else {
        Allowlist::default()
    };

    let mut groups: BTreeMap<(String, Lint, String), usize> = BTreeMap::new();
    for f in &run.raw_allowlisted {
        *groups
            .entry((f.file.clone(), f.lint, f.kind.clone()))
            .or_insert(0) += 1;
    }
    let mut grown = Vec::new();
    let entries: Vec<Entry> = groups
        .into_iter()
        .map(|((file, lint, kind), count)| {
            let budget = existing.budget(&file, lint, &kind);
            if count > budget {
                grown.push(format!("{file} {}:{kind} {budget} -> {count}", lint.code()));
            }
            let justification = existing
                .entries
                .iter()
                .find(|e| e.path == file && e.lint == lint && e.kind == kind)
                .map(|e| e.justification.clone())
                .unwrap_or_else(|| "TODO: justify or fix before commit".to_string());
            Entry {
                path: file,
                lint,
                kind,
                count,
                justification,
            }
        })
        .collect();
    if !grown.is_empty() && !allow_growth {
        return Err(format!(
            "refusing to grow the allowlist (pass --allow-growth to override):\n  {}",
            grown.join("\n  ")
        ));
    }
    let n = entries.len();
    let rendered = Allowlist { entries }.render();
    std::fs::write(&path, rendered).map_err(|e| e.to_string())?;
    Ok(n)
}
