//! **picocube** — a full-system simulation of the PicoCube, the 1 cm³
//! sensor node powered by harvested energy (Chee et al., DAC 2008).
//!
//! The PicoCube's contribution is a physical artifact — five stacked
//! 1 cm² boards running a tire-pressure application at a 6 µW average
//! from harvested energy. This workspace reproduces that system as a
//! simulation faithful to every number the paper publishes: the MSP430
//! runs real (emulated) firmware, the power train models carry the
//! measured efficiencies, and the paper's figures regenerate from runs.
//!
//! This meta-crate re-exports the member crates under one roof:
//!
//! * [`units`] — typed physical quantities (volts, watts, dBm, …).
//! * [`sim`] — the discrete-event kernel, power ledger and traces.
//! * [`power`] — rectifiers, charge pump, regulators, SC converters,
//!   references, switches, and the §7.1 power interface IC.
//! * [`storage`] — NiMH cell, supercapacitors, bypass networks.
//! * [`harvest`] — shaker, wheel, vibration-beam and solar harvesters.
//! * [`mcu`] — the MSP430-subset emulator, assembler and stock firmware.
//! * [`sensors`] — SP12 TPMS and SCA3000 models plus their environments.
//! * [`radio`] — FBAR, OOK transmitter, antenna, channel, receivers.
//! * [`node`] — the assembled PicoCube, packaging checks, baselines.
//! * [`telemetry`] — counters, event logs, per-rail energy export.
//!
//! For scripts and examples, `use picocube::prelude::*;` pulls in the
//! handful of types nearly every program needs.
//!
//! # Quickstart
//!
//! ```
//! use picocube::node::{NodeConfig, PicoCube};
//! use picocube::sim::SimDuration;
//!
//! let mut node = PicoCube::tpms(NodeConfig::default())?;
//! node.run_for(SimDuration::from_secs(60));
//!
//! let report = node.report();
//! println!("average power: {:.2} µW", report.average_power.micro());
//! assert!(report.packets.len() >= 9); // one sample every six seconds
//! # Ok::<(), picocube::node::BuildError>(())
//! ```
//!
//! See `examples/` for the runnable scenarios (quickstart, TPMS
//! deployment, the §6 motion demo, harvester sizing) and the
//! `picocube-bench` crate for the per-figure experiment binaries.

#![warn(missing_docs)]

pub use picocube_harvest as harvest;
pub use picocube_mcu as mcu;
pub use picocube_node as node;
pub use picocube_power as power;
pub use picocube_radio as radio;
pub use picocube_sensors as sensors;
pub use picocube_sim as sim;
pub use picocube_storage as storage;
pub use picocube_telemetry as telemetry;
pub use picocube_units as units;

/// The types nearly every PicoCube program touches, in one import.
///
/// Covers building and running a node ([`PicoCube`](prelude::PicoCube),
/// [`NodeConfig`](prelude::NodeConfig), [`StackBuilder`](prelude::StackBuilder)
/// with [`AppBoard`](prelude::AppBoard)), fleet scenarios
/// ([`FleetConfig`](prelude::FleetConfig) and friends), declarative JSON
/// scenarios ([`Scenario`](prelude::Scenario) and
/// [`run_scenario_with`](prelude::run_scenario_with)), the simulation
/// clock, telemetry sinks, and the most common physical quantities.
///
/// # Examples
///
/// ```
/// use picocube::prelude::*;
///
/// let mut node = PicoCube::tpms(NodeConfig::default())?;
/// node.run_for(SimDuration::from_secs(30));
/// assert!(node.report().average_power < Watts::from_micro(20.0));
/// # Ok::<(), BuildError>(())
/// ```
pub mod prelude {
    pub use picocube_node::{
        run_fleet, run_fleet_with, run_mesh, run_mesh_with, run_scenario_with, AppBoard,
        BuildError, FleetApp, FleetConfig, FleetConfigBuilder, FleetConfigError, FleetOutcome,
        HarvesterKind, MeshConfig, MeshConfigError, MeshOutcome, NodeConfig, NodeReport,
        Parallelism, PicoCube, Scenario, ScenarioError, ScenarioOutcome, StackBuilder,
    };
    pub use picocube_sim::{SimDuration, SimRng, SimTime};
    pub use picocube_telemetry::{
        summary_table, Event, EventKind, JsonlRecorder, Metrics, NullRecorder, Recorder,
        TelemetryBuffer,
    };
    pub use picocube_units::{Dbm, Hertz, Joules, Seconds, Volts, Watts};
}
